//! Offline stand-in for `serde_derive`.
//!
//! Parses the item token stream by hand (no `syn`/`quote` available
//! offline) and emits impls of the vendored serde's `Serialize`
//! (`to_value`) and `Deserialize` (`from_value`) traits. Supports the
//! shapes this workspace actually derives: named-field structs, tuple
//! structs, unit-only and tuple-variant enums, simple generics
//! (`Vector<T>`, `Matrix<T>`, `Fixed<const P: u32>`), the
//! `#[serde(transparent)]` attribute, and per-field `#[serde(default)]`
//! / `#[serde(default = "path")]` on named fields (a missing field
//! deserializes to `Default::default()` or `path()` instead of
//! erroring — what keeps old benchmark JSON readable as structs grow
//! fields). Anything else produces a `compile_error!` naming the
//! unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored serde's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the vendored serde's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// How a missing named field deserializes.
#[derive(Debug, Clone, PartialEq)]
enum FieldDefault {
    /// Absence is an error (no `#[serde(default)]`).
    Required,
    /// `#[serde(default)]`: absence takes `Default::default()`.
    DefaultTrait,
    /// `#[serde(default = "path")]`: absence calls `path()`.
    Path(String),
}

#[derive(Debug)]
struct NamedField {
    name: String,
    default: FieldDefault,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
enum Param {
    /// A type parameter: (name, declaration with original bounds).
    Type(String, String),
    /// A const parameter: (name, full declaration).
    Const(String, String),
}

#[derive(Debug)]
struct Item {
    name: String,
    params: Vec<Param>,
    body: Body,
    transparent: bool,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&item),
                Mode::Deserialize => gen_deserialize(&item),
            };
            code.parse()
                .unwrap_or_else(|e| error(&format!("serde stub derive produced invalid code: {e}")))
        }
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let mut transparent = false;

    // Outer attributes (including #[serde(...)] helpers and doc comments).
    while pos < tokens.len() {
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                    if group_mentions_transparent(g.stream()) {
                        transparent = true;
                    }
                    pos += 1;
                } else {
                    return Err("malformed attribute".to_string());
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                pos += 1;
                // `pub(crate)` and friends.
                if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        pos += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;
    if keyword != "struct" && keyword != "enum" {
        return Err(format!("cannot derive serde for `{keyword}` items"));
    }

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    pos += 1;

    // Optional generic parameter list.
    let mut params = Vec::new();
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        pos += 1;
        let mut depth = 0usize;
        let mut current: Vec<TokenTree> = Vec::new();
        let mut lists: Vec<Vec<TokenTree>> = Vec::new();
        loop {
            let tt = tokens
                .get(pos)
                .ok_or_else(|| "unterminated generic parameter list".to_string())?
                .clone();
            pos += 1;
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    current.push(tt);
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    current.push(tt);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    lists.push(std::mem::take(&mut current));
                }
                _ => current.push(tt),
            }
        }
        if !current.is_empty() {
            lists.push(current);
        }
        for list in lists {
            params.push(parse_param(&list)?);
        }
    }

    if matches!(&tokens.get(pos), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        return Err("`where` clauses are not supported by the serde stub derive".to_string());
    }

    let body = if keyword == "struct" {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_top_level(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => return Err(format!("unexpected struct body: {other:?}")),
        }
    } else {
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        }
    };

    Ok(Item {
        name,
        params,
        body,
        transparent,
    })
}

fn group_mentions_transparent(stream: TokenStream) -> bool {
    let mut iter = stream.into_iter();
    match (iter.next(), iter.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "transparent")),
        _ => false,
    }
}

fn parse_param(tokens: &[TokenTree]) -> Result<Param, String> {
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "const" => {
            let name = match tokens.get(1) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => return Err(format!("expected const param name, found {other:?}")),
            };
            let decl = tokens
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            Ok(Param::Const(name, decl))
        }
        Some(TokenTree::Ident(id)) => {
            let decl = tokens
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            Ok(Param::Type(id.to_string(), decl))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
            Err("lifetime parameters are not supported by the serde stub derive".to_string())
        }
        other => Err(format!("unsupported generic parameter: {other:?}")),
    }
}

/// The `#[serde(default)]` / `#[serde(default = "path")]` marker in an
/// attribute's token group, if present.
fn serde_default_of(stream: TokenStream) -> Option<FieldDefault> {
    let mut iter = stream.into_iter();
    match (iter.next(), iter.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            for (i, tt) in inner.iter().enumerate() {
                if !matches!(tt, TokenTree::Ident(d) if d.to_string() == "default") {
                    continue;
                }
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (inner.get(i + 1), inner.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let path = lit.to_string().trim_matches('"').to_string();
                        return Some(FieldDefault::Path(path));
                    }
                }
                return Some(FieldDefault::DefaultTrait);
            }
            None
        }
        _ => None,
    }
}

/// Named fields (with their default markers) in declaration order.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<NamedField>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    let mut pending_default = FieldDefault::Required;
    while pos < tokens.len() {
        // Skip attributes and visibility, remembering any serde default
        // marker for the field that follows.
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(pos + 1) {
                    if let Some(d) = serde_default_of(g.stream()) {
                        pending_default = d;
                    }
                }
                pos += 2; // `#` + bracket group
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        pos += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Consume the type up to the next top-level comma.
        let mut depth = 0usize;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(NamedField {
            name,
            default: std::mem::replace(&mut pending_default, FieldDefault::Required),
        });
    }
    Ok(fields)
}

/// Number of top-level comma-separated entries (tuple struct arity).
fn count_top_level(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut count = 1;
    let mut saw_tokens_since_comma = true;
    for tt in &tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
            }
            _ => saw_tokens_since_comma = true,
        }
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                pos += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                pos += 1;
                continue;
            }
            _ => {}
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_top_level(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "explicit discriminant on variant `{name}` is not supported by the serde stub"
            ));
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.params.is_empty() {
        return format!("impl ::serde::{trait_name} for {} ", item.name);
    }
    let decls: Vec<String> = item
        .params
        .iter()
        .map(|p| match p {
            Param::Const(_, decl) => decl.clone(),
            Param::Type(name, decl) => {
                if decl.contains(':') {
                    format!("{decl} + ::serde::{trait_name}")
                } else {
                    format!("{name}: ::serde::{trait_name}")
                }
            }
        })
        .collect();
    let args: Vec<String> = item
        .params
        .iter()
        .map(|p| match p {
            Param::Const(name, _) | Param::Type(name, _) => name.clone(),
        })
        .collect();
    format!(
        "impl<{}> ::serde::{trait_name} for {}<{}> ",
        decls.join(", "),
        item.name,
        args.join(", ")
    )
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.body {
        Body::Struct(fields) => ser_struct(item, fields),
        Body::Enum(variants) => ser_enum(item, variants),
    };
    format!(
        "#[automatically_derived] {}{{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(item, "Serialize")
    )
}

fn ser_struct(item: &Item, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(names) if item.transparent && names.len() == 1 => {
            format!("::serde::Serialize::to_value(&self.{})", names[0].name)
        }
        Fields::Named(names) => {
            let pushes: Vec<String> = names
                .iter()
                .map(|f| {
                    let n = &f.name;
                    format!(
                        "entries.push(({n:?}.to_string(), ::serde::Serialize::to_value(&self.{n})));"
                    )
                })
                .collect();
            format!(
                "let mut entries = Vec::new(); {} ::serde::Value::Map(entries)",
                pushes.join(" ")
            )
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
    }
}

fn ser_enum(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => {
                    format!("{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),")
                }
                Fields::Tuple(1) => format!(
                    "{name}::{vname}(f0) => ::serde::Value::Map(vec![({vname:?}.to_string(), \
                     ::serde::Serialize::to_value(f0))]),"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let vals: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                        .collect();
                    format!(
                        "{name}::{vname}({}) => ::serde::Value::Map(vec![({vname:?}.to_string(), \
                         ::serde::Value::Seq(vec![{}]))]),",
                        binds.join(", "),
                        vals.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let binds = fields
                        .iter()
                        .map(|f| f.name.clone())
                        .collect::<Vec<_>>()
                        .join(", ");
                    let pushes: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            let n = &f.name;
                            format!("({n:?}.to_string(), ::serde::Serialize::to_value({n}))")
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![({vname:?}\
                         .to_string(), ::serde::Value::Map(vec![{}]))]),",
                        pushes.join(", ")
                    )
                }
            }
        })
        .collect();
    format!("match self {{ {} }}", arms.join(" "))
}

fn gen_deserialize(item: &Item) -> String {
    let body = match &item.body {
        Body::Struct(fields) => de_struct(item, fields),
        Body::Enum(variants) => de_enum(item, variants),
    };
    format!(
        "#[automatically_derived] {}{{ fn from_value(value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}",
        impl_header(item, "Deserialize")
    )
}

/// One named field's deserialization initializer against the map held
/// in `src`: required fields error when absent, defaulted fields fall
/// back to `Default::default()` or their named function.
fn de_named_field(f: &NamedField, src: &str) -> String {
    let n = &f.name;
    match &f.default {
        FieldDefault::Required => {
            format!("{n}: ::serde::Deserialize::from_value({src}.field({n:?})?)?")
        }
        FieldDefault::DefaultTrait => format!(
            "{n}: match {src}.opt_field({n:?}) {{ \
               ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?, \
               ::std::option::Option::None => ::std::default::Default::default(), \
             }}"
        ),
        FieldDefault::Path(path) => format!(
            "{n}: match {src}.opt_field({n:?}) {{ \
               ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?, \
               ::std::option::Option::None => {path}(), \
             }}"
        ),
    }
}

fn de_struct(item: &Item, fields: &Fields) -> String {
    let name = &item.name;
    match fields {
        Fields::Unit => format!("Ok({name})"),
        Fields::Named(names) if item.transparent && names.len() == 1 => format!(
            "Ok({name} {{ {}: ::serde::Deserialize::from_value(value)? }})",
            names[0].name
        ),
        Fields::Named(names) => {
            let inits: Vec<String> = names.iter().map(|f| de_named_field(f, "value")).collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(value)?))"),
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_seq()?; if items.len() != {n} {{ return \
                 Err(::serde::DeError::new(format!(\"expected {n} elements, found {{}}\", \
                 items.len()))); }} Ok({name}({}))",
                inits.join(", ")
            )
        }
    }
}

fn de_enum(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => None,
                Fields::Tuple(1) => Some(format!(
                    "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                )),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    Some(format!(
                        "{vname:?} => {{ let items = inner.as_seq()?; if items.len() != {n} {{ \
                         return Err(::serde::DeError::new(format!(\"variant {vname} expects {n} \
                         values, found {{}}\", items.len()))); }} Ok({name}::{vname}({})) }},",
                        inits.join(", ")
                    ))
                }
                Fields::Named(fields) => {
                    let inits: Vec<String> =
                        fields.iter().map(|f| de_named_field(f, "inner")).collect();
                    Some(format!(
                        "{vname:?} => Ok({name}::{vname} {{ {} }}),",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "match value {{ \
           ::serde::Value::Str(tag) => match tag.as_str() {{ \
             {} \
             other => Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` of {name}\"))), \
           }}, \
           ::serde::Value::Map(entries) if entries.len() == 1 => {{ \
             let (tag, inner) = &entries[0]; \
             match tag.as_str() {{ \
               {} \
               other => Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` of {name}\"))), \
             }} \
           }}, \
           other => Err(::serde::DeError::new(format!(\"expected {name} variant, found {{}}\", other.kind()))), \
        }}",
        unit_arms.join(" "),
        data_arms.join(" ")
    )
}
