//! Offline stand-in for `serde_json` over the vendored serde's [`Value`]
//! tree.
//!
//! Provides the calls this workspace makes: [`to_string`],
//! [`to_string_pretty`], and [`from_str`]. Floats print via Rust's
//! shortest-round-trip formatting, so `from_str(&to_string(x))` is exact —
//! the property the `float_roundtrip` feature guarantees upstream.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// A serialization or parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Result alias matching the upstream crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Returns an error when a float is non-finite (JSON has no NaN/∞).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns an error when a float is non-finite.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some("  "), 0)?;
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns an error describing the first syntactic or structural problem.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------- writing

fn write_value(value: &Value, out: &mut String, indent: Option<&str>, depth: usize) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if !v.is_finite() {
                return Err(Error::new("JSON cannot represent a non-finite float"));
            }
            // Match serde_json: integral floats keep a `.0` suffix.
            if v.fract() == 0.0 && v.abs() < 1e16 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Value::Int(v))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Value::UInt(v))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "42", "-7", "2.5", "\"hi\""] {
            let v = parse(text).expect(text);
            let mut out = String::new();
            write_value(&v, &mut out, None, 0).expect("write");
            assert_eq!(out, text);
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        let xs = vec![0.1f64, -1.0 / 3.0, 1e-300, 991.58, f64::MIN_POSITIVE];
        let text = to_string(&xs).expect("serialize");
        let back: Vec<f64> = from_str(&text).expect("parse");
        assert_eq!(xs, back);
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).expect("serialize"), "1.0");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Map(vec![
            ("name".to_string(), Value::Str("q\"uote".to_string())),
            (
                "xs".to_string(),
                Value::Seq(vec![Value::Int(1), Value::Null, Value::Bool(true)]),
            ),
        ]);
        let mut compact = String::new();
        write_value(&v, &mut compact, None, 0).expect("write");
        assert_eq!(parse(&compact).expect("parse"), v);
        let mut pretty = String::new();
        write_value(&v, &mut pretty, Some("  "), 0).expect("write");
        assert_eq!(parse(&pretty).expect("parse"), v);
    }

    #[test]
    fn errors_name_the_problem() {
        assert!(parse("{bad}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").unwrap_err().to_string().contains("trailing"));
        assert!(to_string(&f64::NAN).is_err());
    }
}
