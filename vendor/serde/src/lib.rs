//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `serde` to this vendored implementation. Instead of serde's visitor
//! data model, everything (de)serializes through one dynamic [`Value`]
//! tree; `#[derive(Serialize, Deserialize)]` (from the vendored
//! `serde_derive`) generates `to_value`/`from_value` impls, and the
//! vendored `serde_json` renders/parses the tree as JSON. The observable
//! behavior the workspace relies on — derived round-trips through
//! `serde_json::to_string`/`from_str` — is preserved.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The dynamic (de)serialization tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Map(Vec<(String, Value)>),
}

/// A deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Builds an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

impl Value {
    /// Looks up a struct field, failing with a named error.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected map for field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up a struct field that may be absent: `Some` only when
    /// `self` is a map containing `name`. The derive's
    /// `#[serde(default)]` path — a missing field is not an error
    /// there, it takes the field's default instead.
    pub fn opt_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The sequence elements, or an error.
    pub fn as_seq(&self) -> Result<&[Value], DeError> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(DeError::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// The map entries, or an error.
    pub fn as_map(&self) -> Result<&[(String, Value)], DeError> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(DeError::new(format!(
                "expected map, found {}",
                other.kind()
            ))),
        }
    }

    /// A short human name for the variant (error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    fn as_f64(&self) -> Result<f64, DeError> {
        match *self {
            Value::Int(v) => Ok(v as f64),
            Value::UInt(v) => Ok(v as f64),
            Value::Float(v) => Ok(v),
            ref other => Err(DeError::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    fn as_i64(&self) -> Result<i64, DeError> {
        match *self {
            Value::Int(v) => Ok(v),
            Value::UInt(v) => i64::try_from(v)
                .map_err(|_| DeError::new(format!("unsigned value {v} overflows i64"))),
            Value::Float(v) if v.fract() == 0.0 => Ok(v as i64),
            ref other => Err(DeError::new(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }

    fn as_u64(&self) -> Result<u64, DeError> {
        match *self {
            Value::UInt(v) => Ok(v),
            Value::Int(v) => u64::try_from(v)
                .map_err(|_| DeError::new(format!("negative value {v} is not unsigned"))),
            Value::Float(v) if v.fract() == 0.0 && v >= 0.0 => Ok(v as u64),
            ref other => Err(DeError::new(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }
}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from `value`.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first structural mismatch.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if (*self as i128) >= 0 && (*self as i128) > i64::MAX as i128 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = value.$via()?;
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(
    i8 => as_i64, i16 => as_i64, i32 => as_i64, i64 => as_i64, isize => as_i64,
    u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64, usize => as_u64
);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_f64().map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for &'static str {
    /// Real serde borrows from the deserializer input; this value-tree
    /// stand-in has no input to borrow from, so it leaks the string. The
    /// workspace only deserializes `&'static str` fields holding a few
    /// fixed kernel-name tags, so the leak is bounded.
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::new(format!(
                "expected char, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = value
            .as_seq()?
            .iter()
            .map(T::from_value)
            .collect::<Result<_, _>>()?;
        let found = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected {N} elements, found {found}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_seq()?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected {expected}-tuple, found {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i32::from_value(&17i32.to_value()), Ok(17));
        assert_eq!(u64::from_value(&5u64.to_value()), Ok(5));
        assert_eq!(f64::from_value(&2.5f64.to_value()), Ok(2.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![1.0f64, -2.0, 3.5];
        assert_eq!(Vec::<f64>::from_value(&xs.to_value()), Ok(xs));
        let arr = [1u32, 2, 3];
        assert_eq!(<[u32; 3]>::from_value(&arr.to_value()), Ok(arr));
        let pair = (4usize, -1i64);
        assert_eq!(<(usize, i64)>::from_value(&pair.to_value()), Ok(pair));
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn structural_errors_are_described() {
        let err = Value::Int(1).field("x").unwrap_err();
        assert!(err.to_string().contains("expected map"));
        let err = <[u32; 2]>::from_value(&vec![1u32].to_value()).unwrap_err();
        assert!(err.to_string().contains("expected 2 elements"));
    }
}
