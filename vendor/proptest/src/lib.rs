//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `proptest` to this vendored implementation. It keeps the parts the
//! workspace uses — the `proptest!` macro, `Strategy` combinators, range
//! and collection strategies, `any`, `Just`, `prop_oneof!`, and the
//! `prop_assert*` macros — over a deterministic per-test PRNG. Failing
//! inputs are reported but not shrunk.

#![forbid(unsafe_code)]

use std::fmt;

/// A failed `prop_assert*` inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given description.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic SplitMix64 PRNG driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from the test name and case index so runs
    /// are reproducible without a persistence file.
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        seed ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform f64 in `[0, 1)` with 53 random bits.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A generator of random values for `proptest!` arguments.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Rejects sampled values failing `pred`, resampling instead of
        /// shrinking. Panics if `pred` rejects 1000 draws in a row.
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Maps sampled values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter `{}` rejected 1000 consecutive samples",
                self.reason
            );
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds from at least one alternative.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.u64_below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.u64_below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.u64_below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.f64_unit() * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.f64_unit() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait backing [`any`](crate::any).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values spanning many magnitudes; no NaN/∞ so numeric
            // invariants stay checkable.
            let exp = rng.u64_below(41) as i32 - 20;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * rng.f64_unit() * 10f64.powi(exp)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        )+};
    }
    impl_arbitrary_tuple!((A, B), (A, B, C), (A, B, C, D));

    /// Strategy wrapper produced by [`any`](crate::any).
    #[derive(Debug, Clone, Copy)]
    pub struct ArbitraryStrategy<A> {
        marker: ::std::marker::PhantomData<A>,
    }

    impl<A> Default for ArbitraryStrategy<A> {
        fn default() -> Self {
            Self {
                marker: ::std::marker::PhantomData,
            }
        }
    }

    impl<A: Arbitrary> Strategy for ArbitraryStrategy<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

/// The whole-domain strategy for `A`.
pub fn any<A: arbitrary::Arbitrary>() -> arbitrary::ArbitraryStrategy<A> {
    arbitrary::ArbitraryStrategy::default()
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// A length distribution for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.u64_below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Module alias so `prop::collection::vec(...)` resolves as upstream.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Runs `f` for each random case; used by the `proptest!` expansion.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = TestRng::deterministic(name, case);
        if let Err(e) = f(&mut rng) {
            panic!(
                "proptest `{name}` failed on case {case}/{}: {e}",
                config.cases
            );
        }
    }
}

/// Declares property tests. Each inner `#[test] fn name(arg in strategy, ..)`
/// becomes a normal test running [`ProptestConfig::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal recursive expansion of [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!` but fails the proptest case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!` but fails the proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, prop, ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges", 0);
        for _ in 0..200 {
            let v = Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = Strategy::sample(&(5u64..=5), &mut rng);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn collection_vec_respects_size() {
        let mut rng = crate::TestRng::deterministic("vec", 1);
        for _ in 0..100 {
            let xs = Strategy::sample(&prop::collection::vec(0.0f64..1.0, 2..5), &mut rng);
            assert!((2..5).contains(&xs.len()));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = crate::TestRng::deterministic("same", 7).next_u64();
        let b = crate::TestRng::deterministic("same", 7).next_u64();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_pipeline_works(
            x in 1u32..100,
            flag in any::<bool>(),
            xs in prop::collection::vec(0.0f64..1.0, 1..8),
            which in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert!(!xs.is_empty(), "xs len {}", xs.len());
            prop_assert!(which == 1 || which == 2);
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn filter_keeps_predicate(v in (-10.0f64..10.0).prop_filter("nonzero", |v| v.abs() > 0.5)) {
            prop_assert!(v.abs() > 0.5);
        }
    }
}
