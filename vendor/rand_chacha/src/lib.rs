//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator
//! implementing the vendored [`rand`] traits.
//!
//! The block function is the standard ChaCha construction (the same
//! quarter-round schedule as RFC 8439, eight rounds). Streams are fully
//! deterministic per seed; they are not guaranteed bit-identical to the
//! upstream `rand_chacha` crate, which this workspace only relies on for
//! *reproducibility*, not for specific values.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha generator with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words 0..8, then 64-bit block counter, then 64-bit nonce.
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..4 {
            // Two rounds per iteration: one column round, one diagonal.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// The current 64-bit block position (diagnostics/tests).
    pub fn get_word_pos(&self) -> u128 {
        (self.counter as u128) * 16 + self.index as u128
    }
}

fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut rng = Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        };
        rng.refill();
        rng.index = 0;
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let words: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        // Block 0 (16 words) must differ from block 1.
        assert_ne!(&words[0..16], &words[16..32]);
        assert!(rng.get_word_pos() >= 40);
    }

    #[test]
    fn uniformity_sanity() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
