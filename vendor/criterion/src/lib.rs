//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `criterion` to this vendored implementation. It keeps the macro and
//! type surface the benches use (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`) and reports simple
//! wall-clock statistics: each benchmark is warmed up briefly, then timed
//! over an adaptively chosen iteration count.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Wall-clock time spent warming up one benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Top-level benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Self { _private: () }
    }
}

impl Criterion {
    /// Returns `self` unchanged; CLI args are ignored in this stand-in.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().to_string(), &mut f);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration; recorded but unused here.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Sets the per-benchmark sample count; accepted for API parity.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    /// Benchmarks `f(bencher, input)` under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// Ends the group. (No cross-benchmark reporting to flush.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => f.write_str(func),
            (None, Some(p)) => f.write_str(p),
            (None, None) => f.write_str("benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            function: Some(name),
            parameter: None,
        }
    }
}

/// The amount of work one iteration represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iters` times and records the elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// True when cargo invoked this bench binary from `cargo test`, which
/// passes `--test`; benchmarks then run once as a smoke check, as real
/// criterion does.
fn is_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    if is_test_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{label}: ok (test mode)");
        return;
    }
    // Warm up and discover a per-iteration estimate.
    let mut iters = 1u64;
    let warmup_start = Instant::now();
    let mut per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed.as_secs_f64() / iters as f64;
        if warmup_start.elapsed() >= WARMUP_BUDGET || b.elapsed >= WARMUP_BUDGET {
            break per;
        }
        iters = iters.saturating_mul(2);
    };
    if per_iter <= 0.0 {
        per_iter = 1e-9;
    }

    // Measure: pick an iteration count filling the budget, three samples.
    let target_iters = ((MEASURE_BUDGET.as_secs_f64() / 3.0 / per_iter).ceil() as u64).max(1);
    let mut best = f64::INFINITY;
    let mut worst = 0.0f64;
    let mut total = 0.0f64;
    const SAMPLES: usize = 3;
    for _ in 0..SAMPLES {
        let mut b = Bencher {
            iters: target_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed.as_secs_f64() / target_iters as f64;
        best = best.min(per);
        worst = worst.max(per);
        total += per;
    }
    let mean = total / SAMPLES as f64;
    println!(
        "{label:<60} time: [{} {} {}]",
        format_time(best),
        format_time(mean),
        format_time(worst)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each benchmark group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed_time() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(b.elapsed > Duration::ZERO || b.elapsed == Duration::ZERO); // ran without panic
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(1));
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| x.wrapping_mul(x))
        });
        group.finish();
    }
}
