//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `rand` to this vendored implementation of exactly
//! the API surface the repository uses: [`Rng`] (`random`,
//! `random_range`, `random_bool`), [`SeedableRng`] (`from_seed`,
//! `seed_from_u64`), and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! `seed_from_u64` reproduces `rand_core`'s SplitMix64 seed expansion so
//! that seeded generators remain stable if the real crate is ever
//! restored.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator, deterministic given its seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array for every generator here).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the `rand_core`
    /// convention) and builds the generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly from raw random bits (`rng.random()`).
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_standard_tuple {
    ($($name:ident),+) => {
        impl<$($name: StandardUniform),+> StandardUniform for ($($name,)+) {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                ($($name::sample_standard(rng),)+)
            }
        }
    };
}
impl_standard_tuple!(A);
impl_standard_tuple!(A, B);
impl_standard_tuple!(A, B, C);
impl_standard_tuple!(A, B, C, D);

/// Types with uniform sampling over a half-open or inclusive range
/// (`rng.random_range(a..b)`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in random_range");
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "empty range in random_range");
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in random_range");
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "empty range in random_range");
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in random_range");
                let unit = <$t as StandardUniform>::sample_standard(rng);
                low + unit * (high - low)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "empty range in random_range");
                let unit = <$t as StandardUniform>::sample_standard(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Unbiased uniform draw from `[0, span)` (`span > 0`) via rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, Rr>(&mut self, range: Rr) -> T
    where
        T: SampleUniform,
        Rr: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Minimal generator implementations.

    use super::{RngCore, SeedableRng};

    /// A small, fast non-cryptographic generator (SplitMix64 core).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            Self {
                state: u64::from_le_bytes(seed),
            }
        }
    }

    /// The default "standard" generator (same core as [`SmallRng`]).
    pub type StdRng = SmallRng;
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface.
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_draws_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = rng.random_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn mean_of_unit_uniform_is_half() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
