//! `csdctl` — command-line front end for the CSD inference stack.
//!
//! ```text
//! csdctl dataset --out corpus.csv [--windows 2000] [--seed 3277] [--noise 0.12]
//! csdctl train   --data corpus.csv --out model.weights [--epochs 25] [--test-frac 0.2]
//! csdctl detect  --model model.weights --data corpus.csv [--level fixed|ii|vanilla]
//! csdctl monitor --model model.weights --family Wannacry [--variant 3]
//! csdctl info    --model model.weights
//! ```
//!
//! `dataset` synthesizes a labelled sliding-window corpus (CSV, `n+1`
//! columns); `train` fits the paper's architecture and writes the weight
//! text file; `detect` runs the CSD engine over a CSV and reports the
//! four §IV metrics; `monitor` streams a fresh detonation through the live
//! monitor with damage accounting; `info` prints a weight file's shape.

use std::process::ExitCode;

use csd_inference::accel::{CsdInferenceEngine, OptimizationLevel};
use csd_inference::accel::{MonitorConfig, StreamMonitor};
use csd_inference::nn::{
    evaluate, ConfusionMatrix, ModelConfig, ModelWeights, SequenceClassifier, TrainOptions, Trainer,
};
use csd_inference::ransomware::{
    ApiVocabulary, DamageTimeline, Dataset, DatasetBuilder, FamilyProfile, Sandbox, SplitKind,
    Variant, WindowsVersion,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "dataset" => cmd_dataset(&args[1..]),
        "train" => cmd_train(&args[1..]),
        "detect" => cmd_detect(&args[1..]),
        "monitor" => cmd_monitor(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("csdctl: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
csdctl — CSD-based LSTM inference toolkit

commands:
  dataset --out FILE [--windows N] [--seed N] [--noise F]
      synthesize a labelled API-call corpus as CSV (46% ransomware)
  train --data FILE --out FILE [--epochs N] [--test-frac F] [--seed N]
      train the paper's 7,472-parameter model; writes the weight text file
  detect --model FILE --data FILE [--level fixed|ii|vanilla]
      classify a CSV with the CSD engine; prints accuracy/precision/recall/F1
  monitor --model FILE --family NAME [--variant N] [--seed N]
      detonate a fresh sample and stream it through the live monitor
  info --model FILE
      describe a weight file";

/// Pulls `--name value` out of `args`.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
    }
}

fn required<'a>(args: &'a [String], name: &str) -> Result<&'a str, String> {
    flag(args, name).ok_or_else(|| format!("missing required flag {name}"))
}

fn cmd_dataset(args: &[String]) -> Result<(), String> {
    let out = required(args, "--out")?;
    let windows: usize = parse(args, "--windows", 2_000)?;
    let seed: u64 = parse(args, "--seed", 0xC5D)?;
    let noise: f64 = parse(args, "--noise", 0.12)?;
    let ransomware = windows * 46 / 100;
    let ds = DatasetBuilder::new(seed)
        .ransomware_windows(ransomware)
        .benign_windows(windows - ransomware)
        .noise(noise)
        .build();
    std::fs::write(out, ds.to_csv()).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {} sequences ({} ransomware, {:.1}%) to {out}",
        ds.len(),
        ds.ransomware_count(),
        ds.ransomware_fraction() * 100.0
    );
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let data = required(args, "--data")?;
    let out = required(args, "--out")?;
    let epochs: usize = parse(args, "--epochs", 25)?;
    let test_frac: f64 = parse(args, "--test-frac", 0.2)?;
    let seed: u64 = parse(args, "--seed", 0xC5D)?;

    let csv = std::fs::read_to_string(data).map_err(|e| format!("reading {data}: {e}"))?;
    let ds = Dataset::from_csv(&csv)?;
    let (train, test) = ds.split(test_frac, SplitKind::Random, seed);
    eprintln!(
        "training on {} sequences, evaluating on {} ...",
        train.len(),
        test.len()
    );
    let mut model = SequenceClassifier::new(ModelConfig::paper(), seed);
    let trainer = Trainer::new(TrainOptions {
        epochs,
        seed,
        ..TrainOptions::default()
    });
    let history = trainer.fit(&mut model, &train.examples(), &test.examples());
    if let Some((epoch, acc)) = history.peak_accuracy() {
        println!("peak test accuracy {acc:.4} at epoch {epoch}");
    }
    let report = evaluate(&model, &test.examples());
    println!("final: {report}");
    std::fs::write(out, ModelWeights::from_model(&model).to_text())
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote weight file {out}");
    Ok(())
}

fn cmd_detect(args: &[String]) -> Result<(), String> {
    let model_path = required(args, "--model")?;
    let data = required(args, "--data")?;
    let level = match flag(args, "--level").unwrap_or("fixed") {
        "fixed" => OptimizationLevel::FixedPoint,
        "ii" => OptimizationLevel::IiOptimized,
        "vanilla" => OptimizationLevel::Vanilla,
        other => return Err(format!("unknown level {other:?} (fixed|ii|vanilla)")),
    };
    let text =
        std::fs::read_to_string(model_path).map_err(|e| format!("reading {model_path}: {e}"))?;
    let weights = ModelWeights::from_text(&text).map_err(|e| e.to_string())?;
    let engine = CsdInferenceEngine::new(&weights, level);

    let csv = std::fs::read_to_string(data).map_err(|e| format!("reading {data}: {e}"))?;
    let ds = Dataset::from_csv(&csv)?;
    let mut cm = ConfusionMatrix::new();
    for e in ds.entries() {
        cm.record(e.is_ransomware, engine.classify(&e.sequence).is_positive);
    }
    println!(
        "{} sequences classified at level {level}: {}",
        ds.len(),
        cm.report()
    );
    println!(
        "confusion: TP {} / FP {} / FN {} / TN {}",
        cm.true_positives(),
        cm.false_positives(),
        cm.false_negatives(),
        cm.true_negatives()
    );
    Ok(())
}

fn cmd_monitor(args: &[String]) -> Result<(), String> {
    let model_path = required(args, "--model")?;
    let family_name = required(args, "--family")?;
    let seed: u64 = parse(args, "--seed", 0xFEED)?;
    let family = FamilyProfile::by_name(family_name)
        .ok_or_else(|| format!("unknown family {family_name:?}"))?;
    let variant_idx: u32 = parse(args, "--variant", 0)?;
    if variant_idx >= family.variants {
        return Err(format!(
            "{family_name} has {} variants (0..{})",
            family.variants,
            family.variants - 1
        ));
    }
    let text =
        std::fs::read_to_string(model_path).map_err(|e| format!("reading {model_path}: {e}"))?;
    let weights = ModelWeights::from_text(&text).map_err(|e| e.to_string())?;
    let engine = CsdInferenceEngine::new(&weights, OptimizationLevel::FixedPoint);

    let sandbox = Sandbox::new(seed);
    let variant = Variant::new(family, variant_idx);
    let trace = sandbox.detonate(&variant, WindowsVersion::Win11);
    println!(
        "detonating {} on Windows 11: {} API calls captured",
        variant.id(),
        trace.len()
    );
    let vocab = ApiVocabulary::windows();
    let timeline = DamageTimeline::from_trace(&trace.calls, &vocab);
    let mut monitor = StreamMonitor::new(engine, MonitorConfig::default());
    match monitor.observe_all(&trace.calls) {
        Some(alert) => {
            println!(
                "ALERT at API call #{} (P = {:.4}) after {} classifications",
                alert.at_call,
                alert.probability,
                monitor.classifications()
            );
            println!(
                "cumulative on-device inference: {:.0} µs",
                alert.inference_us
            );
            println!(
                "damage at alert: {} of {} files lost; freezing writes saves {}",
                timeline.files_lost_by(alert.at_call),
                timeline.total_files(),
                timeline.files_saved_by(alert.at_call)
            );
        }
        None => println!("no alert raised over the full trace"),
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let model_path = required(args, "--model")?;
    let text =
        std::fs::read_to_string(model_path).map_err(|e| format!("reading {model_path}: {e}"))?;
    let w = ModelWeights::from_text(&text).map_err(|e| e.to_string())?;
    println!(
        "vocab {} | embed {} | hidden {} | activation {:?}",
        w.config.vocab, w.config.embed_dim, w.config.hidden, w.config.cell_activation
    );
    println!(
        "parameters: {} embedding + {} LSTM + {} head = {}",
        w.embedding.len(),
        w.lstm_kernel.len() + w.lstm_recurrent.len() + w.lstm_bias.len(),
        w.fc_weights.len() + 1,
        w.num_parameters()
    );
    Ok(())
}
