//! # csd-inference
//!
//! A full Rust reproduction of **"Empowering Data Centers with
//! Computational Storage Drive-Based Deep Learning Inference Functionality
//! to Combat Ransomware"** (Friday, Bou-Harb, Lee, Peethambaran, Saxena —
//! IEEE/IFIP DSN-S 2024): LSTM inference offloaded entirely onto the FPGA
//! of a SmartSSD-class Computational Storage Drive, applied to real-time
//! ransomware detection over Windows API-call sequences.
//!
//! This meta-crate re-exports the whole stack; each subsystem is its own
//! crate:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`fxp`] | `csd-fxp` | Decimal 10^6 fixed-point arithmetic (§III-D) |
//! | [`tensor`] | `csd-tensor` | Dense linear algebra over f64 and fixed point |
//! | [`nn`] | `csd-nn` | Offline training: embedding + LSTM + head, full BPTT |
//! | [`hls`] | `csd-hls` | HLS pragma/latency/resource model (hardware emulation stand-in) |
//! | [`device`] | `csd-device` | SmartSSD model: SSD, DDR banks, PCIe switch with P2P, XRT-like runtime |
//! | [`accel`] | `csd-accel` | **The paper's contribution**: the five-kernel CSD inference engine |
//! | [`ransomware`] | `csd-ransomware` | Synthetic Cuckoo corpus: 10 families / 76 variants + benign suite |
//! | [`baselines`] | `csd-baselines` | CPU/GPU execution models + native measurement (Table I) |
//! | [`sentry`] | `csd-sentry` | Host-side live ingestion: process events → sessions → windows → response |
//!
//! ## Quickstart
//!
//! ```rust
//! use csd_inference::accel::{CsdInferenceEngine, OptimizationLevel};
//! use csd_inference::nn::{ModelConfig, ModelWeights, SequenceClassifier};
//!
//! // 1. Train offline (here: a freshly-initialized paper-shaped model).
//! let model = SequenceClassifier::new(ModelConfig::paper(), 42);
//!
//! // 2. Export weights the way the paper's host program consumes them.
//! let weight_file = ModelWeights::from_model(&model).to_text();
//!
//! // 3. Deploy on the CSD with all optimizations and classify.
//! let weights = ModelWeights::from_text(&weight_file)?;
//! let engine = CsdInferenceEngine::new(&weights, OptimizationLevel::FixedPoint);
//! let api_calls: Vec<usize> = (0..100).map(|i| i % 278).collect();
//! let verdict = engine.classify(&api_calls);
//! assert!((0.0..=1.0).contains(&verdict.probability));
//! # Ok::<(), csd_inference::nn::weights::WeightsError>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `EXPERIMENTS.md`
//! for the paper-vs-measured record of every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use csd_accel as accel;
pub use csd_baselines as baselines;
pub use csd_device as device;
pub use csd_fxp as fxp;
pub use csd_hls as hls;
pub use csd_nn as nn;
pub use csd_ransomware as ransomware;
pub use csd_sentry as sentry;
pub use csd_tensor as tensor;
