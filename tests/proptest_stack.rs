//! Cross-crate property tests: invariants that must hold for *any* model
//! weights and *any* sequence, not just the seeds the unit tests pick.

use csd_inference::accel::{CsdInferenceEngine, OptimizationLevel};
use csd_inference::hls::{KernelSpec, LoopBody, LoopNest, NumericFormat, Op, Pragmas};
use csd_inference::nn::{ModelConfig, ModelWeights, SequenceClassifier};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = SequenceClassifier> {
    any::<u64>().prop_map(|seed| SequenceClassifier::new(ModelConfig::tiny(16), seed))
}

fn arb_seq() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..16, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any engine at any level yields a probability, and the hard decision
    /// is consistent with it.
    #[test]
    fn engine_always_yields_probability(model in arb_model(), seq in arb_seq()) {
        let weights = ModelWeights::from_model(&model);
        for level in OptimizationLevel::ALL {
            let c = CsdInferenceEngine::new(&weights, level).classify(&seq);
            prop_assert!((0.0..=1.0).contains(&c.probability));
            prop_assert_eq!(c.is_positive, c.probability >= 0.5);
        }
    }

    /// The float engine is bit-identical to the offline model; the fixed
    /// engine stays within a small quantization drift.
    #[test]
    fn engine_parity_with_offline_model(model in arb_model(), seq in arb_seq()) {
        let weights = ModelWeights::from_model(&model);
        let p_ref = model.predict_proba(&seq);
        let p_float = CsdInferenceEngine::new(&weights, OptimizationLevel::Vanilla)
            .classify(&seq)
            .probability;
        prop_assert!((p_float - p_ref).abs() < 1e-9);
        let p_fixed = CsdInferenceEngine::new(&weights, OptimizationLevel::FixedPoint)
            .classify(&seq)
            .probability;
        prop_assert!((p_fixed - p_ref).abs() < 0.05, "{p_fixed} vs {p_ref}");
    }

    /// The weight text file round-trips any model exactly.
    #[test]
    fn weight_file_roundtrip(model in arb_model()) {
        let w = ModelWeights::from_model(&model);
        let parsed = ModelWeights::from_text(&w.to_text()).expect("parse");
        prop_assert_eq!(&w, &parsed);
        let rebuilt = parsed.to_model();
        prop_assert_eq!(model.flatten_params(), rebuilt.flatten_params());
    }

    /// Classification is deterministic.
    #[test]
    fn classification_is_deterministic(model in arb_model(), seq in arb_seq()) {
        let weights = ModelWeights::from_model(&model);
        let e = CsdInferenceEngine::new(&weights, OptimizationLevel::FixedPoint);
        prop_assert_eq!(e.classify(&seq), e.classify(&seq));
    }
}

proptest! {
    /// HLS latency is monotone in trip count for a pipelined MAC loop.
    #[test]
    fn hls_latency_monotone_in_trips(a in 1u32..200, b in 1u32..200) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let est = |trips: u32| {
            KernelSpec::new("k", NumericFormat::Float32)
                .stage(LoopNest::new(trips, LoopBody::Mac, Pragmas::new().pipeline(1).partition()))
                .estimate_default()
                .fill_cycles
        };
        prop_assert!(est(lo) <= est(hi));
    }

    /// Unrolling (with partitioning) never makes a Map loop slower.
    #[test]
    fn hls_unroll_never_hurts(trips in 2u32..128, factor in 2u32..16) {
        let est = |pragmas: Pragmas| {
            KernelSpec::new("k", NumericFormat::FixedPoint64)
                .stage(LoopNest::new(
                    trips,
                    LoopBody::Map(vec![Op::Mul, Op::Add]),
                    pragmas,
                ))
                .estimate_default()
                .fill_cycles
        };
        let base = est(Pragmas::new().pipeline(1).partition());
        let unrolled = est(Pragmas::new().pipeline(1).partition().unroll(factor));
        prop_assert!(unrolled <= base, "{unrolled} > {base}");
    }

    /// Fixed-point never schedules a MAC loop slower than float under the
    /// same pragmas (the §III-D premise).
    #[test]
    fn fixed_point_mac_at_least_as_fast(trips in 2u32..128) {
        let est = |format| {
            KernelSpec::new("k", format)
                .stage(LoopNest::new(trips, LoopBody::Mac, Pragmas::new().pipeline(1).partition()))
                .estimate_default()
                .fill_cycles
        };
        prop_assert!(est(NumericFormat::FixedPoint64) <= est(NumericFormat::Float32));
    }
}
