//! The full closed loop the paper promises (§I): detection next to the
//! data triggers real-time mitigation. A detonation streams through the
//! on-device monitor; the alert quarantines the SSD; the malware's
//! subsequent encryption writes bounce off the freeze.

use csd_inference::accel::{
    CsdInferenceEngine, HostProgram, MonitorConfig, OptimizationLevel, StreamMonitor,
};
use csd_inference::nn::{ModelConfig, ModelWeights, SequenceClassifier, TrainOptions, Trainer};
use csd_inference::ransomware::{
    ApiVocabulary, DamageTimeline, DatasetBuilder, FamilyProfile, Sandbox, SplitKind, Variant,
    WindowsVersion,
};

/// A quickly-trained detector shared by the tests (training dominates).
fn detector() -> &'static SequenceClassifier {
    static MODEL: std::sync::OnceLock<SequenceClassifier> = std::sync::OnceLock::new();
    MODEL.get_or_init(|| {
        let (windows, epochs) = if cfg!(debug_assertions) {
            (240, 8)
        } else {
            (400, 14)
        };
        let r = windows * 46 / 100;
        let ds = DatasetBuilder::new(0x717)
            .ransomware_windows(r)
            .benign_windows(windows - r)
            .noise(0.12)
            .build();
        let (train, _) = ds.split(0.2, SplitKind::Random, 1);
        let mut model = SequenceClassifier::new(ModelConfig::paper(), 0x717);
        Trainer::new(TrainOptions {
            epochs,
            seed: 0x717,
            ..TrainOptions::default()
        })
        .fit(&mut model, &train.examples(), &[]);
        model
    })
}

#[test]
fn alert_quarantine_blocks_the_sweep() {
    let weights = ModelWeights::from_model(detector());
    let engine = CsdInferenceEngine::new(&weights, OptimizationLevel::FixedPoint);
    let mut host = HostProgram::new(&weights, OptimizationLevel::FixedPoint).expect("boot");

    // A fresh Lockbit detonation the detector never saw.
    let sandbox = Sandbox::new(0xA11CE);
    let variant = Variant::new(FamilyProfile::by_name("Lockbit").expect("family"), 2);
    let trace = sandbox.detonate_run(&variant, WindowsVersion::Win10, 3);

    let mut monitor = StreamMonitor::new(
        engine,
        MonitorConfig {
            votes_needed: 1,
            vote_horizon: 1,
            ..MonitorConfig::default()
        },
    );
    let mut blocked = 0u64;
    let mut landed = 0u64;
    let vocab = ApiVocabulary::windows();
    let write_tokens = [vocab.tok("WriteFile"), vocab.tok("NtWriteFile")];
    for &call in &trace {
        if let Some(_alert) = monitor.observe(call) {
            host.quarantine();
        }
        // Every file write in the trace becomes an SSD write attempt.
        if write_tokens.contains(&call) {
            match host.attempt_victim_write(16 * 1024) {
                Some(_) => landed += 1,
                None => blocked += 1,
            }
        }
    }
    assert!(monitor.alert().is_some(), "the detonation must be detected");
    assert!(blocked > 0, "the quarantine must reject writes");
    // Early detection: the overwhelming majority of destructive writes
    // are blocked.
    assert!(
        blocked as f64 / (blocked + landed) as f64 > 0.9,
        "blocked {blocked}, landed {landed}"
    );
}

#[test]
fn benign_session_is_never_quarantined() {
    let weights = ModelWeights::from_model(detector());
    let engine = CsdInferenceEngine::new(&weights, OptimizationLevel::FixedPoint);
    let sandbox = Sandbox::new(0xB0B);
    // A GUI-heavy editor: nowhere near the decision boundary (the
    // encrypted-backup hard negatives are exercised in exp_mitigation).
    let app = csd_inference::ransomware::BenignProfile::by_name("NotepadX").expect("app");
    let trace = sandbox.run_benign(&app, WindowsVersion::Win10);
    // Debounced config (the deployment default).
    let mut monitor = StreamMonitor::new(engine, MonitorConfig::default());
    assert!(
        monitor.observe_all(&trace.calls).is_none(),
        "a text editor must not trip the quarantine"
    );
}

#[test]
fn damage_timeline_confirms_files_saved() {
    let weights = ModelWeights::from_model(detector());
    let engine = CsdInferenceEngine::new(&weights, OptimizationLevel::FixedPoint);
    let vocab = ApiVocabulary::windows();
    let sandbox = Sandbox::new(0xCAFE);
    let variant = Variant::new(FamilyProfile::by_name("Cerber").expect("family"), 1);
    let trace = sandbox.detonate_run(&variant, WindowsVersion::Win11, 5);
    let timeline = DamageTimeline::from_trace(&trace, &vocab);
    assert!(timeline.total_files() > 10);

    let mut monitor = StreamMonitor::new(
        engine,
        MonitorConfig {
            votes_needed: 1,
            vote_horizon: 1,
            ..MonitorConfig::default()
        },
    );
    let alert = monitor.observe_all(&trace).expect("detected");
    let saved = timeline.files_saved_by(alert.at_call);
    assert!(
        saved * 10 >= timeline.total_files() * 9,
        "early alert must save ≥90% of files ({saved}/{})",
        timeline.total_files()
    );
}
