//! Integration tests over the corpus substrate: counts, splits, CSV, and
//! the Table II structure, at a scale the paper's Appendix A pins down.

use std::collections::HashSet;

use csd_inference::ransomware::family::table2;
use csd_inference::ransomware::{
    sliding_windows, ApiVocabulary, DatasetBuilder, FamilyProfile, Sandbox, SplitKind, Variant,
    WindowsVersion, WINDOW_LEN,
};

#[test]
fn paper_scale_corpus_counts() {
    // Build the real 29K corpus once (a few seconds in release, slower in
    // debug — still bounded).
    let ds = DatasetBuilder::paper(7).build();
    assert_eq!(ds.len(), 29_000);
    assert_eq!(ds.ransomware_count(), 13_340);
    assert!((ds.ransomware_fraction() - 0.46).abs() < 0.001);
    assert!(ds.entries().iter().all(|e| e.sequence.len() == WINDOW_LEN));

    // At full scale the whole 278-call vocabulary is exercised, so no
    // embedding row goes untrained.
    let used: HashSet<usize> = ds
        .entries()
        .iter()
        .flat_map(|e| e.sequence.iter().copied())
        .collect();
    assert_eq!(used.len(), ApiVocabulary::windows().len());
}

#[test]
fn table2_structure_matches_paper() {
    let rows = table2();
    assert_eq!(rows.len(), 10);
    assert!(rows.iter().all(|r| r.encryption));
    assert_eq!(rows.iter().filter(|r| r.self_propagation).count(), 4);
    let total: u32 = rows.iter().map(|r| r.instances).sum();
    assert_eq!(total, FamilyProfile::total_variants());
}

#[test]
fn every_variant_detonates_on_both_guests() {
    let sandbox = Sandbox::new(1);
    let vocab_len = sandbox.vocabulary().len();
    for v in Variant::corpus() {
        for os in WindowsVersion::BOTH {
            let t = sandbox.detonate(&v, os);
            assert!(t.len() >= WINDOW_LEN, "{} too short on {os:?}", v.id());
            assert!(t.calls.iter().all(|&tok| tok < vocab_len));
        }
    }
}

#[test]
fn corpus_exercises_most_of_the_vocabulary() {
    // Even a small corpus (a handful of traces) should cover most of the
    // 278-call vocabulary; full coverage is asserted at paper scale in
    // `paper_scale_corpus_counts`.
    let ds = DatasetBuilder::new(3)
        .ransomware_windows(400)
        .benign_windows(400)
        .build();
    let used: HashSet<usize> = ds
        .entries()
        .iter()
        .flat_map(|e| e.sequence.iter().copied())
        .collect();
    let vocab = ApiVocabulary::windows();
    assert!(
        used.len() * 4 >= vocab.len() * 3,
        "only {}/{} calls exercised",
        used.len(),
        vocab.len()
    );
}

#[test]
fn by_source_split_is_leak_free_at_scale() {
    let ds = DatasetBuilder::new(9)
        .ransomware_windows(500)
        .benign_windows(500)
        .build();
    let (train, test) = ds.split(0.25, SplitKind::BySource, 11);
    let train_sources: HashSet<&str> = train.entries().iter().map(|e| e.source.as_str()).collect();
    assert!(test
        .entries()
        .iter()
        .all(|e| !train_sources.contains(e.source.as_str())));
    // Both classes present on both sides.
    assert!(train.ransomware_count() > 0 && train.ransomware_count() < train.len());
    assert!(test.ransomware_count() > 0 && test.ransomware_count() < test.len());
}

#[test]
fn csv_roundtrip_at_scale() {
    let ds = DatasetBuilder::new(5)
        .ransomware_windows(150)
        .benign_windows(150)
        .build();
    let parsed = csd_inference::ransomware::Dataset::from_csv(&ds.to_csv()).expect("csv");
    assert_eq!(parsed.len(), ds.len());
    assert_eq!(parsed.ransomware_count(), ds.ransomware_count());
    for (a, b) in parsed.entries().iter().zip(ds.entries()) {
        assert_eq!(a.sequence, b.sequence);
    }
}

#[test]
fn sliding_windows_reconstruct_prefix_of_trace() {
    let sandbox = Sandbox::new(2);
    let v = Variant::corpus().into_iter().nth(40).expect("variant");
    let trace = sandbox.detonate(&v, WindowsVersion::Win10).calls;
    // Window k starts at offset 10k and matches the trace exactly — and
    // is a borrowed view, not a copy.
    for (k, w) in sliding_windows(&trace, WINDOW_LEN, 10).enumerate() {
        assert_eq!(w, &trace[k * 10..k * 10 + WINDOW_LEN]);
        assert!(std::ptr::eq(w.as_ptr(), &trace[k * 10]));
    }
}
