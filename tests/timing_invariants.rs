//! Integration tests over the timing stack: the orderings and magnitudes
//! that constitute the paper's Fig. 3 and Table I "shape".

use csd_inference::accel::{fig3, table1_fpga_row, HostProgram, OptimizationLevel};
use csd_inference::baselines::{CpuExecutionModel, GpuExecutionModel};
use csd_inference::device::{SmartSsd, TransferPath};
use csd_inference::nn::{ModelConfig, ModelWeights, SequenceClassifier};

#[test]
fn fig3_shape_holds() {
    let rows = fig3();
    assert_eq!(rows.len(), 3);
    let [vanilla, ii, fixed] = [rows[0].breakdown, rows[1].breakdown, rows[2].breakdown];

    // Totals fall monotonically with optimization.
    assert!(vanilla.total_us() > ii.total_us());
    assert!(ii.total_us() > fixed.total_us());

    // Gates dominate the vanilla design and collapse under fixed point.
    assert!(vanilla.gates_us > vanilla.preprocess_us + vanilla.hidden_us);
    assert!(vanilla.gates_us / fixed.gates_us > 500.0);

    // Preprocess is memory-bound and stays flat (paper: "fairly fixed").
    let pre = [vanilla.preprocess_us, ii.preprocess_us, fixed.preprocess_us];
    let spread =
        pre.iter().cloned().fold(f64::MIN, f64::max) - pre.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 0.1, "{pre:?}");

    // Hidden state: II helps; fixed point does not help much further.
    assert!(ii.hidden_us < vanilla.hidden_us);
    assert!((fixed.hidden_us - ii.hidden_us).abs() / ii.hidden_us < 0.2);
}

#[test]
fn table1_shape_holds() {
    let fpga = table1_fpga_row();
    let cpu = CpuExecutionModel::xeon_framework().measure(5_000, 1);
    let gpu = GpuExecutionModel::a100_framework().measure(5_000, 2);

    // FPGA ≪ GPU < CPU.
    assert!(fpga < gpu.mean / 100.0);
    assert!(gpu.mean < cpu.mean);

    // The headline: hundreds-fold speedup over the GPU (paper: 344.6×).
    let speedup = gpu.mean / fpga;
    assert!((200.0..700.0).contains(&speedup), "speedup {speedup}");

    // The paper's intervals are reproduced in location and width.
    assert!((cpu.mean - 991.58).abs() / 991.58 < 0.05);
    assert!((gpu.mean - 741.35).abs() / 741.35 < 0.05);
    assert!(cpu.ci_high > 1_500.0 && cpu.ci_low < 400.0);
    assert!(gpu.ci_high > 1_000.0 && gpu.ci_low > 250.0);
}

#[test]
fn optimized_fpga_total_is_paper_scale() {
    // Paper: 2.15133 µs. Structural model: within ~25%.
    let t = table1_fpga_row();
    assert!((t - 2.15133).abs() / 2.15133 < 0.25, "total {t} µs");
}

#[test]
fn device_runs_order_by_optimization_level() {
    let weights = ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::paper(), 3));
    let seq: Vec<usize> = (0..100).map(|i| i % 278).collect();
    let elapsed = |level| {
        let mut host = HostProgram::new(&weights, level).expect("boot");
        host.classify_from_ssd(&seq).expect("run").elapsed
    };
    let v = elapsed(OptimizationLevel::Vanilla);
    let ii = elapsed(OptimizationLevel::IiOptimized);
    let fx = elapsed(OptimizationLevel::FixedPoint);
    assert!(v > ii, "vanilla {v} vs II {ii}");
    assert!(ii > fx, "II {ii} vs fixed {fx}");
}

#[test]
fn p2p_beats_host_path_at_every_size() {
    for shift in [12u32, 16, 20, 24] {
        let bytes = 1u64 << shift;
        let p2p = SmartSsd::new_smartssd().transfer(TransferPath::SsdToFpgaP2p, bytes);
        let host = SmartSsd::new_smartssd().transfer(TransferPath::SsdToFpgaViaHost, bytes);
        assert!(p2p < host, "{bytes} B: {p2p} vs {host}");
    }
}

#[test]
fn native_rust_forward_is_microseconds_scale() {
    // The mechanism behind Table I: the arithmetic itself is tiny; the
    // baselines' cost is dispatch overhead.
    let model = SequenceClassifier::new(ModelConfig::paper(), 5);
    let seq: Vec<usize> = (0..100).map(|i| i % 278).collect();
    let s = csd_inference::baselines::measure_native_forward(&model, &seq, 20);
    assert!(
        s.mean < CpuExecutionModel::xeon_framework().mean_us(),
        "native {} µs should undercut the framework model",
        s.mean
    );
}
