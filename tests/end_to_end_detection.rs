//! End-to-end integration: sandbox corpus → offline training → weight
//! export → host ingest → on-device fixed-point classification, with the
//! detection quality the paper's §IV reports.

use csd_inference::accel::{CsdInferenceEngine, OptimizationLevel};
use csd_inference::nn::{
    evaluate, ConfusionMatrix, ModelConfig, ModelWeights, SequenceClassifier, TrainOptions, Trainer,
};
use csd_inference::ransomware::{DatasetBuilder, SplitKind};

/// A trained classifier plus the labelled test split it was evaluated on.
type TrainedFixture = (SequenceClassifier, Vec<(Vec<usize>, bool)>);

/// Trains once and shares the result across the tests in this file
/// (training dominates the suite's runtime). Debug builds use a smaller
/// corpus and fewer epochs; release builds the full small-scale task.
fn train_small() -> &'static TrainedFixture {
    static TRAINED: std::sync::OnceLock<TrainedFixture> = std::sync::OnceLock::new();
    TRAINED.get_or_init(|| {
        // Debug builds shrink the task (and use the leakier random split,
        // which stays well-conditioned at tiny scale) so the suite runs in
        // seconds; release builds use the honest held-out-source split.
        // The corpus and split seeds are chosen so the by-source split
        // holds out a mixed set of sources — source-level splitting is
        // coarse at this scale, and many seeds leave the test set
        // single-class.
        let (r, b, epochs, ds_seed, kind, split_seed) = if cfg!(debug_assertions) {
            (110, 130, 8, 0xE2E, SplitKind::Random, 1)
        } else {
            (160, 190, 20, 0xABC, SplitKind::BySource, 3)
        };
        let dataset = DatasetBuilder::new(ds_seed)
            .ransomware_windows(r)
            .benign_windows(b)
            .noise(0.12)
            .build();
        let (train, test) = dataset.split(0.2, kind, split_seed);
        let mut model = SequenceClassifier::new(ModelConfig::paper(), 0xE2E);
        let trainer = Trainer::new(TrainOptions {
            epochs,
            batch_size: 32,
            learning_rate: 0.01,
            seed: 0xE2E,
            ..TrainOptions::default()
        });
        trainer.fit(&mut model, &train.examples(), &[]);
        (model, test.examples())
    })
}

#[test]
fn offline_training_reaches_high_accuracy_on_held_out_sources() {
    let (model, test) = train_small();
    let test = test.as_slice();
    let report = evaluate(model, test);
    assert!(
        report.accuracy > 0.9,
        "held-out accuracy {:.3} too low",
        report.accuracy
    );
    assert!(report.f1 > 0.85, "F1 {:.3} too low", report.f1);
}

#[test]
fn on_device_fixed_point_detection_matches_offline() {
    let (model, test) = train_small();
    let test = test.as_slice();
    // The paper's full deployment path, text file included.
    let text = ModelWeights::from_model(model).to_text();
    let weights = ModelWeights::from_text(&text).expect("weight file");
    let engine = CsdInferenceEngine::new(&weights, OptimizationLevel::FixedPoint);

    let mut cm = ConfusionMatrix::new();
    let mut agree = 0usize;
    for (seq, label) in test {
        let device = engine.classify(seq).is_positive;
        cm.record(*label, device);
        if device == model.predict(seq) {
            agree += 1;
        }
    }
    let device_report = cm.report();
    let offline_report = evaluate(model, test);
    // Quantization must not change detection quality materially (§IV:
    // the optimized design keeps the headline metrics).
    assert!(
        (device_report.accuracy - offline_report.accuracy).abs() < 0.02,
        "device {:.4} vs offline {:.4}",
        device_report.accuracy,
        offline_report.accuracy
    );
    assert!(
        agree as f64 / test.len() as f64 > 0.98,
        "agreement {agree}/{}",
        test.len()
    );
}

#[test]
fn all_three_levels_classify_identically_on_decisions() {
    let (model, test) = train_small();
    let test = test.as_slice();
    let weights = ModelWeights::from_model(model);
    let engines: Vec<CsdInferenceEngine> = [
        OptimizationLevel::Vanilla,
        OptimizationLevel::IiOptimized,
        OptimizationLevel::FixedPoint,
    ]
    .iter()
    .map(|&l| CsdInferenceEngine::new(&weights, l))
    .collect();
    let mut disagreements = 0usize;
    for (seq, _) in test.iter().take(60) {
        let d0 = engines[0].classify(seq).is_positive;
        let d1 = engines[1].classify(seq).is_positive;
        let d2 = engines[2].classify(seq).is_positive;
        assert_eq!(d0, d1, "float levels must agree exactly");
        if d0 != d2 {
            disagreements += 1;
        }
    }
    // Fixed point may flip only borderline cases.
    assert!(disagreements <= 1, "{disagreements} fixed-point flips");
}
