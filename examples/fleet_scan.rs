//! Rack-scale deployment: several SmartSSDs in one node scanning a stored
//! corpus in parallel, with a fleet-wide CTI model update (§II's
//! scalability claim plus §III-A's retraining loop).
//!
//! ```text
//! cargo run --release --example fleet_scan
//! ```

use csd_inference::accel::{CsdFleet, OptimizationLevel};
use csd_inference::nn::{ModelConfig, ModelWeights, SequenceClassifier, TrainOptions, Trainer};
use csd_inference::ransomware::{DatasetBuilder, SplitKind};

fn main() {
    // Train a quick detector.
    println!("training a detector for the fleet ...");
    let dataset = DatasetBuilder::new(0xF1EE7)
        .ransomware_windows(200)
        .benign_windows(240)
        .noise(0.12)
        .build();
    let (train, test) = dataset.split(0.3, SplitKind::BySource, 1);
    let mut model = SequenceClassifier::new(ModelConfig::paper(), 0xF1EE7);
    Trainer::new(TrainOptions {
        epochs: 22,
        ..TrainOptions::default()
    })
    .fit(&mut model, &train.examples(), &[]);
    let weights = ModelWeights::from_model(&model);

    // The scan workload: the held-out windows, resident on the SSDs.
    let sequences: Vec<Vec<usize>> = test.entries().iter().map(|e| e.sequence.clone()).collect();
    let labels: Vec<bool> = test.entries().iter().map(|e| e.is_ransomware).collect();
    println!("scan workload: {} stored sequences", sequences.len());

    // Scale the node from 1 to 8 devices.
    println!("\n{:>8} {:>16} {:>10}", "devices", "wall time", "speedup");
    let mut t1 = None;
    for n in [1usize, 2, 4, 8] {
        let mut fleet =
            CsdFleet::new(n, &weights, OptimizationLevel::FixedPoint).expect("fleet boot");
        let scan = fleet.scan(&sequences).expect("scan");
        let base = *t1.get_or_insert(scan.elapsed);
        println!(
            "{:>8} {:>16} {:>9.2}x",
            n,
            scan.elapsed.to_string(),
            base.as_nanos() as f64 / scan.elapsed.as_nanos() as f64
        );
        if n == 4 {
            let correct = scan
                .classifications
                .iter()
                .zip(&labels)
                .filter(|(c, &l)| c.is_positive == l)
                .count();
            println!(
                "{:>8} accuracy on the stored corpus: {:.1}% ({} flagged)",
                "",
                100.0 * correct as f64 / labels.len() as f64,
                scan.positives()
            );
        }
    }

    // Fleet-wide CTI update: a retrained model rolls out with one weight
    // migration per device — no recompilation, no downtime.
    println!("\nrolling out a retrained model to a 4-device fleet ...");
    let mut fleet = CsdFleet::new(4, &weights, OptimizationLevel::FixedPoint).expect("fleet boot");
    let retrained = {
        let mut m2 = model.clone();
        Trainer::new(TrainOptions {
            epochs: 4,
            seed: 777,
            ..TrainOptions::default()
        })
        .fit(&mut m2, &train.examples(), &[]);
        ModelWeights::from_model(&m2)
    };
    fleet.update_weights(&retrained).expect("update");
    println!("done: every device now serves model v2.");
}
