//! A tour of the paper's optimizations (§III-C/D): what each one does to
//! the kernel schedules, resources, and per-item time — the story behind
//! Fig. 3, told by the HLS model.
//!
//! ```text
//! cargo run --release --example optimization_tour
//! ```

use csd_inference::accel::kernels::{gates, hidden, preprocess, GateKind, LstmDims};
use csd_inference::accel::timing::kernel_budget;
use csd_inference::accel::{fig3, OptimizationLevel};
use csd_inference::hls::{Clock, DeviceProfile};

fn main() {
    let dims = LstmDims::paper();
    let device = DeviceProfile::alveo_u200();
    let clock = Clock::default_kernel_clock();
    println!(
        "device: {} | kernel clock {:.0} MHz | model: vocab {}, embed {}, hidden {} (Z = {})",
        device.name,
        clock.freq_mhz(),
        dims.vocab,
        dims.embed,
        dims.hidden,
        dims.z()
    );

    for level in OptimizationLevel::ALL {
        println!("\n── {level} ─────────────────────────────────────────");
        let small = kernel_budget(&device, 10);
        let gate_budget = kernel_budget(&device, 20);

        let pre = preprocess::spec(level, &dims).estimate(&small);
        println!(
            "kernel_preprocess    fill {:>6} cyc ({:>8.4} µs)  {}",
            pre.timing.fill_cycles,
            clock.micros(pre.timing.fill_cycles),
            pre.resources
        );

        let g = gates::spec(GateKind::Input, level, &dims).estimate(&gate_budget);
        println!(
            "kernel_gates (1 CU)  fill {:>6} cyc ({:>8.4} µs)  interval {:>4} cyc  clamped: {}",
            g.timing.fill_cycles,
            clock.micros(g.timing.fill_cycles),
            g.timing.interval_cycles,
            g.unroll_clamped
        );
        println!("                     {}", g.resources);

        let h = hidden::spec(level, &dims).estimate(&small);
        println!(
            "kernel_hidden_state  fill {:>6} cyc ({:>8.4} µs)  {}",
            h.timing.fill_cycles,
            clock.micros(h.timing.fill_cycles),
            h.resources
        );
    }

    println!("\n── Fig. 3 summary (per-item µs) ─────────────────────");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "level", "preprocess", "gates(max)", "hidden", "total"
    );
    for row in fig3() {
        let b = row.breakdown;
        println!(
            "{:<14} {:>12.4} {:>12.5} {:>12.4} {:>12.5}",
            row.level.label(),
            b.preprocess_us,
            b.gates_us,
            b.hidden_us,
            b.total_us()
        );
    }
    println!("\nwhy fixed point wins: integer adds make the MAC's loop-carried");
    println!("dependence II = 1, and 1-2-DSP integer multipliers leave enough");
    println!("headroom to flatten the whole 32x40 gate matrix — so the row loop");
    println!("pipelines across sequence items instead of re-filling per item.");
}
