//! The SmartSSD data path: boot the host program on the simulated device,
//! load sequences from NAND peer-to-peer, and compare against the
//! host-bounced path — the architectural argument of the paper's §II.
//!
//! ```text
//! cargo run --release --example device_pipeline
//! ```

use csd_inference::accel::{HostProgram, OptimizationLevel};
use csd_inference::device::{SmartSsd, TransferPath};
use csd_inference::nn::{ModelConfig, ModelWeights, SequenceClassifier};

fn main() {
    // The P2P advantage in isolation, across transfer sizes.
    println!("SSD -> FPGA transfer paths (idle device):");
    println!(
        "{:>10} {:>14} {:>14} {:>8}",
        "bytes", "P2P", "via host", "gain"
    );
    for shift in [12u32, 16, 20, 24] {
        let bytes = 1u64 << shift;
        let p2p = SmartSsd::new_smartssd().transfer(TransferPath::SsdToFpgaP2p, bytes);
        let host = SmartSsd::new_smartssd().transfer(TransferPath::SsdToFpgaViaHost, bytes);
        println!(
            "{:>10} {:>14} {:>14} {:>7.2}x",
            bytes,
            p2p.to_string(),
            host.to_string(),
            host.as_nanos() as f64 / p2p.as_nanos() as f64
        );
    }

    // Boot the host program: weight-file ingest, buffer allocation on the
    // two DDR banks, kernel registration.
    println!("\nbooting the host program (weight migration + kernel setup) ...");
    let model = SequenceClassifier::new(ModelConfig::paper(), 11);
    let weight_file = ModelWeights::from_model(&model).to_text();
    let mut host = HostProgram::from_weight_file(&weight_file, OptimizationLevel::FixedPoint)
        .expect("host boot");

    // Classify a 100-call sequence living on the SSD.
    let seq: Vec<usize> = (0..100).map(|i| (i * 7 + 3) % 278).collect();
    let run = host.classify_from_ssd(&seq).expect("device run");
    println!(
        "  sequence classified on-device: P = {:.4}, simulated elapsed {}, {} B via P2P",
        run.classification.probability, run.elapsed, run.p2p_bytes
    );

    // The same run at each optimization level, showing the Fig. 3 effect
    // at the whole-device scale.
    println!("\nwhole-device run time by optimization level:");
    let weights = ModelWeights::from_text(&weight_file).expect("parse");
    for level in [
        OptimizationLevel::Vanilla,
        OptimizationLevel::IiOptimized,
        OptimizationLevel::FixedPoint,
    ] {
        let mut host = HostProgram::new(&weights, level).expect("boot");
        let run = host.classify_from_ssd(&seq).expect("run");
        println!("  {:<12} {}", level.to_string(), run.elapsed);
    }
}
