//! Quickstart: train a tiny model, export it through the paper's weight
//! file, deploy it on the CSD engine, and classify a sequence.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use csd_inference::accel::{CsdInferenceEngine, OptimizationLevel};
use csd_inference::nn::{ModelConfig, ModelWeights, SequenceClassifier, TrainOptions, Trainer};

fn main() {
    // A toy task: sequences of low tokens are "positive", high tokens
    // "negative" — enough to show the full train → export → deploy loop.
    let train: Vec<(Vec<usize>, bool)> = (0..64)
        .map(|i| {
            let positive = i % 2 == 0;
            let base = if positive { 0 } else { 6 };
            ((0..20).map(|t| base + (t + i) % 6).collect(), positive)
        })
        .collect();

    println!("training a tiny sequence classifier ...");
    let mut model = SequenceClassifier::new(ModelConfig::tiny(12), 7);
    let trainer = Trainer::new(TrainOptions {
        epochs: 30,
        learning_rate: 0.02,
        ..TrainOptions::default()
    });
    let history = trainer.fit(&mut model, &train, &train);
    let (epoch, acc) = history.peak_accuracy().expect("evaluated");
    println!("  peak train-set accuracy {acc:.3} at epoch {epoch}");

    // The paper's deployment path: get_weights() → text file → host ingest.
    let weight_file = ModelWeights::from_model(&model).to_text();
    println!(
        "exported weight file: {} bytes ({} parameters)",
        weight_file.len(),
        model.num_parameters()
    );

    let weights = ModelWeights::from_text(&weight_file).expect("parse weight file");
    let engine = CsdInferenceEngine::new(&weights, OptimizationLevel::FixedPoint);

    let positive_seq: Vec<usize> = (0..20).map(|t| t % 6).collect();
    let negative_seq: Vec<usize> = (0..20).map(|t| 6 + t % 6).collect();
    let p = engine.classify(&positive_seq);
    let n = engine.classify(&negative_seq);
    println!("on-device (fixed-point) classification:");
    println!(
        "  positive-pattern sequence -> P = {:.4} ({})",
        p.probability,
        if p.is_positive {
            "positive"
        } else {
            "negative"
        }
    );
    println!(
        "  negative-pattern sequence -> P = {:.4} ({})",
        n.probability,
        if n.is_positive {
            "positive"
        } else {
            "negative"
        }
    );
    assert!(p.probability > n.probability);
    println!("done: the quantized on-device engine reproduces the trained model.");
}
