//! The paper's use case end to end: build a sandbox corpus, train the
//! 7,472-parameter detector, deploy it on the CSD, and catch a live
//! detonation window by window — including the time-to-detection that
//! motivates in-storage inference.
//!
//! ```text
//! cargo run --release --example ransomware_detection
//! ```

use csd_inference::accel::{CsdInferenceEngine, MonitorConfig, OptimizationLevel, StreamMonitor};
use csd_inference::nn::{
    evaluate, ModelConfig, ModelWeights, SequenceClassifier, TrainOptions, Trainer,
};
use csd_inference::ransomware::{
    sliding_windows, DatasetBuilder, FamilyProfile, Sandbox, SplitKind, Variant, WindowsVersion,
    WINDOW_LEN,
};

fn main() {
    println!("building a sandbox corpus (800 windows, 46% ransomware) ...");
    let dataset = DatasetBuilder::new(0xC5D)
        .ransomware_windows(368)
        .benign_windows(432)
        .noise(0.12)
        .build();
    let (train, test) = dataset.split(0.2, SplitKind::BySource, 1);
    println!(
        "  {} train / {} test windows; class balance {:.0}% ransomware",
        train.len(),
        test.len(),
        dataset.ransomware_fraction() * 100.0
    );

    println!("training the paper's architecture (vocab 278, embed 8, hidden 32) ...");
    let mut model = SequenceClassifier::new(ModelConfig::paper(), 0xC5D);
    let trainer = Trainer::new(TrainOptions {
        epochs: 20,
        ..TrainOptions::default()
    });
    trainer.fit(&mut model, &train.examples(), &[]);
    let report = evaluate(&model, &test.examples());
    println!("  held-out sources: {report}");

    println!("deploying to the CSD (fixed-point engine) ...");
    let engine = CsdInferenceEngine::new(
        &ModelWeights::from_model(&model),
        OptimizationLevel::FixedPoint,
    );

    // A LIVE detonation: an unseen WannaCry re-run streams API calls; the
    // CSD classifies each sliding window as it completes.
    let sandbox = Sandbox::new(0xFEED);
    let wannacry = Variant::new(FamilyProfile::by_name("Wannacry").expect("family"), 3);
    let trace = sandbox.detonate_run(&wannacry, WindowsVersion::Win11, 9);
    println!(
        "live monitoring a fresh {} detonation ({} API calls) ...",
        wannacry.id(),
        trace.len()
    );
    // The continuous-protection wrapper: rolling window, stride 10,
    // 1-of-1 voting for fastest mitigation.
    let mut monitor = StreamMonitor::new(
        engine.clone(),
        MonitorConfig {
            votes_needed: 1,
            vote_horizon: 1,
            ..MonitorConfig::default()
        },
    );
    match monitor.observe_all(&trace) {
        Some(alert) => {
            println!(
                "  DETECTED at API call #{} (P = {:.4}) after {} window classifications",
                alert.at_call,
                alert.probability,
                monitor.classifications()
            );
            println!(
                "  cumulative on-device inference time ≈ {:.0} µs — \
                 mitigation can fire before the encryption sweep finishes",
                alert.inference_us
            );
        }
        None => println!("  not detected (unexpected for an encryption trace)"),
    }

    // Benign controls: an ordinary file manager (should stay quiet) and
    // an encrypted-backup tool — the classic hard negative whose
    // read→encrypt→write loops legitimately resemble ransomware.
    for app_name in ["FileCommander", "BackupBee"] {
        let app = csd_inference::ransomware::BenignProfile::by_name(app_name).expect("app");
        let benign_trace = sandbox.run_benign(&app, WindowsVersion::Win11);
        let windows = sliding_windows(&benign_trace.calls, WINDOW_LEN, 10);
        let total = windows.len();
        let alarms = windows.filter(|w| engine.classify(w).is_positive).count();
        println!(
            "benign control ({app_name}): {alarms}/{total} windows flagged{}",
            if app_name == "BackupBee" {
                " (hard negative: encrypted backups look like encryption sweeps)"
            } else {
                ""
            }
        );
    }
}
