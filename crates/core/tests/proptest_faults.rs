//! Property-based fault tolerance: no seeded fault interleaving may
//! lose or change a verdict.
//!
//! Two layers carry the contract. The stream multiplexer's degraded
//! mode evicts corrupted lanes and reruns their windows through the
//! serial fused path, so under *any* `FaultPlan` (any seed, any rate up
//! to certainty, any cooldown) every window still produces a verdict
//! bit-identical to fault-free serial classification — exact f64
//! equality on the float levels, 0 ULP in 10^6-scaled fixed point. The
//! host recovery layer makes the same promise for the device datapath:
//! CRC rejects, stalls, page-read failures and brownouts cost retries
//! and simulated time, never correctness.

use csd_accel::{
    CsdInferenceEngine, HostProgram, OptimizationLevel, RecoveryPolicy, StreamMux, StreamMuxConfig,
    Verdict,
};
use csd_device::{FaultConfig, FaultPlan};
use csd_nn::{ModelConfig, ModelWeights, SequenceClassifier};
use proptest::prelude::*;

fn engine(seed: u64, level: OptimizationLevel) -> CsdInferenceEngine {
    let model = SequenceClassifier::new(ModelConfig::paper(), seed);
    CsdInferenceEngine::new(&ModelWeights::from_model(&model), level)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Degraded-mode invariant: any seeded fault plan over any
    /// submission/tick interleaving, lane width, cooldown, and
    /// optimization level yields exactly one verdict per window,
    /// bit-identical to fault-free serial `classify`.
    #[test]
    fn any_fault_interleaving_is_bit_identical_to_fault_free_serial(
        model_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        // Up to certainty: rate 1.0 corrupts every occupied lane every
        // tick, forcing the whole workload through degraded reruns.
        rate in 0.0f64..=1.0,
        cooldown in 0u64..12,
        windows in prop::collection::vec(prop::collection::vec(0usize..278, 1..=100), 1..=12),
        ticks_between in prop::collection::vec(0usize..5, 12),
        level_idx in 0usize..3,
    ) {
        let level = OptimizationLevel::ALL[level_idx];
        let e = engine(model_seed, level);
        let serial: Vec<_> = windows.iter().map(|w| e.classify(w)).collect();
        for width in [1usize, 4, 9] {
            let mut m = StreamMux::new(
                e.clone(),
                StreamMuxConfig {
                    lanes: Some(width),
                    ..StreamMuxConfig::default()
                },
            );
            m.arm_faults(FaultPlan::new(fault_seed, FaultConfig::uniform(rate)), cooldown);
            let mut verdicts: Vec<Verdict> = Vec::new();
            for (k, w) in windows.iter().enumerate() {
                m.submit(k as u64, k, w);
                for _ in 0..ticks_between[k % ticks_between.len()] {
                    m.tick_into(&mut verdicts);
                }
            }
            verdicts.extend(m.drain());
            prop_assert!(m.is_idle());
            prop_assert_eq!(
                verdicts.len(), windows.len(),
                "no verdict lost: width {} rate {}", width, rate
            );
            for v in &verdicts {
                prop_assert_eq!(
                    v.classification,
                    serial[v.stream as usize],
                    "level {} width {} rate {} stream {}", level, width, rate, v.stream
                );
            }
            let s = m.stats();
            prop_assert_eq!(s.degraded_reruns, s.faults, "every fault reruns exactly once");
        }
    }

    /// Host recovery invariant: a flaky device datapath (every fault
    /// class armed at a low per-operation rate) never changes what a
    /// classification returns — retries and reprograms absorb the
    /// faults, and the verdict equals the pure engine's.
    #[test]
    fn host_recovery_preserves_verdicts_under_random_fault_seeds(
        fault_seed in any::<u64>(),
        // Per-operation rates compound over the ~tens of faultable
        // operations a short classify issues; keep them small enough
        // that a 24-retry budget makes success near-certain for every
        // seed.
        rate in 0.0f64..0.004,
        seq in prop::collection::vec(0usize..278, 4..=16),
    ) {
        let w = ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::paper(), 7));
        let reference = CsdInferenceEngine::new(&w, OptimizationLevel::FixedPoint);
        let mut host = HostProgram::new(&w, OptimizationLevel::FixedPoint)
            .expect("boot")
            .with_recovery(RecoveryPolicy {
                max_retries: 24,
                ..RecoveryPolicy::default()
            });
        host.arm_faults(FaultPlan::new(fault_seed, FaultConfig::uniform(rate)));
        for round in 0..3 {
            let run = host.classify_from_ssd(&seq).expect("recovery absorbs low-rate faults");
            prop_assert_eq!(
                run.classification,
                reference.classify(&seq),
                "round {} rate {}", round, rate
            );
        }
    }
}
