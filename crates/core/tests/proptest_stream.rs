//! Property-based parity of the continuous-batching stream multiplexer
//! against per-window serial classification.
//!
//! The mux's contract is the lane engine's, taken online: every
//! [`Verdict`] must be bit-identical — exact f64 equality on the float
//! levels, 0 ULP in 10^6-scaled fixed point — to
//! [`CsdInferenceEngine::classify`] of the same window, no matter how
//! admission interleaves with ticking, how ragged the window lengths
//! are, how narrow the lane block is, or how often retirements refill
//! slots mid-flight. The fleet monitor adds the second contract: with
//! identical inputs its per-process alert state equals a serial
//! [`StreamMonitor`] per process, alert for alert.

use std::collections::HashMap;

use csd_accel::{
    CsdInferenceEngine, MonitorConfig, OptimizationLevel, ShardedStreamMux, StealPolicy,
    StreamMonitor, StreamMux, StreamMuxConfig, Verdict,
};
use csd_nn::{ModelConfig, ModelWeights, SequenceClassifier};
use proptest::prelude::*;

fn engine(seed: u64, level: OptimizationLevel) -> CsdInferenceEngine {
    let model = SequenceClassifier::new(ModelConfig::paper(), seed);
    CsdInferenceEngine::new(&ModelWeights::from_model(&model), level)
}

fn mux(engine: CsdInferenceEngine, width: usize) -> StreamMux {
    StreamMux::new(
        engine,
        StreamMuxConfig {
            lanes: Some(width),
            ..StreamMuxConfig::default()
        },
    )
}

/// Ragged windows: the streams' due classifications.
fn arb_windows() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..278, 1..=120), 1..=14)
}

/// A random steal policy: the deterministic schedule or a seeded
/// splitmix64 victim stream — each draw is a different steal
/// interleaving over the same submissions.
fn arb_steal() -> impl Strategy<Value = StealPolicy> {
    prop_oneof![
        Just(StealPolicy::Deterministic),
        any::<u64>().prop_map(StealPolicy::Seeded),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Streamed verdicts equal serial per-window classification bit for
    /// bit at every optimization level and lane width, with submissions
    /// interleaved against ticks so windows are admitted into a mux
    /// whose lanes are mid-window, retire at different times, and refill
    /// slots within ticks.
    #[test]
    fn streamed_verdicts_bit_identical_to_serial(
        seed in any::<u64>(),
        windows in arb_windows(),
        // Tick budgets run between submissions — the knob that shuffles
        // admission and retirement orders mid-stream (cycled over
        // windows, so every submission gets one).
        ticks_between in prop::collection::vec(0usize..6, 14),
        level_idx in 0usize..3,
    ) {
        let level = OptimizationLevel::ALL[level_idx];
        let e = engine(seed, level);
        let serial: Vec<_> = windows.iter().map(|w| e.classify(w)).collect();
        for width in [1usize, 3, 8, 16] {
            let mut m = mux(e.clone(), width);
            let mut verdicts: Vec<Verdict> = Vec::new();
            for (k, w) in windows.iter().enumerate() {
                m.submit(k as u64, k, w);
                for _ in 0..ticks_between[k % ticks_between.len()] {
                    m.tick_into(&mut verdicts);
                }
            }
            verdicts.extend(m.drain());
            prop_assert!(m.is_idle());
            prop_assert_eq!(verdicts.len(), windows.len(), "width {}", width);
            for v in &verdicts {
                prop_assert_eq!(
                    v.classification,
                    serial[v.stream as usize],
                    "level {} width {} stream {}", level, width, v.stream
                );
            }
        }
    }

    /// The sharded mux keeps the single mux's bit-identity contract at
    /// every shard count and under every steal interleaving — work may
    /// migrate between shards mid-run, but each verdict still equals
    /// serial classification of its window exactly, and each stream's
    /// verdicts arrive in submission order.
    #[test]
    fn sharded_verdicts_bit_identical_at_every_shard_count_and_steal_order(
        seed in any::<u64>(),
        windows in arb_windows(),
        ticks_between in prop::collection::vec(0usize..6, 14),
        shards in 1usize..=4,
        steal in arb_steal(),
        level_idx in 0usize..3,
    ) {
        let level = OptimizationLevel::ALL[level_idx];
        let e = engine(seed, level);
        let serial: Vec<_> = windows.iter().map(|w| e.classify(w)).collect();
        let mut m = ShardedStreamMux::new(
            e,
            StreamMuxConfig {
                // Narrow shards force queueing and stealing.
                lanes: Some(2),
                shards: Some(shards),
                steal: Some(steal),
                ..StreamMuxConfig::default()
            },
        );
        let mut verdicts: Vec<Verdict> = Vec::new();
        // Every stream submits two windows so per-stream order is
        // observable: stream k gets windows k and (k+1) % n.
        let n = windows.len();
        for (k, w) in windows.iter().enumerate() {
            m.submit(k as u64, 0, w);
            m.submit(k as u64, 1, &windows[(k + 1) % n]);
            for _ in 0..ticks_between[k % ticks_between.len()] {
                m.tick_into(&mut verdicts);
            }
        }
        m.drain_into(&mut verdicts);
        prop_assert!(m.is_idle());
        prop_assert_eq!(verdicts.len(), 2 * n, "shards {}", shards);
        let mut last_seq: HashMap<u64, u64> = HashMap::new();
        let mut seen: HashMap<u64, usize> = HashMap::new();
        for v in &verdicts {
            let which = seen.entry(v.stream).or_insert(0);
            let expect = if *which == 0 {
                v.stream as usize
            } else {
                (v.stream as usize + 1) % n
            };
            *which += 1;
            prop_assert_eq!(
                v.classification,
                serial[expect],
                "level {} shards {} steal {:?} stream {}", level, shards, steal, v.stream
            );
            // Submission order within the stream: at_call 0 before 1,
            // seq strictly increasing.
            prop_assert_eq!(v.at_call, *which - 1);
            if let Some(&prev) = last_seq.get(&v.stream) {
                prop_assert!(prev < v.seq, "stream {} out of order", v.stream);
            }
            last_seq.insert(v.stream, v.seq);
        }
    }

    /// Draining everything at once (pure batch arrival) agrees with the
    /// same windows trickled in one tick apart (pure online arrival):
    /// arrival order must be invisible in the verdicts.
    #[test]
    fn arrival_pattern_does_not_change_verdicts(
        seed in any::<u64>(),
        windows in prop::collection::vec(prop::collection::vec(0usize..278, 1..=80), 1..=10),
        level_idx in 0usize..3,
    ) {
        let level = OptimizationLevel::ALL[level_idx];
        let e = engine(seed, level);
        let mut batch = mux(e.clone(), 4);
        for (k, w) in windows.iter().enumerate() {
            batch.submit(k as u64, k, w);
        }
        let batch_verdicts = batch.drain();

        let mut online = mux(e, 4);
        let mut online_verdicts = Vec::new();
        for (k, w) in windows.iter().enumerate() {
            online.submit(k as u64, k, w);
            online.tick_into(&mut online_verdicts);
        }
        online_verdicts.extend(online.drain());

        let by_stream = |vs: &[Verdict]| -> Vec<_> {
            let mut v: Vec<_> = vs.iter().map(|v| (v.stream, v.classification)).collect();
            v.sort_by_key(|&(s, _)| s);
            v
        };
        prop_assert_eq!(by_stream(&batch_verdicts), by_stream(&online_verdicts));
    }

    /// The fleet monitor's per-process alert state equals a serial
    /// `StreamMonitor` per process fed the same calls, across random
    /// trace lengths, monitor geometries, shard counts, and steal
    /// interleavings. The vote fold is order-sensitive, so this also
    /// proves the sharded mux's per-stream delivery order.
    #[test]
    fn fleet_monitor_matches_serial_monitors(
        seed in any::<u64>(),
        traces in prop::collection::vec(prop::collection::vec(0usize..278, 0..=220), 1..=6),
        window_len in 4usize..40,
        stride in 1usize..20,
        shards in 1usize..=4,
        steal in arb_steal(),
    ) {
        let config = MonitorConfig {
            window_len,
            stride,
            votes_needed: 1,
            vote_horizon: 2,
        };
        let e = engine(seed, OptimizationLevel::FixedPoint);
        let mut reference = HashMap::new();
        for (pid, calls) in traces.iter().enumerate() {
            let mut m = StreamMonitor::new(e.clone(), config);
            m.observe_all(calls);
            reference.insert(pid as u64, m.alert());
        }
        let mut fleet = csd_accel::FleetMonitor::new(
            e,
            config,
            StreamMuxConfig {
                shards: Some(shards),
                steal: Some(steal),
                ..StreamMuxConfig::default()
            },
        );
        let longest = traces.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..longest {
            for (pid, calls) in traces.iter().enumerate() {
                if let Some(&c) = calls.get(i) {
                    fleet.observe(pid as u64, c);
                }
            }
            // Poll sporadically: alerts may surface late but must match.
            if i % 7 == 0 {
                let _ = fleet.poll();
            }
        }
        let _ = fleet.drain();
        for (pid, expected) in &reference {
            prop_assert_eq!(
                fleet.alert_for(*pid), *expected,
                "pid {} window_len {} stride {}", pid, window_len, stride
            );
        }
    }
}
