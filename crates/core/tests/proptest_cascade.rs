//! Property-based contract of the two-tier cascade, online and serial.
//!
//! The cascade relaxes the mux's bit-identity contract in one place
//! only: a window the calibrated band *resolves* carries the screen
//! tier's probability. Everything else is invariant, and these
//! properties pin it: a window's cascade verdict is a pure function of
//! its contents (identical across lane widths, shard counts, and steal
//! interleavings — whichever of the lane block, the screen block, or a
//! serial fallback ran it), every *escalated* window's verdict is
//! bit-identical to exact-only classification (0 ULP, the lane-stepping
//! contract), and switching the cascade off reproduces the single-tier
//! machine exactly.

use csd_accel::{
    build_cascade, CascadeMode, Classification, CsdInferenceEngine, OptimizationLevel,
    ShardedStreamMux, StealPolicy, StreamMux, StreamMuxConfig, Verdict,
};
use csd_nn::{ModelConfig, ModelWeights, SequenceClassifier};
use proptest::prelude::*;

fn engine_and_weights(seed: u64) -> (CsdInferenceEngine, ModelWeights) {
    let model = SequenceClassifier::new(ModelConfig::paper(), seed);
    let weights = ModelWeights::from_model(&model);
    let engine = CsdInferenceEngine::new(&weights, OptimizationLevel::FixedPoint);
    (engine, weights)
}

fn arb_windows() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..278, 1..=100), 1..=12)
}

fn arb_steal() -> impl Strategy<Value = StealPolicy> {
    prop_oneof![
        Just(StealPolicy::Deterministic),
        any::<u64>().prop_map(StealPolicy::Seeded),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Across lane widths, shard counts, and steal orders, every cascade
    /// verdict equals serial `classify_cascade` of the same window, and
    /// every escalated window is 0-ULP identical to exact-only
    /// classification. Margins sweep from degenerate (0: a collapsed or
    /// midpoint band) to wide (0.05: most windows escalate), so both
    /// cascade outcomes and both degenerate band arms get traffic.
    #[test]
    fn cascade_verdicts_are_a_pure_function_of_the_window(
        seed in any::<u64>(),
        windows in arb_windows(),
        ticks_between in prop::collection::vec(0usize..5, 12),
        margin_idx in 0usize..3,
        scale_pow in 3u32..=4,
        steal in arb_steal(),
    ) {
        let margin = [0.0, 0.002, 0.05][margin_idx];
        let (exact, weights) = engine_and_weights(seed);
        let oracle = |s: &[usize]| exact.classify(s).is_positive;
        let (tier, _, _) = build_cascade(&weights, scale_pow, margin, &windows, oracle)
            .expect("quantizer guarantees the i16 pack");
        let cascaded = exact.clone().with_cascade(tier);
        let reference: Vec<(Classification, bool)> =
            windows.iter().map(|w| cascaded.classify_cascade(w)).collect();
        // Escalated windows must already match exact-only bit for bit.
        for (w, (c, escalated)) in windows.iter().zip(&reference) {
            if *escalated {
                prop_assert_eq!(*c, exact.classify(w), "serial escalation not exact");
            }
        }

        for width in [1usize, 4] {
            let mut m = StreamMux::new(
                cascaded.clone(),
                StreamMuxConfig {
                    lanes: Some(width),
                    cascade: Some(CascadeMode::On),
                    ..StreamMuxConfig::default()
                },
            );
            let mut verdicts: Vec<Verdict> = Vec::new();
            for (k, w) in windows.iter().enumerate() {
                m.submit(k as u64, k, w);
                for _ in 0..ticks_between[k % ticks_between.len()] {
                    m.tick_into(&mut verdicts);
                }
            }
            verdicts.extend(m.drain());
            prop_assert!(m.is_idle());
            prop_assert_eq!(verdicts.len(), windows.len(), "width {}", width);
            for v in &verdicts {
                let (c, escalated) = &reference[v.stream as usize];
                prop_assert_eq!(
                    v.classification, *c,
                    "margin {} width {} stream {}", margin, width, v.stream
                );
                if *escalated {
                    prop_assert_eq!(
                        v.classification,
                        exact.classify(&windows[v.stream as usize]),
                        "escalated window drifted from exact-only"
                    );
                }
            }
            let stats = m.stats();
            prop_assert_eq!(
                stats.escalated,
                reference.iter().filter(|(_, e)| *e).count() as u64
            );
            prop_assert_eq!(stats.screened + stats.escalated, windows.len() as u64);
        }

        for shards in [2usize, 4] {
            let mut m = ShardedStreamMux::new(
                cascaded.clone(),
                StreamMuxConfig {
                    lanes: Some(2),
                    shards: Some(shards),
                    steal: Some(steal),
                    cascade: Some(CascadeMode::On),
                    ..StreamMuxConfig::default()
                },
            );
            let mut verdicts: Vec<Verdict> = Vec::new();
            for (k, w) in windows.iter().enumerate() {
                m.submit(k as u64, k, w);
                for _ in 0..ticks_between[k % ticks_between.len()] {
                    m.tick_into(&mut verdicts);
                }
            }
            m.drain_into(&mut verdicts);
            prop_assert!(m.is_idle());
            prop_assert_eq!(verdicts.len(), windows.len(), "shards {}", shards);
            for v in &verdicts {
                let (c, escalated) = &reference[v.stream as usize];
                prop_assert_eq!(
                    v.classification, *c,
                    "margin {} shards {} steal {:?} stream {}", margin, shards, steal, v.stream
                );
                if *escalated {
                    prop_assert_eq!(
                        v.classification,
                        exact.classify(&windows[v.stream as usize]),
                        "escalated window drifted from exact-only"
                    );
                }
            }
        }
    }

    /// With the cascade explicitly off, a cascade-mounted engine's mux
    /// is byte-for-byte the single-tier machine: every verdict 0-ULP
    /// identical to serial exact classification.
    #[test]
    fn cascade_off_reproduces_the_single_tier_machine(
        seed in any::<u64>(),
        windows in arb_windows(),
        shards in 1usize..=3,
        steal in arb_steal(),
    ) {
        let (exact, weights) = engine_and_weights(seed);
        let oracle = |s: &[usize]| exact.classify(s).is_positive;
        let (tier, _, _) = build_cascade(&weights, 4, 0.02, &windows, oracle)
            .expect("quantizer guarantees the i16 pack");
        let cascaded = exact.clone().with_cascade(tier);
        let mut m = ShardedStreamMux::new(
            cascaded,
            StreamMuxConfig {
                lanes: Some(2),
                shards: Some(shards),
                steal: Some(steal),
                cascade: Some(CascadeMode::Off),
                ..StreamMuxConfig::default()
            },
        );
        for (k, w) in windows.iter().enumerate() {
            m.submit(k as u64, k, w);
        }
        let verdicts = m.drain();
        prop_assert_eq!(verdicts.len(), windows.len());
        for v in &verdicts {
            prop_assert_eq!(
                v.classification,
                exact.classify(&windows[v.stream as usize]),
                "shards {} stream {}", shards, v.stream
            );
        }
        let stats = m.stats();
        prop_assert_eq!(stats.screened, 0);
        prop_assert_eq!(stats.escalated, 0);
    }
}
