//! Property-based parity of the three gate execution paths.
//!
//! The fused zero-allocation path is the default; the per-CU serial and
//! pooled-parallel paths mirror the hardware CUs. All three must agree
//! bit for bit on random models and random sequences at every
//! optimization level: exactly (f64 `assert_eq`) on the float levels,
//! and to 0 ULP in 10^6-scaled fixed point (fixed-point classification
//! is a deterministic function of the quantized weights, so any path
//! divergence shows up as raw-integer inequality).

use csd_accel::{CsdInferenceEngine, GatePath, OptimizationLevel};
use csd_nn::{ModelConfig, ModelWeights, SequenceClassifier};
use proptest::prelude::*;

fn arb_sequence() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..278, 1..=60)
}

fn engines(seed: u64, level: OptimizationLevel) -> [CsdInferenceEngine; 3] {
    let model = SequenceClassifier::new(ModelConfig::paper(), seed);
    let weights = ModelWeights::from_model(&model);
    let fused = CsdInferenceEngine::new(&weights, level);
    [
        fused.clone().with_gate_path(GatePath::PerCuSerial),
        fused.clone().with_gate_path(GatePath::PerCuParallel),
        fused,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fused == per-CU-serial == pooled-parallel on the float levels,
    /// compared with exact f64 equality (not a tolerance).
    #[test]
    fn float_paths_bit_identical(
        seed in any::<u64>(),
        seq in arb_sequence(),
        ii in any::<bool>(),
    ) {
        let level = if ii {
            OptimizationLevel::IiOptimized
        } else {
            OptimizationLevel::Vanilla
        };
        let [serial, parallel, fused] = engines(seed, level);
        let want = fused.classify(&seq);
        prop_assert_eq!(serial.classify(&seq), want);
        prop_assert_eq!(parallel.classify(&seq), want);
        prop_assert_eq!(serial.final_hidden_f64(&seq), fused.final_hidden_f64(&seq));
    }

    /// Same property in fixed point: the probability is produced from
    /// raw `i64` state, so f64 equality here certifies 0 ULP agreement
    /// of the underlying Fx6 computation (narrow-MAC matvec included).
    #[test]
    fn fixed_point_paths_zero_ulp(seed in any::<u64>(), seq in arb_sequence()) {
        let [serial, parallel, fused] = engines(seed, OptimizationLevel::FixedPoint);
        let want = fused.classify(&seq);
        prop_assert_eq!(serial.classify(&seq), want);
        prop_assert_eq!(parallel.classify(&seq), want);
        prop_assert_eq!(serial.final_hidden_f64(&seq), fused.final_hidden_f64(&seq));
    }

    /// `classify_batch` (pooled workers, chunked scatter) returns exactly
    /// what per-sequence classification returns, in input order, for
    /// every level and any batch size including awkward ones.
    #[test]
    fn batch_matches_serial_at_every_level(
        seed in any::<u64>(),
        batch in prop::collection::vec(arb_sequence(), 1..=9),
        level_idx in 0usize..3,
    ) {
        let level = OptimizationLevel::ALL[level_idx];
        let model = SequenceClassifier::new(ModelConfig::paper(), seed);
        let engine = CsdInferenceEngine::new(&ModelWeights::from_model(&model), level);
        let individually: Vec<_> = batch.iter().map(|s| engine.classify(s)).collect();
        prop_assert_eq!(engine.classify_batch(&batch), individually);
    }
}
