//! Property-based parity of the lane-batched engine against the serial
//! per-sequence path.
//!
//! The lane engine advances many sequences in lockstep as
//! structure-of-arrays blocks; its contract is *bit identity* with
//! [`CsdInferenceEngine::classify`] at every optimization level — exact
//! f64 equality on the float levels and 0 ULP in 10^6-scaled fixed point
//! — across ragged length mixes and lane widths that exercise every
//! kernel dispatch tier (scalar remainders, AVX2 4-wide tiles, AVX-512
//! 8-wide tiles) plus the early-retirement/refill machinery.

use csd_accel::{CsdInferenceEngine, OptimizationLevel};
use csd_nn::{ModelConfig, ModelWeights, SequenceClassifier};
use proptest::prelude::*;

fn arb_ragged_batch() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..278, 1..=150), 1..=12)
}

fn engine(seed: u64, level: OptimizationLevel) -> CsdInferenceEngine {
    let model = SequenceClassifier::new(ModelConfig::paper(), seed);
    CsdInferenceEngine::new(&ModelWeights::from_model(&model), level)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Lane-batched classification equals per-sequence classification
    /// bit for bit, for every optimization level and lane widths hitting
    /// each SIMD dispatch tier (1 and 3: scalar; 8 and 32: full tiles).
    #[test]
    fn lanes_bit_identical_to_serial(
        seed in any::<u64>(),
        batch in arb_ragged_batch(),
        level_idx in 0usize..3,
    ) {
        let level = OptimizationLevel::ALL[level_idx];
        let engine = engine(seed, level);
        let refs: Vec<&[usize]> = batch.iter().map(Vec::as_slice).collect();
        let serial: Vec<_> = batch.iter().map(|s| engine.classify(s)).collect();
        for width in [1usize, 3, 8, 32] {
            let laned = engine.classify_lanes_with_width(&refs, width);
            prop_assert_eq!(&laned, &serial, "width {}", width);
        }
    }

    /// The default-width entry point (heuristic or `CSD_LANE_WIDTH`)
    /// agrees too, via the `classify_batch` routing the monitors use.
    #[test]
    fn batch_routing_bit_identical_to_serial(
        seed in any::<u64>(),
        batch in arb_ragged_batch(),
        level_idx in 0usize..3,
    ) {
        let level = OptimizationLevel::ALL[level_idx];
        let engine = engine(seed, level);
        let serial: Vec<_> = batch.iter().map(|s| engine.classify(s)).collect();
        prop_assert_eq!(engine.classify_batch(&batch), serial);
    }

    /// The vocabulary-indexed gate table (fold the embedding into the
    /// fused matrix at pack time, gather per timestep) is an exact
    /// integer reassociation: with the table forced on and forced off,
    /// serial and lane classification agree bit for bit at every width
    /// tier — and both agree with the table-free serial reference.
    #[test]
    fn gate_table_on_off_bit_identical(
        seed in any::<u64>(),
        batch in arb_ragged_batch(),
    ) {
        let on = engine(seed, OptimizationLevel::FixedPoint).with_gate_table(true);
        let off = engine(seed, OptimizationLevel::FixedPoint).with_gate_table(false);
        let refs: Vec<&[usize]> = batch.iter().map(Vec::as_slice).collect();
        let reference: Vec<_> = batch.iter().map(|s| off.classify(s)).collect();
        let tabled: Vec<_> = batch.iter().map(|s| on.classify(s)).collect();
        prop_assert_eq!(&tabled, &reference, "serial table vs unfolded");
        for width in [1usize, 3, 8, 32] {
            prop_assert_eq!(
                on.classify_lanes_with_width(&refs, width),
                reference.clone(),
                "table lanes vs unfolded serial, width {}",
                width
            );
            prop_assert_eq!(
                off.classify_lanes_with_width(&refs, width),
                reference.clone(),
                "unfolded lanes vs unfolded serial, width {}",
                width
            );
        }
    }
}

/// Early lane retirement and refill must not scramble result order: a
/// batch whose lengths force many retire/refill cycles per lane block
/// still returns results in input order, equal to serial classification.
#[test]
fn retirement_and_refill_preserve_input_order() {
    let engine = engine(77, OptimizationLevel::FixedPoint);
    // Width 2 with wildly ragged lengths: lanes retire at different
    // times and refill from the queue repeatedly.
    let lengths = [100usize, 3, 50, 1, 80, 2, 9, 120, 4, 7];
    let batch: Vec<Vec<usize>> = lengths
        .iter()
        .enumerate()
        .map(|(k, &n)| (0..n).map(|i| (i * 13 + k * 29) % 278).collect())
        .collect();
    let refs: Vec<&[usize]> = batch.iter().map(Vec::as_slice).collect();
    let serial: Vec<_> = batch.iter().map(|s| engine.classify(s)).collect();
    for width in [1usize, 2, 3, 8] {
        assert_eq!(
            engine.classify_lanes_with_width(&refs, width),
            serial,
            "width {width}"
        );
    }
}

/// Sequences longer than the proven lane step bound take the serial
/// fallback and still return correct, ordered results.
#[test]
fn overlong_sequences_fall_back_to_serial() {
    let engine = engine(5, OptimizationLevel::FixedPoint);
    let long: Vec<usize> = (0..csd_accel::LANE_MAX_STEPS + 1)
        .map(|i| i % 278)
        .collect();
    let short: Vec<usize> = (0..40).map(|i| (i * 7) % 278).collect();
    let batch = [short.clone(), long.clone(), short];
    let refs: Vec<&[usize]> = batch.iter().map(Vec::as_slice).collect();
    let serial: Vec<_> = batch.iter().map(|s| engine.classify(s)).collect();
    assert_eq!(engine.classify_lanes_with_width(&refs, 8), serial);
}
