//! Regression pin on the fleet monitor's idle-stream memory budget.
//!
//! The fleet-scale design point is a million *registered* processes of
//! which only a sliver are actively classifying. That only works if a
//! dormant stream's resident cost is O(100 B): hot lane state
//! (rolling window, classification cadence) lives behind an `Option`
//! that dormant streams leave `None`, so an idle entry is just the hash
//! table slot — key, two null boxes, a call counter, and a packed vote
//! ring.

use csd_accel::{FleetMonitor, MonitorConfig, OptimizationLevel, StreamMuxConfig};
use csd_nn::{ModelConfig, ModelWeights, SequenceClassifier};

/// ISSUE 6's acceptance bound: at fleet scale a dormant registered
/// stream may cost at most ~100 bytes of table space.
const IDLE_STREAM_BUDGET_BYTES: f64 = 100.0;

#[test]
fn idle_stream_budget_holds_at_fleet_scale() {
    let model = SequenceClassifier::new(ModelConfig::tiny(16), 3);
    let engine = engine_for(&model);
    let mut fleet = FleetMonitor::new(
        engine,
        MonitorConfig {
            window_len: 24,
            stride: 8,
            votes_needed: 2,
            vote_horizon: 4,
        },
        StreamMuxConfig {
            shards: Some(2),
            ..StreamMuxConfig::default()
        },
    );
    // 120k registered streams: enough to sit just above a hashbrown
    // capacity doubling (2^17 slots would hold ~114k at 7/8 load), so
    // the pin measures the table at its just-grown, worst-amortized
    // point rather than a lucky fill factor.
    const STREAMS: u64 = 120_000;
    for pid in 0..STREAMS {
        fleet.register(pid);
    }
    let r = fleet.resident_bytes();
    assert_eq!(r.tracked, STREAMS as usize);
    assert_eq!(
        r.idle, STREAMS as usize,
        "register() must not allocate hot state"
    );
    assert_eq!(r.hot_bytes, 0);
    assert_eq!(r.latched_bytes, 0);
    assert!(
        r.per_idle_stream() <= IDLE_STREAM_BUDGET_BYTES,
        "idle stream costs {:.1} B, budget is {} B",
        r.per_idle_stream(),
        IDLE_STREAM_BUDGET_BYTES
    );
    // The budget holds the total down: 120k dormant streams under
    // ~12 MB of table, mux lane state excluded.
    assert!(
        r.table_bytes <= 12 << 20,
        "table is {} bytes",
        r.table_bytes
    );
}

/// Observing a stream allocates its hot state; an alert latch frees it
/// back down to the compact latched record.
#[test]
fn hot_state_is_freed_when_streams_go_dormant_paths() {
    let model = SequenceClassifier::new(ModelConfig::tiny(16), 3);
    let engine = engine_for(&model);
    let mut fleet = FleetMonitor::new(
        engine,
        MonitorConfig {
            window_len: 8,
            stride: 4,
            votes_needed: 1,
            vote_horizon: 2,
        },
        StreamMuxConfig::default(),
    );
    for pid in 0..64u64 {
        fleet.register(pid);
    }
    let before = fleet.resident_bytes();
    assert_eq!(before.hot_bytes, 0);
    // Wake a quarter of them.
    for pid in 0..16u64 {
        for i in 0..4usize {
            fleet.observe(pid, i % 16);
        }
    }
    let awake = fleet.resident_bytes();
    assert_eq!(awake.tracked, 64);
    assert_eq!(awake.idle, 48);
    assert!(awake.hot_bytes > 0, "observed streams hold hot state");
    // Hot state is bounded by the rolling-window geometry, not by
    // trace length.
    for pid in 0..16u64 {
        for i in 0..200usize {
            fleet.observe(pid, (i * 7) % 16);
        }
        let _ = fleet.poll();
    }
    let _ = fleet.drain();
    let after = fleet.resident_bytes();
    let per_hot = |r: &csd_accel::FleetResidentBytes| {
        if r.tracked == r.idle {
            0.0
        } else {
            r.hot_bytes as f64 / (r.tracked - r.idle) as f64
        }
    };
    if after.tracked > after.idle {
        assert!(per_hot(&after) <= 2.0 * per_hot(&awake).max(1.0) + 1024.0);
    }
}

fn engine_for(model: &SequenceClassifier) -> csd_accel::CsdInferenceEngine {
    csd_accel::CsdInferenceEngine::new(
        &ModelWeights::from_model(model),
        OptimizationLevel::FixedPoint,
    )
}
