//! The three optimization levels evaluated in the paper's Fig. 3.

use csd_hls::{NumericFormat, Pragmas};
use serde::{Deserialize, Serialize};

/// Which of the paper's incremental optimization configurations a design
/// is built with (§III-D, Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptimizationLevel {
    /// Kernel parallelization only (§III-C); loops carry no pragmas beyond
    /// the toolchain's default innermost-loop pipelining.
    Vanilla,
    /// Adds the initiation-interval recipe: `PIPELINE II=1`, partial
    /// `UNROLL`, and complete `ARRAY_PARTITION` on the hot loops.
    IiOptimized,
    /// Adds decimal 10^6 fixed-point arithmetic. The cheaper integer
    /// operators reach II = 1 through the MAC accumulation *and* leave
    /// enough DSP headroom to flatten the gate matrix entirely, so the
    /// row loop pipelines across sequence items.
    FixedPoint,
}

impl OptimizationLevel {
    /// All three levels in Fig. 3's presentation order (most to least
    /// optimized is reversed there; we use build-up order).
    pub const ALL: [OptimizationLevel; 3] = [
        OptimizationLevel::Vanilla,
        OptimizationLevel::IiOptimized,
        OptimizationLevel::FixedPoint,
    ];

    /// The arithmetic format kernels are synthesized in.
    pub fn format(self) -> NumericFormat {
        match self {
            OptimizationLevel::FixedPoint => NumericFormat::FixedPoint64,
            _ => NumericFormat::Float32,
        }
    }

    /// `true` when the level executes with quantized integers.
    pub fn is_fixed_point(self) -> bool {
        self == OptimizationLevel::FixedPoint
    }

    /// Pragmas applied to innermost compute loops.
    ///
    /// Vanilla gets bare auto-pipelining (Vitis pipelines innermost loops
    /// by default); the optimized levels add the paper's unroll/partition
    /// recipe, with full unrolling requested at the fixed-point level.
    pub fn inner_loop_pragmas(self) -> Pragmas {
        match self {
            OptimizationLevel::Vanilla => Pragmas::new().pipeline(1),
            OptimizationLevel::IiOptimized => Pragmas::new().pipeline(1).unroll(4).partition(),
            OptimizationLevel::FixedPoint => Pragmas::new().pipeline(1).unroll_full().partition(),
        }
    }

    /// Pragmas applied to outer (row) loops. Only the fixed-point level
    /// requests row-level pipelining/unrolling — for the float levels the
    /// fully-unrolled inner loop it would require does not fit the DSP
    /// budget economically (§III-D's resource argument).
    pub fn outer_loop_pragmas(self) -> Pragmas {
        match self {
            OptimizationLevel::FixedPoint => Pragmas::new().pipeline(1).unroll_full(),
            _ => Pragmas::new(),
        }
    }

    /// Display label matching Fig. 3's x-axis.
    pub fn label(self) -> &'static str {
        match self {
            OptimizationLevel::Vanilla => "Vanilla",
            OptimizationLevel::IiOptimized => "II",
            OptimizationLevel::FixedPoint => "Fixed-point",
        }
    }
}

impl std::fmt::Display for OptimizationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(OptimizationLevel::Vanilla.format(), NumericFormat::Float32);
        assert_eq!(
            OptimizationLevel::FixedPoint.format(),
            NumericFormat::FixedPoint64
        );
        assert!(OptimizationLevel::FixedPoint.is_fixed_point());
        assert!(!OptimizationLevel::IiOptimized.is_fixed_point());
    }

    #[test]
    fn pragma_recipes_escalate() {
        let v = OptimizationLevel::Vanilla.inner_loop_pragmas();
        assert!(!v.is_partitioned());
        let ii = OptimizationLevel::IiOptimized.inner_loop_pragmas();
        assert!(ii.is_partitioned());
        assert_eq!(ii.unroll_factor(40), 4);
        let fx = OptimizationLevel::FixedPoint.inner_loop_pragmas();
        assert!(fx.is_fully_unrolled());
    }

    #[test]
    fn only_fixed_point_pipelines_outer_loops() {
        assert_eq!(
            OptimizationLevel::Vanilla
                .outer_loop_pragmas()
                .pipeline_ii(),
            None
        );
        assert_eq!(
            OptimizationLevel::IiOptimized
                .outer_loop_pragmas()
                .pipeline_ii(),
            None
        );
        assert_eq!(
            OptimizationLevel::FixedPoint
                .outer_loop_pragmas()
                .pipeline_ii(),
            Some(1)
        );
    }

    #[test]
    fn labels_match_fig3() {
        let labels: Vec<&str> = OptimizationLevel::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels, vec!["Vanilla", "II", "Fixed-point"]);
        assert_eq!(OptimizationLevel::FixedPoint.to_string(), "Fixed-point");
    }
}
