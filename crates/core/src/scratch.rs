//! Preallocated working memory for the zero-allocation inference path.
//!
//! The fused serial path walks a sequence touching only the buffers held
//! here: the per-timestep loop performs no heap allocation at all. This
//! mirrors the hardware, where every kernel-side array is a fixed BRAM
//! buffer sized at synthesis from the model dimensions (§III-B), not
//! storage acquired per item.

use csd_fxp::Fx6;
use csd_tensor::{Scalar, Vector};

use crate::kernels::LstmDims;

/// Reusable buffers for one in-flight sequence at one precision.
///
/// Allocated once (per engine call or per batch worker) and reset between
/// sequences; the timestep loop only reads and overwrites them.
#[derive(Debug, Clone)]
pub struct InferenceScratch<T> {
    /// Embedding of the current item (`E` elements).
    pub x: Vector<T>,
    /// Concatenated `[h_{t−1}, x_t]` gate input (`Z = H + E` elements).
    pub z: Vector<T>,
    /// Fused gate vector: pre-activations then activations in place
    /// (`4H` elements, TF gate order `i f c o`).
    pub g: Vector<T>,
    /// Cell state `C_t` (`H` elements).
    pub c: Vector<T>,
    /// Hidden state `h_t` (`H` elements).
    pub h: Vector<T>,
    /// Staging for the narrow-MAC gate matvec (`Z` capacity): the raw
    /// input narrowed to `i32` for the packed fixed-point path. Unused
    /// (but cheap) on the float instance.
    pub narrow_z: Vec<i32>,
}

impl<T: Scalar> InferenceScratch<T> {
    /// Allocates all buffers for the given model dimensions.
    pub fn new(dims: LstmDims) -> Self {
        Self {
            x: Vector::zeros(dims.embed),
            z: Vector::zeros(dims.z()),
            g: Vector::zeros(4 * dims.hidden),
            c: Vector::zeros(dims.hidden),
            h: Vector::zeros(dims.hidden),
            narrow_z: Vec::with_capacity(dims.z()),
        }
    }

    /// Zeroes the recurrent state so the next sequence starts fresh. The
    /// non-state buffers (`x`, `z`, `g`) are fully overwritten every
    /// timestep and need no clearing.
    pub fn reset(&mut self) {
        self.c.as_mut_slice().fill(T::zero());
        self.h.as_mut_slice().fill(T::zero());
    }
}

/// Both precisions' scratch, so one allocation serves an engine at any
/// [`OptimizationLevel`](crate::opt::OptimizationLevel).
#[derive(Debug, Clone)]
pub struct EngineScratch {
    /// Float-path buffers.
    pub f64_buffers: InferenceScratch<f64>,
    /// Fixed-point-path buffers.
    pub fx_buffers: InferenceScratch<Fx6>,
}

impl EngineScratch {
    /// Allocates scratch for the given model dimensions.
    pub fn new(dims: LstmDims) -> Self {
        Self {
            f64_buffers: InferenceScratch::new(dims),
            fx_buffers: InferenceScratch::new(dims),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_sized_from_dims() {
        let dims = LstmDims::paper();
        let s: InferenceScratch<f64> = InferenceScratch::new(dims);
        assert_eq!(s.x.len(), dims.embed);
        assert_eq!(s.z.len(), dims.hidden + dims.embed);
        assert_eq!(s.g.len(), 4 * dims.hidden);
        assert_eq!(s.c.len(), dims.hidden);
        assert_eq!(s.h.len(), dims.hidden);
    }

    #[test]
    fn reset_clears_only_state() {
        let dims = LstmDims::paper();
        let mut s: InferenceScratch<f64> = InferenceScratch::new(dims);
        s.c[0] = 1.5;
        s.h[3] = -2.0;
        s.g[7] = 9.0;
        s.reset();
        assert!(s.c.iter().all(|&v| v == 0.0));
        assert!(s.h.iter().all(|&v| v == 0.0));
        assert_eq!(s.g[7], 9.0);
    }
}
