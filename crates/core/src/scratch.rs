//! Preallocated working memory for the zero-allocation inference path.
//!
//! The fused serial path walks a sequence touching only the buffers held
//! here: the per-timestep loop performs no heap allocation at all. This
//! mirrors the hardware, where every kernel-side array is a fixed BRAM
//! buffer sized at synthesis from the model dimensions (§III-B), not
//! storage acquired per item.

use csd_fxp::Fx6;
use csd_tensor::{Scalar, Vector};

use crate::kernels::LstmDims;

/// Reusable buffers for one in-flight sequence at one precision.
///
/// Allocated once (per engine call or per batch worker) and reset between
/// sequences; the timestep loop only reads and overwrites them.
#[derive(Debug, Clone)]
pub struct InferenceScratch<T> {
    /// Embedding of the current item (`E` elements).
    pub x: Vector<T>,
    /// Concatenated `[h_{t−1}, x_t]` gate input (`Z = H + E` elements).
    pub z: Vector<T>,
    /// Fused gate vector: pre-activations then activations in place
    /// (`4H` elements, TF gate order `i f c o`).
    pub g: Vector<T>,
    /// Cell state `C_t` (`H` elements).
    pub c: Vector<T>,
    /// Hidden state `h_t` (`H` elements).
    pub h: Vector<T>,
    /// Staging for the narrow-MAC gate matvec (`Z` capacity): the raw
    /// input narrowed to `i32` for the packed fixed-point path. Unused
    /// (but cheap) on the float instance.
    pub narrow_z: Vec<i32>,
}

impl<T: Scalar> InferenceScratch<T> {
    /// Allocates all buffers for the given model dimensions.
    pub fn new(dims: LstmDims) -> Self {
        Self {
            x: Vector::zeros(dims.embed),
            z: Vector::zeros(dims.z()),
            g: Vector::zeros(4 * dims.hidden),
            c: Vector::zeros(dims.hidden),
            h: Vector::zeros(dims.hidden),
            narrow_z: Vec::with_capacity(dims.z()),
        }
    }

    /// Zeroes the recurrent state so the next sequence starts fresh. The
    /// non-state buffers (`x`, `z`, `g`) are fully overwritten every
    /// timestep and need no clearing.
    pub fn reset(&mut self) {
        self.c.as_mut_slice().fill(T::zero());
        self.h.as_mut_slice().fill(T::zero());
    }
}

/// Structure-of-arrays working memory for one lane block: `width`
/// sequences advanced in lockstep by the lane-batched engine path.
///
/// Layout: every buffer is row-major with lanes contiguous — element
/// `(row r, lane l)` lives at `buf[r * width + l]`. All buffers are `f64`
/// for both precisions: the float path stores actual values, the
/// fixed-point path stores raw 10^6-scaled integers exactly encoded in
/// `f64` (see [`csd_tensor::lanes`]).
///
/// The hidden state has no buffer of its own: rows `0..H` of `z` *are*
/// `h`, so the `[h | x]` gate-input concatenation falls out of the layout
/// and the update kernel writes `h_t` directly where the next timestep's
/// matmul reads it.
#[derive(Debug, Clone)]
pub struct LaneScratch {
    /// Gate input block, `Z × width`: rows `0..H` hold `h_{t−1}`, rows
    /// `H..Z` hold the gathered embedding of each lane's current item.
    pub z: Vec<f64>,
    /// Fused gate block, `4H × width`: pre-activations then activations
    /// in place (TF gate order `i f c o`, gate `g` owning the contiguous
    /// row range `g·H..(g+1)·H`).
    pub g: Vec<f64>,
    /// Cell state block, `H × width`.
    pub c: Vec<f64>,
    /// Four-accumulator scratch (`4 × width`) for the order-preserving
    /// float lane matmul.
    pub acc: Vec<f64>,
    /// Each lane's current vocabulary item — the gate-table row the
    /// fixed-point table matmul initializes that lane's accumulators
    /// from. Idle and freshly cleared lanes point at item 0: its table
    /// row is a valid, proof-bounded entry, and only retired lanes'
    /// outputs are ever read, so the placeholder cannot affect a verdict.
    pub item: Vec<usize>,
    hidden: usize,
    width: usize,
}

impl LaneScratch {
    /// Allocates all lane buffers for the given model dimensions and lane
    /// width.
    ///
    /// # Panics
    ///
    /// Panics when `width` is zero.
    pub fn new(dims: LstmDims, width: usize) -> Self {
        assert!(width > 0, "lane width must be at least 1");
        Self {
            z: vec![0.0; dims.z() * width],
            g: vec![0.0; 4 * dims.hidden * width],
            c: vec![0.0; dims.hidden * width],
            acc: vec![0.0; 4 * width],
            item: vec![0; width],
            hidden: dims.hidden,
            width,
        }
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Heap bytes held by the lane buffers — the per-shard fixed cost a
    /// sharded mux multiplies by its shard count.
    pub fn resident_bytes(&self) -> usize {
        (self.z.capacity() + self.g.capacity() + self.c.capacity() + self.acc.capacity())
            * std::mem::size_of::<f64>()
            + self.item.capacity() * std::mem::size_of::<usize>()
    }

    /// Zeroes one lane's recurrent state (its `h` rows inside `z` and its
    /// `c` column) so a freshly assigned — or vacated — lane starts from
    /// the zero state. The embedding rows are overwritten at the next
    /// gather (or harmlessly stale for a vacated lane: every kernel input
    /// stays inside its proven range).
    pub fn clear_lane(&mut self, lane: usize) {
        for r in 0..self.hidden {
            self.z[r * self.width + lane] = 0.0;
            self.c[r * self.width + lane] = 0.0;
        }
        self.item[lane] = 0;
    }

    /// Zeroes every buffer.
    pub fn reset(&mut self) {
        self.z.fill(0.0);
        self.g.fill(0.0);
        self.c.fill(0.0);
        self.item.fill(0);
    }
}

/// Structure-of-arrays working memory for one *screen-tier* lane block:
/// `width` sequences advanced in lockstep through the quantized integer
/// recurrence (`i16` hidden state feeding the narrow MAC, cell and gate
/// blocks as exact integers carried in `f64` for the branchless
/// epilogue kernels — see the screen section of `csd_tensor::lanes`).
///
/// Same layout contract as [`LaneScratch`] — element `(row r, lane l)`
/// lives at `buf[r * width + l]`. Idle and freshly cleared lanes point
/// at item 0 (a valid, bounded gate-table row), exactly as the
/// exact-path lane scratch does.
#[derive(Debug, Clone)]
pub struct ScreenLaneScratch {
    /// Hidden state block, `H × width`, raw at the screen scale. The
    /// update invariant keeps `|h| ≤ scale ≤ 10^4`, so `i16` holds it.
    pub h: Vec<i16>,
    /// Cell state block, `H × width`, raw at the screen scale —
    /// integer-valued `f64` (exact: `|C| ≤ 8000·scale ≪ 2^53`).
    pub c: Vec<f64>,
    /// Narrow-MAC output block, `4H × width`: exact `i32` row sums at
    /// scale².
    pub mac: Vec<i32>,
    /// Fused gate block, `4H × width`: pre-activations then activations
    /// in place (TF gate order `i f c o`), integer-valued `f64`.
    pub g: Vec<f64>,
    /// Each lane's current vocabulary item (gate-table row).
    pub item: Vec<usize>,
    hidden: usize,
    width: usize,
}

impl ScreenLaneScratch {
    /// Allocates all screen lane buffers.
    ///
    /// # Panics
    ///
    /// Panics when `hidden` or `width` is zero.
    pub fn new(hidden: usize, width: usize) -> Self {
        assert!(hidden > 0, "hidden size must be at least 1");
        assert!(width > 0, "lane width must be at least 1");
        Self {
            h: vec![0; hidden * width],
            c: vec![0.0; hidden * width],
            mac: vec![0; 4 * hidden * width],
            g: vec![0.0; 4 * hidden * width],
            item: vec![0; width],
            hidden,
            width,
        }
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Heap bytes held by the screen lane buffers.
    pub fn resident_bytes(&self) -> usize {
        self.h.capacity() * std::mem::size_of::<i16>()
            + self.c.capacity() * std::mem::size_of::<f64>()
            + self.mac.capacity() * std::mem::size_of::<i32>()
            + self.g.capacity() * std::mem::size_of::<f64>()
            + self.item.capacity() * std::mem::size_of::<usize>()
    }

    /// Zeroes one lane's recurrent state (`h` and `c` columns) and parks
    /// its item on the placeholder row, so a freshly assigned — or
    /// vacated — lane starts from the zero state.
    pub fn clear_lane(&mut self, lane: usize) {
        for r in 0..self.hidden {
            self.h[r * self.width + lane] = 0;
            self.c[r * self.width + lane] = 0.0;
        }
        self.item[lane] = 0;
    }

    /// Zeroes every buffer.
    pub fn reset(&mut self) {
        self.h.fill(0);
        self.c.fill(0.0);
        self.mac.fill(0);
        self.g.fill(0.0);
        self.item.fill(0);
    }
}

/// Both precisions' scratch, so one allocation serves an engine at any
/// [`OptimizationLevel`](crate::opt::OptimizationLevel).
#[derive(Debug, Clone)]
pub struct EngineScratch {
    /// Float-path buffers.
    pub f64_buffers: InferenceScratch<f64>,
    /// Fixed-point-path buffers.
    pub fx_buffers: InferenceScratch<Fx6>,
}

impl EngineScratch {
    /// Allocates scratch for the given model dimensions.
    pub fn new(dims: LstmDims) -> Self {
        Self {
            f64_buffers: InferenceScratch::new(dims),
            fx_buffers: InferenceScratch::new(dims),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_sized_from_dims() {
        let dims = LstmDims::paper();
        let s: InferenceScratch<f64> = InferenceScratch::new(dims);
        assert_eq!(s.x.len(), dims.embed);
        assert_eq!(s.z.len(), dims.hidden + dims.embed);
        assert_eq!(s.g.len(), 4 * dims.hidden);
        assert_eq!(s.c.len(), dims.hidden);
        assert_eq!(s.h.len(), dims.hidden);
    }

    #[test]
    fn lane_scratch_layout_and_clear() {
        let dims = LstmDims::paper();
        let width = 4;
        let mut s = LaneScratch::new(dims, width);
        assert_eq!(s.z.len(), dims.z() * width);
        assert_eq!(s.g.len(), 4 * dims.hidden * width);
        assert_eq!(s.c.len(), dims.hidden * width);
        assert_eq!(s.acc.len(), 4 * width);
        assert_eq!(s.width(), width);
        s.z.fill(1.0);
        s.c.fill(2.0);
        s.item.fill(7);
        s.clear_lane(2);
        assert_eq!(s.item[2], 0);
        assert_eq!(s.item[1], 7);
        for r in 0..dims.hidden {
            assert_eq!(s.z[r * width + 2], 0.0);
            assert_eq!(s.c[r * width + 2], 0.0);
            assert_eq!(s.z[r * width + 1], 1.0);
            assert_eq!(s.c[r * width + 3], 2.0);
        }
        // Embedding rows of the cleared lane are untouched (overwritten
        // by the next gather).
        assert_eq!(s.z[dims.hidden * width + 2], 1.0);
        s.reset();
        assert!(s.z.iter().all(|&v| v == 0.0));
        assert!(s.item.iter().all(|&v| v == 0));
    }

    #[test]
    fn reset_clears_only_state() {
        let dims = LstmDims::paper();
        let mut s: InferenceScratch<f64> = InferenceScratch::new(dims);
        s.c[0] = 1.5;
        s.h[3] = -2.0;
        s.g[7] = 9.0;
        s.reset();
        assert!(s.c.iter().all(|&v| v == 0.0));
        assert!(s.h.iter().all(|&v| v == 0.0));
        assert_eq!(s.g[7], 9.0);
    }
}
