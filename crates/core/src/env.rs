//! Shared parsing of the engine's environment knobs.
//!
//! Three runtime knobs tune the software engine to its host:
//! `CSD_POOL_THREADS` (worker pool size), `CSD_LANE_WIDTH` (lane-block
//! width of the batch engine), and `CSD_STREAM_LANES` (lane slots of the
//! streaming multiplexer). All three share one contract — a positive
//! integer, anything else silently ignored in favour of the built-in
//! heuristic — implemented once here so the modules cannot drift.

/// Names of the recognized environment knobs, for documentation and
/// diagnostics.
pub const ENV_KNOBS: [&str; 3] = ["CSD_POOL_THREADS", "CSD_LANE_WIDTH", "CSD_STREAM_LANES"];

/// Reads `name` as a positive integer: `Some(n)` when the variable is
/// set, parses (after trimming whitespace), and is at least 1; `None`
/// otherwise — unset, empty, non-numeric, zero, and negative values all
/// fall back to the caller's default.
pub fn positive_usize(name: &str) -> Option<usize> {
    parse_positive(std::env::var(name).ok()?.as_str())
}

/// The parsing rule behind [`positive_usize`], separated for testing
/// without touching the process environment.
fn parse_positive(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_integers() {
        assert_eq!(parse_positive("1"), Some(1));
        assert_eq!(parse_positive("16"), Some(16));
        assert_eq!(parse_positive("  8  "), Some(8), "whitespace trimmed");
    }

    #[test]
    fn rejects_zero_negative_and_garbage() {
        assert_eq!(parse_positive("0"), None);
        assert_eq!(parse_positive("-3"), None);
        assert_eq!(parse_positive(""), None);
        assert_eq!(parse_positive("four"), None);
        assert_eq!(parse_positive("8.5"), None);
        assert_eq!(parse_positive("8 lanes"), None);
    }

    #[test]
    fn unset_variable_reads_none() {
        // A name no test (or machine) sets: the env read path itself.
        assert_eq!(positive_usize("CSD_TEST_UNSET_KNOB_XYZZY"), None);
    }

    #[test]
    fn set_variable_reads_through() {
        // A unique name so parallel tests cannot race on it.
        std::env::set_var("CSD_TEST_SET_KNOB_XYZZY", "12");
        assert_eq!(positive_usize("CSD_TEST_SET_KNOB_XYZZY"), Some(12));
        std::env::set_var("CSD_TEST_SET_KNOB_XYZZY", "nope");
        assert_eq!(positive_usize("CSD_TEST_SET_KNOB_XYZZY"), None);
        std::env::remove_var("CSD_TEST_SET_KNOB_XYZZY");
    }

    #[test]
    fn knob_names_are_documented() {
        assert!(ENV_KNOBS.contains(&"CSD_STREAM_LANES"));
        assert!(ENV_KNOBS.contains(&"CSD_LANE_WIDTH"));
        assert!(ENV_KNOBS.contains(&"CSD_POOL_THREADS"));
    }
}
