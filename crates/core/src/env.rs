//! Shared parsing of the engine's environment knobs.
//!
//! Seven runtime knobs tune the software engine to its host:
//! `CSD_POOL_THREADS` (worker pool size), `CSD_LANE_WIDTH` (lane-block
//! width of the batch engine), `CSD_STREAM_LANES` (lane slots per
//! streaming-mux shard), `CSD_STREAM_SHARDS` (shard count of the
//! sharded streaming mux), `CSD_STREAM_DETERMINISTIC_STEAL`
//! (forces the deterministic work-steal policy for reproducible runs),
//! `CSD_GATE_TABLE` (the precomputed input-gate table on the
//! fixed-point paths, default on — bit-identical either way), and
//! `CSD_MAC_I16` (attempt the `i16×i16→i32` gate repack at engine
//! construction, default on — the pack declines whenever the narrow
//! proof fails, always at the paper's 10^6 scale).
//! The integer knobs share one contract — a positive integer, anything
//! else silently ignored in favour of the built-in heuristic — and the
//! boolean knobs share another (`1/0`, `true/false`, `yes/no`, `on/off`,
//! case-insensitive, anything else ignored), both implemented once here
//! so the modules cannot drift.
//!
//! The two-tier cascade adds three more: `CSD_CASCADE` (the mux's
//! cascade mode — the flag spellings plus `verify`, default off),
//! `CSD_SCREEN_SCALE` (the screen tier's decimal scale exponent,
//! `1..=4`, default 4), and `CSD_CASCADE_BAND` (the calibration safety
//! margin as a non-negative fraction of the probability range, default
//! 0.02).

use crate::cascade::CascadeMode;

/// Names of the recognized environment knobs, for documentation and
/// diagnostics.
pub const ENV_KNOBS: [&str; 10] = [
    "CSD_POOL_THREADS",
    "CSD_LANE_WIDTH",
    "CSD_STREAM_LANES",
    "CSD_STREAM_SHARDS",
    "CSD_STREAM_DETERMINISTIC_STEAL",
    "CSD_GATE_TABLE",
    "CSD_MAC_I16",
    "CSD_CASCADE",
    "CSD_SCREEN_SCALE",
    "CSD_CASCADE_BAND",
];

/// Reads `CSD_CASCADE`: the boolean spellings map to
/// [`CascadeMode::On`]/[`CascadeMode::Off`], `verify` (case-insensitive)
/// selects the shadow-verified mode, anything else falls back to the
/// default ([`CascadeMode::Off`]).
pub fn cascade_mode() -> CascadeMode {
    std::env::var("CSD_CASCADE")
        .ok()
        .and_then(|v| parse_cascade(&v))
        .unwrap_or_default()
}

/// Reads `CSD_SCREEN_SCALE` as the screen scale exponent: an integer in
/// `1..=`[`csd_nn::SCREEN_SCALE_POW_MAX`], anything else ignored in
/// favour of the default (4, the largest provable scale).
pub fn screen_scale_pow() -> u32 {
    positive_usize("CSD_SCREEN_SCALE")
        .map(|n| n as u32)
        .filter(|&n| n <= csd_nn::SCREEN_SCALE_POW_MAX)
        .unwrap_or(csd_nn::SCREEN_SCALE_POW_MAX)
}

/// Reads `CSD_CASCADE_BAND` as the calibration margin: a non-negative
/// finite fraction of the probability range, anything else ignored in
/// favour of the default (0.02).
pub fn cascade_band_margin() -> f64 {
    std::env::var("CSD_CASCADE_BAND")
        .ok()
        .and_then(|v| parse_fraction(&v))
        .unwrap_or(0.02)
}

/// The parsing rule behind [`cascade_mode`], separated for testing
/// without touching the process environment.
fn parse_cascade(value: &str) -> Option<CascadeMode> {
    if value.trim().eq_ignore_ascii_case("verify") {
        return Some(CascadeMode::Verify);
    }
    parse_flag(value).map(|on| {
        if on {
            CascadeMode::On
        } else {
            CascadeMode::Off
        }
    })
}

/// The parsing rule behind [`cascade_band_margin`], separated for
/// testing without touching the process environment.
fn parse_fraction(value: &str) -> Option<f64> {
    value
        .trim()
        .parse::<f64>()
        .ok()
        .filter(|m| m.is_finite() && *m >= 0.0)
}

/// Reads `name` as a positive integer: `Some(n)` when the variable is
/// set, parses (after trimming whitespace), and is at least 1; `None`
/// otherwise — unset, empty, non-numeric, zero, and negative values all
/// fall back to the caller's default.
pub fn positive_usize(name: &str) -> Option<usize> {
    parse_positive(std::env::var(name).ok()?.as_str())
}

/// Reads `name` as a boolean flag: `Some(true)` for `1`, `true`, `yes`,
/// or `on`; `Some(false)` for `0`, `false`, `no`, or `off` (whitespace
/// trimmed, case-insensitive); `None` otherwise — unset, empty, and
/// unrecognized values all fall back to the caller's default.
pub fn flag(name: &str) -> Option<bool> {
    parse_flag(std::env::var(name).ok()?.as_str())
}

/// The parsing rule behind [`positive_usize`], separated for testing
/// without touching the process environment.
fn parse_positive(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// The parsing rule behind [`flag`], separated for testing without
/// touching the process environment.
fn parse_flag(value: &str) -> Option<bool> {
    match value.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => Some(true),
        "0" | "false" | "no" | "off" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_integers() {
        assert_eq!(parse_positive("1"), Some(1));
        assert_eq!(parse_positive("16"), Some(16));
        assert_eq!(parse_positive("  8  "), Some(8), "whitespace trimmed");
    }

    #[test]
    fn rejects_zero_negative_and_garbage() {
        assert_eq!(parse_positive("0"), None);
        assert_eq!(parse_positive("-3"), None);
        assert_eq!(parse_positive(""), None);
        assert_eq!(parse_positive("four"), None);
        assert_eq!(parse_positive("8.5"), None);
        assert_eq!(parse_positive("8 lanes"), None);
    }

    #[test]
    fn flag_accepts_both_polarities_in_every_spelling() {
        for yes in ["1", "true", "yes", "on", "TRUE", "Yes", " on "] {
            assert_eq!(parse_flag(yes), Some(true), "{yes:?}");
        }
        for no in ["0", "false", "no", "off", "FALSE", "No", " off "] {
            assert_eq!(parse_flag(no), Some(false), "{no:?}");
        }
    }

    #[test]
    fn flag_rejects_garbage() {
        assert_eq!(parse_flag(""), None);
        assert_eq!(parse_flag("2"), None);
        assert_eq!(parse_flag("-1"), None);
        assert_eq!(parse_flag("yep"), None);
        assert_eq!(parse_flag("truee"), None);
        assert_eq!(parse_flag("on off"), None);
    }

    #[test]
    fn unset_variable_reads_none() {
        // A name no test (or machine) sets: the env read path itself.
        assert_eq!(positive_usize("CSD_TEST_UNSET_KNOB_XYZZY"), None);
        assert_eq!(flag("CSD_TEST_UNSET_FLAG_XYZZY"), None);
    }

    #[test]
    fn set_variable_reads_through() {
        // A unique name so parallel tests cannot race on it.
        std::env::set_var("CSD_TEST_SET_KNOB_XYZZY", "12");
        assert_eq!(positive_usize("CSD_TEST_SET_KNOB_XYZZY"), Some(12));
        std::env::set_var("CSD_TEST_SET_KNOB_XYZZY", "nope");
        assert_eq!(positive_usize("CSD_TEST_SET_KNOB_XYZZY"), None);
        std::env::remove_var("CSD_TEST_SET_KNOB_XYZZY");

        std::env::set_var("CSD_TEST_SET_FLAG_XYZZY", "on");
        assert_eq!(flag("CSD_TEST_SET_FLAG_XYZZY"), Some(true));
        std::env::set_var("CSD_TEST_SET_FLAG_XYZZY", "maybe");
        assert_eq!(flag("CSD_TEST_SET_FLAG_XYZZY"), None);
        std::env::remove_var("CSD_TEST_SET_FLAG_XYZZY");
    }

    #[test]
    fn knob_names_are_documented() {
        assert!(ENV_KNOBS.contains(&"CSD_STREAM_LANES"));
        assert!(ENV_KNOBS.contains(&"CSD_LANE_WIDTH"));
        assert!(ENV_KNOBS.contains(&"CSD_POOL_THREADS"));
        assert!(ENV_KNOBS.contains(&"CSD_STREAM_SHARDS"));
        assert!(ENV_KNOBS.contains(&"CSD_STREAM_DETERMINISTIC_STEAL"));
        assert!(ENV_KNOBS.contains(&"CSD_GATE_TABLE"));
        assert!(ENV_KNOBS.contains(&"CSD_MAC_I16"));
        assert!(ENV_KNOBS.contains(&"CSD_CASCADE"));
        assert!(ENV_KNOBS.contains(&"CSD_SCREEN_SCALE"));
        assert!(ENV_KNOBS.contains(&"CSD_CASCADE_BAND"));
    }

    #[test]
    fn cascade_knob_parses_tri_state() {
        for on in ["1", "true", "ON", " yes "] {
            assert_eq!(parse_cascade(on), Some(CascadeMode::On), "{on:?}");
        }
        for off in ["0", "false", "OFF", " no "] {
            assert_eq!(parse_cascade(off), Some(CascadeMode::Off), "{off:?}");
        }
        for verify in ["verify", "VERIFY", " Verify "] {
            assert_eq!(
                parse_cascade(verify),
                Some(CascadeMode::Verify),
                "{verify:?}"
            );
        }
        for bad in ["", "2", "cascade", "verify please", "on off"] {
            assert_eq!(parse_cascade(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn cascade_knob_reads_through_the_environment() {
        // The real knob, end to end: every mode, bad value, unset.
        let saved = std::env::var("CSD_CASCADE").ok();
        std::env::set_var("CSD_CASCADE", "verify");
        assert_eq!(cascade_mode(), CascadeMode::Verify);
        std::env::set_var("CSD_CASCADE", "on");
        assert_eq!(cascade_mode(), CascadeMode::On);
        std::env::set_var("CSD_CASCADE", "definitely");
        assert_eq!(cascade_mode(), CascadeMode::Off, "bad value → default off");
        std::env::remove_var("CSD_CASCADE");
        assert_eq!(cascade_mode(), CascadeMode::Off, "unset → default off");
        match saved {
            Some(v) => std::env::set_var("CSD_CASCADE", v),
            None => std::env::remove_var("CSD_CASCADE"),
        }
    }

    #[test]
    fn screen_scale_knob_clamps_to_the_provable_range() {
        let saved = std::env::var("CSD_SCREEN_SCALE").ok();
        std::env::set_var("CSD_SCREEN_SCALE", "3");
        assert_eq!(screen_scale_pow(), 3);
        std::env::set_var("CSD_SCREEN_SCALE", "4");
        assert_eq!(screen_scale_pow(), 4);
        std::env::set_var("CSD_SCREEN_SCALE", "5");
        assert_eq!(screen_scale_pow(), 4, "beyond the i16 bound → default");
        std::env::set_var("CSD_SCREEN_SCALE", "0");
        assert_eq!(screen_scale_pow(), 4, "zero → default");
        std::env::set_var("CSD_SCREEN_SCALE", "four");
        assert_eq!(screen_scale_pow(), 4, "garbage → default");
        std::env::remove_var("CSD_SCREEN_SCALE");
        assert_eq!(screen_scale_pow(), 4, "unset → default");
        match saved {
            Some(v) => std::env::set_var("CSD_SCREEN_SCALE", v),
            None => std::env::remove_var("CSD_SCREEN_SCALE"),
        }
    }

    #[test]
    fn band_margin_knob_accepts_only_non_negative_fractions() {
        assert_eq!(parse_fraction("0.05"), Some(0.05));
        assert_eq!(parse_fraction(" 0 "), Some(0.0));
        assert_eq!(parse_fraction("1.5"), Some(1.5));
        assert_eq!(parse_fraction("-0.1"), None);
        assert_eq!(parse_fraction("NaN"), None);
        assert_eq!(parse_fraction("inf"), None);
        assert_eq!(parse_fraction("two percent"), None);
        assert_eq!(parse_fraction(""), None);

        let saved = std::env::var("CSD_CASCADE_BAND").ok();
        std::env::set_var("CSD_CASCADE_BAND", "0.1");
        assert_eq!(cascade_band_margin(), 0.1);
        std::env::set_var("CSD_CASCADE_BAND", "-1");
        assert_eq!(cascade_band_margin(), 0.02, "negative → default");
        std::env::remove_var("CSD_CASCADE_BAND");
        assert_eq!(cascade_band_margin(), 0.02, "unset → default");
        match saved {
            Some(v) => std::env::set_var("CSD_CASCADE_BAND", v),
            None => std::env::remove_var("CSD_CASCADE_BAND"),
        }
    }

    #[test]
    fn gate_table_and_mac_i16_knobs_share_the_flag_contract() {
        // The real knob names, end to end: override, bad value, unset.
        // Any interleaving with a parallel engine construction is safe —
        // both knob settings are bit-identical by contract — but restore
        // the ambient state anyway.
        for name in ["CSD_GATE_TABLE", "CSD_MAC_I16"] {
            let saved = std::env::var(name).ok();
            std::env::set_var(name, "off");
            assert_eq!(flag(name), Some(false), "{name} explicit off");
            std::env::set_var(name, " ON ");
            assert_eq!(flag(name), Some(true), "{name} explicit on");
            std::env::set_var(name, "definitely");
            assert_eq!(flag(name), None, "{name} bad value ignored");
            std::env::remove_var(name);
            assert_eq!(flag(name), None, "{name} unset reads none");
            match saved {
                Some(v) => std::env::set_var(name, v),
                None => std::env::remove_var(name),
            }
        }
    }
}
