//! Sharded stream multiplexer: one [`StreamMux`] per worker-pool
//! thread, with work-stealing rebalance and per-stream in-order verdict
//! delivery.
//!
//! A single [`StreamMux`] advances every lane on one thread; at fleet
//! scale (`exp_streaming` at 4096 streams) occupancy is 1.0 and the
//! host core, not the engine, is the ceiling. [`ShardedStreamMux`]
//! splits the lane block into `N` shard-owned muxes — one per
//! [`WorkerPool`] worker — and advances every *loaded* shard in
//! parallel via [`WorkerPool::scatter_scoped`]. The 0-ULP contract is
//! untouched: each shard runs the same lane kernels on the same
//! windows, so every verdict is still bit-identical to serial
//! [`classify`](CsdInferenceEngine::classify).
//!
//! # Admission, routing, and stealing
//!
//! Admission is coordinator-mediated: [`submit`](ShardedStreamMux::submit)
//! applies the global backpressure bound, assigns the window a global
//! sequence number, and routes it to the least-loaded shard
//! (deterministic tie-break: lowest index). Producers on other threads
//! use a [`StreamInjector`] instead — a clone-cheap handle over
//! per-shard lock-free MPSC [`AdmissionQueue`]s
//! (hash-routed by stream id) whose pushes never block or lock; the
//! coordinator drains every inbox at each tick round and admits through
//! the same backpressure/sequence path.
//!
//! Load drifts as windows of different lengths retire, so between tick
//! rounds the coordinator *rebalances*: while some shard has free lane
//! capacity and another holds pending work at least two loads above it,
//! one pending window moves from the loaded shard's queue tail (its
//! FIFO head — the oldest, most latency-burdened work — stays put) to
//! the idle one. Stealing happens only at round boundaries on the
//! coordinator thread, never mid-tick between shard threads, which is
//! what makes it reproducible: under [`StealPolicy::Deterministic`]
//! victims are chosen by (max load, lowest index) and the whole
//! schedule is a pure function of the submission sequence; under
//! [`StealPolicy::Seeded`] victim choice draws from a seeded splitmix64
//! stream — different interleavings, same seed → same run.
//!
//! # Per-stream order
//!
//! Shards retire windows independently, so cross-shard retirement can
//! invert a stream's verdict order (a short window on an idle shard
//! beats an earlier long one on a loaded shard). The monitor fold is
//! order-sensitive (vote rings, alert latching), so the coordinator
//! reorders: every window gets a global sequence number at admission,
//! and a small per-stream reorder buffer holds early verdicts until
//! their predecessors settle. The delivered contract is strictly
//! stronger than the single mux's: *each stream's verdicts arrive in
//! its submission order*. Only streams with windows in flight hold
//! reorder state — dormant streams cost nothing here.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use csd_device::FaultPlan;
use serde::{Deserialize, Serialize};

use crate::engine::CsdInferenceEngine;
use crate::mpsc::{AdmissionHandle, AdmissionQueue};
use crate::pool::WorkerPool;
use crate::stream::{MuxStats, OverflowPolicy, StreamLoss, StreamMux, StreamMuxConfig, Verdict};

/// How the rebalancer picks its steal victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StealPolicy {
    /// Victims by (max load, lowest index): the steal schedule is a
    /// pure function of the submission sequence — the mode for
    /// reproducible tests and byte-stable benchmarks.
    Deterministic,
    /// Victim choice draws from a splitmix64 stream with this seed:
    /// varied interleavings (good for shaking out order bugs), still
    /// reproducible run-to-run for a fixed seed.
    Seeded(u64),
}

impl Default for StealPolicy {
    fn default() -> Self {
        StealPolicy::Seeded(0x5EED_CA11)
    }
}

/// Ticks each loaded shard advances per scatter during `drain`: large
/// enough to amortize the pool's scatter overhead over real kernel
/// work, small enough that rebalance and inbox drains stay responsive.
const DRAIN_BURST: usize = 64;

/// A window pushed by a [`StreamInjector`], waiting in a shard inbox.
#[derive(Debug, Clone)]
struct Admission {
    stream: u64,
    at_call: usize,
    window: Vec<usize>,
}

/// One shard: a standalone mux (unbounded queue — backpressure is
/// global, at the coordinator) plus its verdict out-buffer and producer
/// inbox.
#[derive(Debug)]
struct Shard {
    mux: StreamMux,
    /// Per-shard verdict buffer, filled inside scatter jobs (each shard
    /// writes only its own) and settled by the coordinator afterwards.
    out: Vec<Verdict>,
    inbox: AdmissionQueue<Admission>,
}

impl Clone for Shard {
    fn clone(&self) -> Self {
        // A cloned shard gets a fresh, empty inbox: injector handles
        // onto the original keep feeding the original.
        Self {
            mux: self.mux.clone(),
            out: self.out.clone(),
            inbox: AdmissionQueue::new(),
        }
    }
}

/// Per-stream reorder state: sequence numbers still in flight, plus
/// verdicts (or drop tombstones) that arrived ahead of a predecessor.
/// The entry exists only while the stream has windows in flight.
#[derive(Debug, Clone, Default)]
struct StreamOrder {
    /// Admission sequence numbers not yet settled, oldest first.
    outstanding: VecDeque<u64>,
    /// Early arrivals: `(seq, verdict)`, `None` marking a window
    /// dropped by backpressure after later windows were admitted.
    held: Vec<(u64, Option<Verdict>)>,
}

/// A clone-cheap, thread-safe producer handle for pushing windows into
/// a [`ShardedStreamMux`] from other threads.
///
/// `submit` never blocks and never takes a lock (one CAS push); the
/// window is copied into a fresh buffer on the producer thread and
/// admitted — through the same backpressure and sequencing as
/// [`ShardedStreamMux::submit`] — when the coordinator next drains the
/// inboxes at a tick round. Inboxes are hash-routed by stream id, so
/// one stream's pushes from one producer stay FIFO.
#[derive(Debug, Clone)]
pub struct StreamInjector {
    inboxes: Vec<AdmissionHandle<Admission>>,
}

impl StreamInjector {
    /// Enqueues one window for admission at the next coordinator round.
    ///
    /// # Panics
    ///
    /// Panics on an empty window (the engine's contract).
    pub fn submit(&self, stream: u64, at_call: usize, window: &[usize]) {
        assert!(!window.is_empty(), "empty sequence");
        let shard =
            (stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.inboxes.len();
        self.inboxes[shard].push(Admission {
            stream,
            at_call,
            window: window.to_vec(),
        });
    }
}

/// `N` shard-owned [`StreamMux`]es behind one mux-shaped front: same
/// `submit`/`tick_into`/`drain` surface, verdicts bit-identical to
/// serial classification, per-stream delivery in submission order, and
/// every loaded shard advanced in parallel on the worker pool.
///
/// See the [module docs](self) for the admission/steal protocol.
#[derive(Debug, Clone)]
pub struct ShardedStreamMux {
    shards: Vec<Shard>,
    /// Per-stream reorder buffers, only for streams with work in
    /// flight.
    order: HashMap<u64, StreamOrder>,
    /// Verdicts released by settling, awaiting the next flush into a
    /// caller's buffer.
    ready: Vec<Verdict>,
    /// Recycled drain buffer for inbox messages.
    inject_scratch: Vec<Admission>,
    max_pending: usize,
    policy: OverflowPolicy,
    steal: StealPolicy,
    /// splitmix64 state for [`StealPolicy::Seeded`] victim draws.
    rng: u64,
    next_seq: u64,
    steals: u64,
    /// Admitted windows later evicted by `DropOldest` global
    /// backpressure (charged to the stream that lost its window).
    evicted: u64,
    evicted_by_stream: HashMap<u64, u64>,
    /// Windows refused at admission by `DropNewest` global backpressure
    /// (charged to the submitting stream).
    refused: u64,
    refused_by_stream: HashMap<u64, u64>,
    /// Windows refused for out-of-vocabulary tokens, coordinator-wide
    /// (both `submit` and injector admissions validate here, before a
    /// window can reach any shard's lane block).
    rejected: u64,
    rejected_by_stream: HashMap<u64, u64>,
    /// Vocabulary size, cached for admission-time validation.
    vocab: usize,
    started: Instant,
}

impl ShardedStreamMux {
    /// Builds `N` shards around clones of `engine`.
    ///
    /// The shard count resolves `config.shards`, then the
    /// `CSD_STREAM_SHARDS` environment knob, then the worker pool's
    /// thread count. The steal policy resolves `config.steal`, then the
    /// `CSD_STREAM_DETERMINISTIC_STEAL` knob (truthy forces
    /// [`StealPolicy::Deterministic`]), then [`StealPolicy::default`].
    /// `config.lanes` and `config.max_pending` keep their
    /// [`StreamMux`] meanings, with `lanes` now *per shard* and
    /// `max_pending` bounding the *total* pending count across shards.
    ///
    /// # Panics
    ///
    /// Panics when `config.lanes` is `Some(0)` or `config.max_pending`
    /// is zero (the [`StreamMux::new`] contract).
    pub fn new(engine: CsdInferenceEngine, config: StreamMuxConfig) -> Self {
        assert!(config.max_pending > 0, "max_pending must be positive");
        let shard_count = config
            .shards
            .or_else(|| crate::env::positive_usize("CSD_STREAM_SHARDS"))
            .unwrap_or_else(|| WorkerPool::global().threads())
            .max(1);
        let steal = config
            .steal
            .or_else(|| {
                crate::env::flag("CSD_STREAM_DETERMINISTIC_STEAL").map(|on| {
                    if on {
                        StealPolicy::Deterministic
                    } else {
                        StealPolicy::default()
                    }
                })
            })
            .unwrap_or_default();
        let shard_config = StreamMuxConfig {
            lanes: config.lanes,
            // Backpressure is enforced globally before routing; a shard
            // queue must never second-guess the coordinator.
            max_pending: usize::MAX,
            policy: OverflowPolicy::DropNewest,
            shards: Some(1),
            steal: None,
            cascade: config.cascade,
        };
        let vocab = engine.weights().dims().vocab;
        let shards: Vec<Shard> = (0..shard_count)
            .map(|_| Shard {
                mux: StreamMux::new(engine.clone(), shard_config),
                out: Vec::new(),
                inbox: AdmissionQueue::new(),
            })
            .collect();
        let rng = match steal {
            StealPolicy::Seeded(seed) => seed,
            StealPolicy::Deterministic => 0,
        };
        Self {
            shards,
            order: HashMap::new(),
            ready: Vec::new(),
            inject_scratch: Vec::new(),
            max_pending: config.max_pending,
            policy: config.policy,
            steal,
            rng,
            next_seq: 0,
            steals: 0,
            evicted: 0,
            evicted_by_stream: HashMap::new(),
            refused: 0,
            refused_by_stream: HashMap::new(),
            rejected: 0,
            rejected_by_stream: HashMap::new(),
            vocab,
            started: Instant::now(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Lane slots per shard (total lanes = `width() * shards()`).
    pub fn width(&self) -> usize {
        self.shards[0].mux.width()
    }

    /// The steal policy in effect.
    pub fn steal_policy(&self) -> StealPolicy {
        self.steal
    }

    /// The engine behind shard 0's lanes (all shards run clones of the
    /// same engine — for parity checks and accounting).
    pub fn engine(&self) -> &CsdInferenceEngine {
        self.shards[0].mux.engine()
    }

    /// Windows queued across all shards, not yet occupying lanes
    /// (injector inboxes not included — those are admitted, and
    /// counted, at the next round).
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.mux.pending()).sum()
    }

    /// Windows currently occupying lanes across all shards.
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(|s| s.mux.in_flight()).sum()
    }

    /// Whether nothing is queued, in flight, injected-but-undrained, or
    /// held for reordering.
    pub fn is_idle(&self) -> bool {
        self.ready.is_empty()
            && self.order.is_empty()
            && self
                .shards
                .iter()
                .all(|s| s.mux.is_idle() && s.inbox.is_empty())
    }

    /// Windows dropped by backpressure that belonged to `stream` — the
    /// sum of [`evicted_for`](Self::evicted_for) and
    /// [`refused_for`](Self::refused_for).
    pub fn dropped_for(&self, stream: u64) -> u64 {
        self.evicted_for(stream) + self.refused_for(stream)
    }

    /// Admitted windows of `stream` later evicted by
    /// [`OverflowPolicy::DropOldest`] global backpressure.
    pub fn evicted_for(&self, stream: u64) -> u64 {
        self.evicted_by_stream.get(&stream).copied().unwrap_or(0)
    }

    /// Windows of `stream` refused at admission by
    /// [`OverflowPolicy::DropNewest`] global backpressure.
    pub fn refused_for(&self, stream: u64) -> u64 {
        self.refused_by_stream.get(&stream).copied().unwrap_or(0)
    }

    /// The full per-stream loss breakdown (evicted / refused /
    /// rejected) for `stream`.
    pub fn loss_for(&self, stream: u64) -> StreamLoss {
        StreamLoss {
            evicted: self.evicted_for(stream),
            refused: self.refused_for(stream),
            rejected: self.rejected_for(stream),
        }
    }

    /// Windows of `stream` refused for out-of-vocabulary tokens — at
    /// [`submit`](Self::submit) or at an injector inbox drain.
    pub fn rejected_for(&self, stream: u64) -> u64 {
        self.rejected_by_stream.get(&stream).copied().unwrap_or(0)
    }

    /// A thread-safe producer handle feeding this mux's shard inboxes.
    pub fn injector(&self) -> StreamInjector {
        StreamInjector {
            inboxes: self.shards.iter().map(|s| s.inbox.handle()).collect(),
        }
    }

    /// Arms degraded mode on every shard (see [`StreamMux::arm_faults`]).
    /// Each shard derives an independent plan from `plan`'s seed so the
    /// fault streams decorrelate across shards while staying a pure
    /// function of the original seed.
    pub fn arm_faults(&mut self, plan: FaultPlan, cooldown_ticks: u64) {
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let seed = plan
                .seed()
                .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            shard
                .mux
                .arm_faults(FaultPlan::new(seed, *plan.config()), cooldown_ticks);
        }
    }

    /// Whether any shard has a fault plan armed.
    pub fn faults_armed(&self) -> bool {
        self.shards.iter().any(|s| s.mux.faults_armed())
    }

    /// Sets or clears the screen-only overload hint on every shard
    /// (see [`StreamMux::set_screen_only`]): while set, in-band windows
    /// are force-decided at the band midpoint instead of escalating to
    /// the exact path, bounding verdict latency under backlog. A no-op
    /// (beyond remembering the flag) unless the shards run a screening
    /// cascade.
    pub fn set_screen_only(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.mux.set_screen_only(on);
        }
    }

    /// Whether the screen-only overload hint is currently set.
    pub fn screen_only(&self) -> bool {
        self.shards.iter().any(|s| s.mux.screen_only())
    }

    /// Enqueues one window, exactly like [`StreamMux::submit`] but with
    /// the backpressure bound applied across all shards and the window
    /// routed to the least-loaded shard. An out-of-vocabulary window is
    /// refused and tallied ([`rejected_for`](Self::rejected_for)) — a
    /// typed rejection at the coordinator, never a panic on a shard
    /// thread where it would take every co-scheduled stream's windows
    /// down with it.
    ///
    /// # Panics
    ///
    /// Panics on an empty window (the engine's contract).
    pub fn submit(&mut self, stream: u64, at_call: usize, window: &[usize]) -> bool {
        assert!(!window.is_empty(), "empty sequence");
        if !self.in_vocabulary(window) {
            self.reject(stream);
            return false;
        }
        if self.pending() >= self.max_pending && !self.make_room(stream) {
            return false;
        }
        let target = self.least_loaded();
        let mut buf = self.shards[target].mux.lease_buf();
        buf.clear();
        buf.extend_from_slice(window);
        self.enqueue(target, stream, at_call, buf);
        true
    }

    /// Runs one coordinator round — flush, inbox drain, rebalance, one
    /// tick on every loaded shard (in parallel when more than one is
    /// loaded), settle — appending released verdicts to `out` and
    /// returning how many were appended.
    pub fn tick_into(&mut self, out: &mut Vec<Verdict>) -> usize {
        let before = out.len();
        self.round(out, 1);
        out.len() - before
    }

    /// Convenience wrapper over [`tick_into`](Self::tick_into).
    pub fn tick(&mut self) -> Vec<Verdict> {
        let mut out = Vec::new();
        self.tick_into(&mut out);
        out
    }

    /// Runs rounds until idle, appending every released verdict to
    /// `out`. Keeps the single mux's low-occupancy shortcut: with no
    /// lane active anywhere and at most `width/4` windows pending in
    /// total, the stragglers classify serially (bit-identical) instead
    /// of paying full-width lane sweeps.
    pub fn drain_into(&mut self, out: &mut Vec<Verdict>) {
        loop {
            self.flush_ready(out);
            self.drain_inboxes();
            let active = self.in_flight();
            let pending = self.pending();
            if active == 0 && pending == 0 {
                if self.shards.iter().any(|s| !s.inbox.is_empty()) {
                    // An injector raced the idle check; go around.
                    continue;
                }
                break;
            }
            if active == 0 && pending <= (self.width() / 4).max(1) {
                for i in 0..self.shards.len() {
                    let mut buf = std::mem::take(&mut self.shards[i].out);
                    self.shards[i].mux.classify_pending_serially(&mut buf);
                    self.settle_batch(&mut buf);
                    self.shards[i].out = buf;
                }
                continue;
            }
            self.round(out, DRAIN_BURST);
        }
        self.flush_ready(out);
        debug_assert!(self.order.is_empty(), "all in-flight windows settled");
    }

    /// Convenience wrapper over [`drain_into`](Self::drain_into).
    pub fn drain(&mut self) -> Vec<Verdict> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Aggregated counters across shards plus coordinator-level drops
    /// and steals. Occupancy is lane-step-weighted
    /// (`Σ occupied / Σ ticks·width`); latency percentiles merge every
    /// shard's recent-retirement samples; `ticks` sums shard ticks
    /// (lane sweeps executed, wherever they ran).
    pub fn stats(&self) -> MuxStats {
        let per: Vec<MuxStats> = self.shards.iter().map(|s| s.mux.stats()).collect();
        let mut merged: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.mux.latency_samples().iter().copied())
            .collect();
        merged.sort_unstable();
        let pct = |q: f64| -> u64 {
            if merged.is_empty() {
                0
            } else {
                merged[((merged.len() - 1) as f64 * q).round() as usize]
            }
        };
        let lane_steps: u64 = per.iter().map(|s| s.ticks * self.width() as u64).sum();
        let occupied: u64 = self.shards.iter().map(|s| s.mux.occupied_steps()).sum();
        let verdicts: u64 = per.iter().map(|s| s.verdicts).sum();
        MuxStats {
            ticks: per.iter().map(|s| s.ticks).sum(),
            verdicts,
            dropped: self.evicted + self.refused + per.iter().map(|s| s.dropped).sum::<u64>(),
            evicted: self.evicted + per.iter().map(|s| s.evicted).sum::<u64>(),
            refused: self.refused + per.iter().map(|s| s.refused).sum::<u64>(),
            rejected: self.rejected + per.iter().map(|s| s.rejected).sum::<u64>(),
            occupancy: if lane_steps == 0 {
                0.0
            } else {
                occupied as f64 / lane_steps as f64
            },
            p50_latency_ticks: pct(0.50),
            p99_latency_ticks: pct(0.99),
            verdicts_per_sec: verdicts as f64 / self.started.elapsed().as_secs_f64().max(1e-9),
            faults: per.iter().map(|s| s.faults).sum(),
            degraded_reruns: per.iter().map(|s| s.degraded_reruns).sum(),
            degraded_ticks: per.iter().map(|s| s.degraded_ticks).sum(),
            lanes_poisoned: per.iter().map(|s| s.lanes_poisoned).sum(),
            screened: per.iter().map(|s| s.screened).sum(),
            escalated: per.iter().map(|s| s.escalated).sum(),
            cascade_flips: per.iter().map(|s| s.cascade_flips).sum(),
            forced_screen: per.iter().map(|s| s.forced_screen).sum(),
            screen_only_ticks: per.iter().map(|s| s.screen_only_ticks).sum(),
            steals: self.steals,
            shards: self.shards.len() as u64,
        }
    }

    /// Each shard's own counters (every snapshot reports `shards: 1`
    /// and `steals: 0` — steals are coordinator events).
    pub fn shard_stats(&self) -> Vec<MuxStats> {
        self.shards.iter().map(|s| s.mux.stats()).collect()
    }

    /// Approximate heap footprint of the mux: every shard's lane block
    /// and queues, the reorder map, and the coordinator buffers. Engine
    /// weight clones are excluded (per-shard constants, identical in
    /// every clone).
    pub fn resident_bytes(&self) -> usize {
        let verdict = std::mem::size_of::<Verdict>();
        let order_heap: usize = self
            .order
            .values()
            .map(|o| {
                o.outstanding.capacity() * std::mem::size_of::<u64>()
                    + o.held.capacity() * std::mem::size_of::<(u64, Option<Verdict>)>()
            })
            .sum();
        let table = |cap: usize, slot: usize| -> usize {
            if cap == 0 {
                0
            } else {
                (cap * 8 / 7).next_power_of_two() * (slot + 1)
            }
        };
        self.shards
            .iter()
            .map(|s| s.mux.resident_bytes() + s.out.capacity() * verdict)
            .sum::<usize>()
            + table(
                self.order.capacity(),
                std::mem::size_of::<(u64, StreamOrder)>(),
            )
            + order_heap
            + table(
                self.evicted_by_stream.capacity() + self.refused_by_stream.capacity(),
                std::mem::size_of::<(u64, u64)>(),
            )
            + self.ready.capacity() * verdict
            + self.inject_scratch.capacity() * std::mem::size_of::<Admission>()
    }

    /// Assigns the next global sequence number, records it in the
    /// stream's reorder state, and hands the buffer to `target`.
    fn enqueue(&mut self, target: usize, stream: u64, at_call: usize, buf: Vec<usize>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.order
            .entry(stream)
            .or_default()
            .outstanding
            .push_back(seq);
        self.shards[target]
            .mux
            .admit_owned(stream, at_call, seq, buf);
    }

    /// Applies the overflow policy when the global pending bound is hit.
    /// Returns whether the incoming window may be admitted.
    fn make_room(&mut self, incoming: u64) -> bool {
        match self.policy {
            OverflowPolicy::DropOldest => {
                // Evict the globally oldest pending window: smallest
                // admission sequence number across shard queue heads.
                let victim = self
                    .shards
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.mux.oldest_pending_order().map(|o| (o, i)))
                    .min();
                let Some((_, i)) = victim else {
                    // Nothing pending anywhere (the bound was consumed
                    // by in-flight work): admit.
                    return true;
                };
                // The victim was selected for having pending work, but a
                // miss must not panic the coordinator — just admit.
                let Some((stream, seq)) = self.shards[i].mux.evict_oldest_pending() else {
                    return true;
                };
                self.evicted += 1;
                *self.evicted_by_stream.entry(stream).or_insert(0) += 1;
                // A tombstone settles the dropped seq so later verdicts
                // of the stream are not held forever.
                self.settle(stream, seq, None);
                true
            }
            OverflowPolicy::DropNewest => {
                self.refused += 1;
                *self.refused_by_stream.entry(incoming).or_insert(0) += 1;
                false
            }
        }
    }

    /// Whether every token of `window` indexes the embedding table.
    fn in_vocabulary(&self, window: &[usize]) -> bool {
        window
            .iter()
            .all(|&item| crate::kernels::preprocess::in_vocabulary(self.vocab, item))
    }

    /// Tallies one out-of-vocabulary rejection against `stream`.
    fn reject(&mut self, stream: u64) {
        self.rejected += 1;
        *self.rejected_by_stream.entry(stream).or_insert(0) += 1;
    }

    /// The shard to route the next admission to: least (pending +
    /// in-flight), ties to the lowest index — deterministic.
    fn least_loaded(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.mux.pending() + s.mux.in_flight(), *i))
            .map(|(i, _)| i)
            .expect("at least one shard")
    }

    /// One coordinator round: flush released verdicts, drain producer
    /// inboxes, rebalance, advance every loaded shard `ticks` ticks,
    /// settle the retirements, flush again.
    fn round(&mut self, out: &mut Vec<Verdict>, ticks: usize) {
        self.flush_ready(out);
        self.drain_inboxes();
        self.rebalance();
        let loaded = self.shards.iter().filter(|s| !s.mux.is_idle()).count();
        if loaded > 1 && WorkerPool::global().threads() > 1 {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = self
                .shards
                .iter_mut()
                .filter(|s| !s.mux.is_idle())
                .map(|s| {
                    let Shard { mux, out, .. } = s;
                    Box::new(move || Self::advance(mux, out, ticks))
                        as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            WorkerPool::global().scatter_scoped(jobs);
        } else if loaded > 0 {
            for s in self.shards.iter_mut().filter(|s| !s.mux.is_idle()) {
                Self::advance(&mut s.mux, &mut s.out, ticks);
            }
        }
        for i in 0..self.shards.len() {
            let mut buf = std::mem::take(&mut self.shards[i].out);
            self.settle_batch(&mut buf);
            self.shards[i].out = buf;
        }
        self.flush_ready(out);
    }

    /// Advances one shard up to `ticks` ticks (stopping early if it
    /// goes idle), collecting retirements into its out-buffer.
    fn advance(mux: &mut StreamMux, out: &mut Vec<Verdict>, ticks: usize) {
        for _ in 0..ticks {
            if mux.is_idle() {
                break;
            }
            mux.tick_into(out);
        }
    }

    /// Drains every producer inbox through the normal admission path
    /// (global backpressure, sequencing, least-loaded routing). The
    /// injected buffer is adopted directly — no copy; it joins the
    /// target shard's buffer pool at retirement.
    fn drain_inboxes(&mut self) {
        for i in 0..self.shards.len() {
            if self.shards[i].inbox.is_empty() {
                continue;
            }
            let mut msgs = std::mem::take(&mut self.inject_scratch);
            self.shards[i].inbox.drain_into(&mut msgs);
            for m in msgs.drain(..) {
                if !self.in_vocabulary(&m.window) {
                    // Injected windows skip `submit`, so the vocabulary
                    // boundary is enforced here instead — same typed
                    // rejection, same per-stream tally.
                    self.reject(m.stream);
                    continue;
                }
                if self.pending() >= self.max_pending && !self.make_room(m.stream) {
                    continue;
                }
                let target = self.least_loaded();
                self.enqueue(target, m.stream, m.at_call, m.window);
            }
            self.inject_scratch = msgs;
        }
    }

    /// Moves pending windows from loaded shards to shards with spare
    /// lane capacity until loads are balanced (difference ≤ 1) or no
    /// thief has room. Runs only on the coordinator between tick
    /// rounds, so the steal schedule never races shard threads.
    fn rebalance(&mut self) {
        if self.shards.len() < 2 {
            return;
        }
        let load = |s: &Shard| s.mux.pending() + s.mux.in_flight();
        loop {
            let thief = self
                .shards
                .iter()
                .enumerate()
                .filter(|(_, s)| load(s) < s.mux.width())
                .min_by_key(|&(i, s)| (load(s), i));
            let Some((t, t_load)) = thief.map(|(i, s)| (i, load(s))) else {
                break;
            };
            let eligible: Vec<usize> = self
                .shards
                .iter()
                .enumerate()
                .filter(|&(i, s)| i != t && s.mux.pending() > 0 && load(s) > t_load + 1)
                .map(|(i, _)| i)
                .collect();
            if eligible.is_empty() {
                break;
            }
            let victim = match self.steal {
                StealPolicy::Deterministic => eligible
                    .iter()
                    .copied()
                    .max_by_key(|&i| (load(&self.shards[i]), std::cmp::Reverse(i)))
                    .expect("eligible is non-empty"),
                StealPolicy::Seeded(_) => {
                    let k = (self.next_rand() % eligible.len() as u64) as usize;
                    eligible[k]
                }
            };
            // Eligibility requires pending work; a racing miss just ends
            // this rebalance round rather than panicking mid-steal.
            let Some(window) = self.shards[victim].mux.steal_youngest() else {
                break;
            };
            self.shards[t].mux.adopt(window);
            self.steals += 1;
        }
    }

    /// splitmix64 — the seeded steal mode's victim stream.
    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Settles a batch of shard retirements, draining `buf`.
    fn settle_batch(&mut self, buf: &mut Vec<Verdict>) {
        for v in buf.drain(..) {
            self.settle(v.stream, v.seq, Some(v));
        }
    }

    /// Settles one sequence number of one stream — a verdict, or `None`
    /// for a backpressure drop. In-order arrivals release immediately
    /// (plus any held successors they unblock); early arrivals are held
    /// until their predecessors settle.
    fn settle(&mut self, stream: u64, seq: u64, verdict: Option<Verdict>) {
        use std::collections::hash_map::Entry;
        let Entry::Occupied(mut entry) = self.order.entry(stream) else {
            debug_assert!(false, "settle for a stream with no reorder state");
            self.ready.extend(verdict);
            return;
        };
        let state = entry.get_mut();
        if state.outstanding.front() != Some(&seq) {
            state.held.push((seq, verdict));
            return;
        }
        state.outstanding.pop_front();
        self.ready.extend(verdict);
        // Release any held successors that are now at the front.
        while let Some(&front) = state.outstanding.front() {
            let Some(pos) = state.held.iter().position(|&(s, _)| s == front) else {
                break;
            };
            let (_, held) = state.held.swap_remove(pos);
            state.outstanding.pop_front();
            self.ready.extend(held);
        }
        if state.outstanding.is_empty() {
            debug_assert!(state.held.is_empty(), "held without outstanding");
            entry.remove();
        }
    }

    /// Appends every released verdict to `out`.
    fn flush_ready(&mut self, out: &mut Vec<Verdict>) {
        out.append(&mut self.ready);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::OptimizationLevel;
    use csd_nn::{ModelConfig, ModelWeights, SequenceClassifier};

    fn engine(seed: u64) -> CsdInferenceEngine {
        let model = SequenceClassifier::new(ModelConfig::tiny(16), seed);
        CsdInferenceEngine::new(
            &ModelWeights::from_model(&model),
            OptimizationLevel::FixedPoint,
        )
    }

    fn seq(n: usize, salt: usize) -> Vec<usize> {
        (0..n).map(|i| (i * 37 + 11 + salt * 29) % 16).collect()
    }

    fn sharded(e: CsdInferenceEngine, shards: usize, lanes: usize) -> ShardedStreamMux {
        ShardedStreamMux::new(
            e,
            StreamMuxConfig {
                lanes: Some(lanes),
                shards: Some(shards),
                steal: Some(StealPolicy::Deterministic),
                ..StreamMuxConfig::default()
            },
        )
    }

    #[test]
    fn sharded_verdicts_bit_identical_to_serial_at_every_shard_count() {
        let e = engine(7);
        let windows: Vec<Vec<usize>> = (0..17).map(|k| seq(3 + (k * 13) % 40, k)).collect();
        let serial: Vec<_> = windows.iter().map(|w| e.classify(w)).collect();
        for shards in [1usize, 2, 3, 4] {
            let mut mux = sharded(e.clone(), shards, 2);
            let mut verdicts = Vec::new();
            for (k, w) in windows.iter().enumerate() {
                mux.submit(k as u64, k, w);
                if k % 3 == 0 {
                    mux.tick_into(&mut verdicts);
                }
            }
            mux.drain_into(&mut verdicts);
            assert!(mux.is_idle());
            assert_eq!(verdicts.len(), windows.len(), "{shards} shards");
            for v in &verdicts {
                assert_eq!(
                    v.classification, serial[v.stream as usize],
                    "{shards} shards, stream {}",
                    v.stream
                );
            }
        }
    }

    #[test]
    fn per_stream_verdicts_arrive_in_submission_order() {
        // One stream's windows are deliberately ragged — a long window
        // followed by short ones — so shards would retire them out of
        // order without the reorder buffer.
        let e = engine(3);
        let mut mux = sharded(e, 4, 1);
        let lens = [60usize, 4, 30, 5, 12, 4, 40, 6];
        for (k, &n) in lens.iter().enumerate() {
            mux.submit(9, k, &seq(n, k));
            mux.submit(k as u64 + 100, k, &seq(n / 2 + 2, k + 50));
        }
        let verdicts = mux.drain();
        let stream9: Vec<usize> = verdicts
            .iter()
            .filter(|v| v.stream == 9)
            .map(|v| v.at_call)
            .collect();
        assert_eq!(stream9, (0..lens.len()).collect::<Vec<_>>());
        // And seq numbers are strictly increasing per stream.
        let seqs: Vec<u64> = verdicts
            .iter()
            .filter(|v| v.stream == 9)
            .map(|v| v.seq)
            .collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deterministic_and_seeded_steals_are_reproducible() {
        let e = engine(11);
        let windows: Vec<Vec<usize>> = (0..24).map(|k| seq(2 + (k * 7) % 50, k)).collect();
        for policy in [
            StealPolicy::Deterministic,
            StealPolicy::Seeded(42),
            StealPolicy::Seeded(1234),
        ] {
            let run = |policy: StealPolicy| -> (Vec<(u64, u64)>, u64) {
                let mut mux = ShardedStreamMux::new(
                    e.clone(),
                    StreamMuxConfig {
                        lanes: Some(1),
                        shards: Some(3),
                        steal: Some(policy),
                        ..StreamMuxConfig::default()
                    },
                );
                let mut verdicts = Vec::new();
                for (k, w) in windows.iter().enumerate() {
                    mux.submit(k as u64, k, w);
                    mux.tick_into(&mut verdicts);
                }
                mux.drain_into(&mut verdicts);
                (
                    verdicts.iter().map(|v| (v.stream, v.seq)).collect(),
                    mux.stats().steals,
                )
            };
            let (a, steals_a) = run(policy);
            let (b, steals_b) = run(policy);
            assert_eq!(a, b, "{policy:?} must reproduce its schedule");
            assert_eq!(steals_a, steals_b);
        }
    }

    #[test]
    fn idle_shards_steal_pending_windows_from_loaded_ones() {
        // Width-1 shards and ragged lengths: the shard that lands the
        // short windows goes idle while the other still holds a
        // backlog, so the rebalancer must move work.
        let e = engine(5);
        let mut mux = sharded(e, 2, 1);
        for k in 0..12u64 {
            let n = if k % 2 == 0 { 50 } else { 3 };
            mux.submit(k, k as usize, &seq(n, k as usize));
        }
        let verdicts = mux.drain();
        assert_eq!(verdicts.len(), 12);
        assert!(mux.stats().steals > 0, "rebalancer never fired");
        // Work actually ran on both shards.
        for (i, s) in mux.shard_stats().iter().enumerate() {
            assert!(s.verdicts > 0, "shard {i} retired nothing");
        }
    }

    #[test]
    fn global_backpressure_drops_oldest_across_shards() {
        let e = engine(2);
        let mut mux = ShardedStreamMux::new(
            e,
            StreamMuxConfig {
                lanes: Some(1),
                max_pending: 3,
                policy: OverflowPolicy::DropOldest,
                shards: Some(2),
                steal: Some(StealPolicy::Deterministic),
                ..StreamMuxConfig::default()
            },
        );
        for k in 0..8u64 {
            // DropOldest always admits: the oldest pending window is
            // evicted to make room. Nothing occupies a lane until the
            // first tick, so 5 of the 8 are evicted and 3 survive.
            assert!(mux.submit(k, k as usize, &seq(6, k as usize)));
        }
        let stats = mux.stats();
        assert_eq!(stats.dropped, 5, "8 submitted, bound 3 → 5 evicted");
        let verdicts = mux.drain();
        assert_eq!(verdicts.len(), 3);
        // The survivors are the newest three; the evicted ones are
        // charged to their streams.
        let total_drops: u64 = (0..8u64).map(|k| mux.dropped_for(k)).sum();
        assert_eq!(total_drops, 5);
        for k in 0..5u64 {
            assert_eq!(mux.dropped_for(k), 1);
            assert_eq!(mux.evicted_for(k), 1, "DropOldest losses are evictions");
            assert_eq!(mux.refused_for(k), 0);
        }
        assert_eq!(stats.evicted, 5);
        assert_eq!(stats.refused, 0);
    }

    #[test]
    fn drop_newest_refuses_and_charges_the_submitter() {
        let e = engine(2);
        let mut mux = ShardedStreamMux::new(
            e,
            StreamMuxConfig {
                lanes: Some(1),
                max_pending: 1,
                policy: OverflowPolicy::DropNewest,
                shards: Some(2),
                steal: Some(StealPolicy::Deterministic),
                ..StreamMuxConfig::default()
            },
        );
        // The first submit queues as pending; the tick moves it into a
        // lane, freeing the pending bound for one more.
        assert!(mux.submit(0, 0, &seq(6, 0)));
        // Bound is 1: the second submit already exceeds it and, under
        // DropNewest, is refused and charged to its own stream.
        assert!(!mux.submit(1, 1, &seq(6, 1)));
        assert_eq!(mux.dropped_for(1), 1);
        let _ = mux.tick();
        assert!(mux.submit(2, 2, &seq(6, 2)));
        assert!(!mux.submit(3, 3, &seq(6, 3)), "bound hit, newest refused");
        assert_eq!(mux.dropped_for(3), 1);
        let verdicts = mux.drain();
        assert_eq!(verdicts.len(), 2, "streams 0 and 2 made it through");
        assert_eq!(mux.stats().dropped, 2);
        assert_eq!(mux.stats().refused, 2, "DropNewest losses are refusals");
        assert_eq!(mux.stats().evicted, 0);
        assert_eq!(mux.refused_for(1), 1);
        assert_eq!(mux.loss_for(3).refused, 1);
    }

    #[test]
    fn injector_feeds_the_mux_from_other_threads() {
        let e = engine(13);
        let windows: Vec<Vec<usize>> = (0..40).map(|k| seq(3 + k % 20, k)).collect();
        let serial: Vec<_> = windows.iter().map(|w| e.classify(w)).collect();
        let mut mux = sharded(e, 2, 2);
        let injector = mux.injector();
        std::thread::scope(|scope| {
            for chunk in 0..4usize {
                let injector = injector.clone();
                let windows = &windows;
                scope.spawn(move || {
                    for (k, w) in windows.iter().enumerate().skip(chunk * 10).take(10) {
                        injector.submit(k as u64, k, w);
                    }
                });
            }
        });
        // All pushes done (threads joined); drain admits and runs them.
        let verdicts = mux.drain();
        assert_eq!(verdicts.len(), windows.len());
        for v in &verdicts {
            assert_eq!(v.classification, serial[v.stream as usize]);
        }
        assert!(mux.is_idle());
    }

    #[test]
    fn env_overrides_resolve_shard_count_and_steal_policy() {
        // Unique-ish knob values, set and removed immediately; the
        // parity tests are shard-count-agnostic so a brief overlap with
        // a parallel test constructing a mux is harmless.
        std::env::set_var("CSD_STREAM_SHARDS", "3");
        std::env::set_var("CSD_STREAM_DETERMINISTIC_STEAL", "yes");
        let mux = ShardedStreamMux::new(engine(1), StreamMuxConfig::default());
        std::env::remove_var("CSD_STREAM_SHARDS");
        std::env::remove_var("CSD_STREAM_DETERMINISTIC_STEAL");
        assert_eq!(mux.shards(), 3);
        assert_eq!(mux.steal_policy(), StealPolicy::Deterministic);
        // Config wins over environment.
        std::env::set_var("CSD_STREAM_SHARDS", "7");
        let pinned = ShardedStreamMux::new(
            engine(1),
            StreamMuxConfig {
                shards: Some(2),
                ..StreamMuxConfig::default()
            },
        );
        std::env::remove_var("CSD_STREAM_SHARDS");
        assert_eq!(pinned.shards(), 2);
    }

    #[test]
    fn aggregated_stats_sum_shards_and_count_steals() {
        let e = engine(5);
        let mut mux = sharded(e, 2, 1);
        for k in 0..12u64 {
            let n = if k % 2 == 0 { 50 } else { 3 };
            mux.submit(k, k as usize, &seq(n, k as usize));
        }
        let _ = mux.drain();
        let agg = mux.stats();
        let per = mux.shard_stats();
        assert_eq!(agg.shards, 2);
        assert_eq!(agg.verdicts, per.iter().map(|s| s.verdicts).sum::<u64>());
        assert_eq!(agg.ticks, per.iter().map(|s| s.ticks).sum::<u64>());
        assert!(agg.occupancy > 0.0 && agg.occupancy <= 1.0);
        assert!(agg.p50_latency_ticks <= agg.p99_latency_ticks);
        for s in &per {
            assert_eq!(s.shards, 1);
            assert_eq!(s.steals, 0);
        }
    }

    #[test]
    fn oov_windows_rejected_at_every_shard_count_on_both_admission_paths() {
        // Regression: an out-of-vocabulary token admitted to any shard
        // would panic that shard's lane block mid-scatter and poison
        // the whole coordinator round. Both admission paths — direct
        // submit and the injector inboxes — now refuse it with a typed
        // per-stream tally, and clean streams classify bit-identically.
        let e = engine(7); // tiny(16): vocabulary is 0..=15
        let windows: Vec<Vec<usize>> = (0..9).map(|k| seq(3 + (k * 13) % 30, k)).collect();
        let serial: Vec<_> = windows.iter().map(|w| e.classify(w)).collect();
        for shards in [1usize, 2, 3] {
            let mut mux = sharded(e.clone(), shards, 2);
            let mut bad = seq(10, 1);
            bad[5] = 16;
            assert!(!mux.submit(50, 0, &bad), "{shards} shards: OOV refused");
            for (k, w) in windows.iter().enumerate() {
                assert!(mux.submit(k as u64, k, w));
            }
            // The injector path validates at inbox drain, not at push.
            let injector = mux.injector();
            injector.submit(51, 1, &bad);
            injector.submit(51, 2, &[9, 99, 9]);
            let verdicts = mux.drain();
            assert_eq!(verdicts.len(), windows.len(), "{shards} shards");
            for v in &verdicts {
                assert_eq!(v.classification, serial[v.stream as usize]);
            }
            assert_eq!(mux.rejected_for(50), 1);
            assert_eq!(mux.rejected_for(51), 2);
            assert_eq!(mux.rejected_for(0), 0);
            let stats = mux.stats();
            assert_eq!(stats.rejected, 3, "{shards} shards");
            assert_eq!(stats.dropped, 0, "rejection is not backpressure");
            assert!(mux.is_idle());
        }
    }

    #[test]
    fn resident_bytes_shrinks_when_buffers_are_small() {
        let e = engine(1);
        let narrow = sharded(e.clone(), 1, 1);
        let wide = sharded(e, 4, 16);
        assert!(narrow.resident_bytes() < wide.resident_bytes());
    }
}
