//! Regenerates the paper's timing results from the HLS latency model:
//! Fig. 3 (per-kernel times under each optimization level) and the FPGA
//! row of Table I.

use csd_hls::{Clock, DeviceProfile, KernelEstimate, ResourceEstimate};
use serde::{Deserialize, Serialize};

use crate::kernels::{gates, hidden, preprocess, GateKind, LstmDims};
use crate::opt::OptimizationLevel;

/// The floorplan budget policy (DESIGN.md §5): the four gate CUs get 20%
/// of the device each; `kernel_preprocess` and `kernel_hidden_state` get
/// 10% each, leaving the conventional shell headroom.
pub fn kernel_budget(device: &DeviceProfile, percent: u32) -> ResourceEstimate {
    let cap = device.capacity;
    ResourceEstimate {
        dsp: cap.dsp * percent / 100,
        lut: cap.lut * percent / 100,
        ff: cap.ff * percent / 100,
        bram: cap.bram * percent / 100,
    }
}

/// Per-kernel timing at one optimization level — one column group of
/// Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelBreakdown {
    /// `kernel_preprocess` per-item time in µs.
    pub preprocess_us: f64,
    /// `kernel_gates` per-item time in µs — the max over the four CUs
    /// (§IV), reported as the steady-state initiation cost for the
    /// row-pipelined fixed-point design.
    pub gates_us: f64,
    /// `kernel_hidden_state` per-item time in µs.
    pub hidden_us: f64,
}

impl KernelBreakdown {
    /// Total per-item forward-pass time (the paper sums the kernels).
    pub fn total_us(&self) -> f64 {
        self.preprocess_us + self.gates_us + self.hidden_us
    }
}

/// One row of the regenerated Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Optimization level.
    pub level: OptimizationLevel,
    /// Per-kernel breakdown.
    pub breakdown: KernelBreakdown,
}

/// Estimates one kernel breakdown on the paper's testbed (Alveo u200 at
/// 300 MHz).
pub fn breakdown(level: OptimizationLevel, dims: &LstmDims) -> KernelBreakdown {
    let device = DeviceProfile::alveo_u200();
    let clock = Clock::default_kernel_clock();
    let small = kernel_budget(&device, 10);
    let gate_budget = kernel_budget(&device, 20);

    let pre = preprocess::spec(level, dims).estimate(&small);
    let hid = hidden::spec(level, dims).estimate(&small);
    let gate_worst = GateKind::ALL
        .iter()
        .map(|&k| gates::spec(k, level, dims).estimate(&gate_budget))
        .map(|est: KernelEstimate| {
            // The fixed-point design pipelines the row loop across items:
            // its steady-state per-item cost is the kernel interval. The
            // float designs process items back to back at full latency.
            if level.is_fixed_point() {
                est.timing.interval_cycles
            } else {
                est.timing.fill_cycles
            }
        })
        .max()
        .expect("four CUs");

    KernelBreakdown {
        preprocess_us: clock.micros(pre.timing.fill_cycles),
        gates_us: clock.micros(gate_worst),
        hidden_us: clock.micros(hid.timing.fill_cycles),
    }
}

/// Like [`breakdown`] but with every inter-kernel AXI burst replaced by an
/// AXI-Stream handoff — the §III-C note that "streaming can be easily
/// ported to the kernel implementation for additional acceleration if the
/// FPGA supports it".
pub fn breakdown_streamed(level: OptimizationLevel, dims: &LstmDims) -> KernelBreakdown {
    let device = DeviceProfile::alveo_u200();
    let clock = Clock::default_kernel_clock();
    let small = kernel_budget(&device, 10);
    let gate_budget = kernel_budget(&device, 20);

    let pre = preprocess::spec(level, dims).streamed().estimate(&small);
    let hid = hidden::spec(level, dims).streamed().estimate(&small);
    let gate_worst = GateKind::ALL
        .iter()
        .map(|&k| {
            gates::spec(k, level, dims)
                .streamed()
                .estimate(&gate_budget)
        })
        .map(|est: KernelEstimate| {
            if level.is_fixed_point() {
                est.timing.interval_cycles
            } else {
                est.timing.fill_cycles
            }
        })
        .max()
        .expect("four CUs");

    KernelBreakdown {
        preprocess_us: clock.micros(pre.timing.fill_cycles),
        gates_us: clock.micros(gate_worst),
        hidden_us: clock.micros(hid.timing.fill_cycles),
    }
}

/// The full Fig. 3: all three optimization levels on the paper's model
/// dimensions.
pub fn fig3() -> Vec<Fig3Row> {
    let dims = LstmDims::paper();
    OptimizationLevel::ALL
        .iter()
        .map(|&level| Fig3Row {
            level,
            breakdown: breakdown(level, &dims),
        })
        .collect()
}

/// Table I's FPGA row: the fully-optimized per-item forward-pass time.
pub fn table1_fpga_row() -> f64 {
    breakdown(OptimizationLevel::FixedPoint, &LstmDims::paper()).total_us()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_has_three_levels() {
        let rows = fig3();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].level, OptimizationLevel::Vanilla);
        assert_eq!(rows[2].level, OptimizationLevel::FixedPoint);
    }

    #[test]
    fn totals_fall_monotonically_with_optimization() {
        let rows = fig3();
        let totals: Vec<f64> = rows.iter().map(|r| r.breakdown.total_us()).collect();
        assert!(totals[0] > totals[1], "II must beat vanilla: {totals:?}");
        assert!(totals[1] > totals[2], "fixed must beat II: {totals:?}");
    }

    #[test]
    fn optimized_total_matches_paper_ballpark() {
        // Paper: 2.15133 µs with all optimizations. Our structural model
        // lands within ~25% (see EXPERIMENTS.md for the exact numbers).
        let t = table1_fpga_row();
        assert!(t > 1.0 && t < 3.5, "optimized total {t} µs");
    }

    #[test]
    fn gates_dominate_vanilla_and_collapse_with_fixed_point() {
        let rows = fig3();
        let vanilla = &rows[0].breakdown;
        assert!(vanilla.gates_us > vanilla.preprocess_us);
        assert!(vanilla.gates_us > vanilla.hidden_us);
        let fixed = &rows[2].breakdown;
        assert!(
            vanilla.gates_us / fixed.gates_us > 500.0,
            "gates {} → {}",
            vanilla.gates_us,
            fixed.gates_us
        );
        // Paper's fixed-point gate time: 0.00333 µs. Ours is within 2×.
        assert!(fixed.gates_us < 0.0134, "{}", fixed.gates_us);
    }

    #[test]
    fn preprocess_is_flat() {
        let rows = fig3();
        let times: Vec<f64> = rows.iter().map(|r| r.breakdown.preprocess_us).collect();
        let max = times.iter().cloned().fold(f64::MIN, f64::max);
        let min = times.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min < 0.1, "{times:?}");
    }

    #[test]
    fn budget_policy_fits_the_device() {
        // 4 × 20% + 2 × 10% = 100% of the derated device.
        let device = DeviceProfile::alveo_u200();
        let gates = kernel_budget(&device, 20).times(4);
        let small = kernel_budget(&device, 10).times(2);
        assert!((gates + small).fits_within(&device.capacity));
    }

    #[test]
    fn streaming_accelerates_every_level() {
        // §III-C: streams remove the AXI burst setup from the memory-bound
        // kernels, so every level gets faster — most visibly preprocess
        // and hidden_state.
        let dims = LstmDims::paper();
        for level in OptimizationLevel::ALL {
            let plain = breakdown(level, &dims);
            let streamed = breakdown_streamed(level, &dims);
            assert!(
                streamed.total_us() < plain.total_us(),
                "{level}: {} vs {}",
                streamed.total_us(),
                plain.total_us()
            );
            assert!(streamed.preprocess_us < plain.preprocess_us);
            assert!(streamed.hidden_us < plain.hidden_us);
        }
    }

    #[test]
    fn speedup_vs_gpu_is_paper_scale() {
        // Paper: 344.6× vs the A100 row (741.35 µs).
        let speedup = 741.353_36 / table1_fpga_row();
        assert!(speedup > 200.0 && speedup < 700.0, "speedup {speedup}×");
    }
}
