//! `kernel_gates`: one compute unit per LSTM gate.
//!
//! §III-B/C: four identical CUs run in parallel, one each for `i`, `f`,
//! `o`, and `C'`. A CU computes `act(W_g · [h_{t−1}, x_t] + b_g)` — a
//! `H × Z` matrix-vector product followed by the gate activation — from
//! its private copies of `x_t` and `h_{t−1}`. "The execution time of the
//! gate operations is equivalent to the maximum execution time of each of
//! the four CUs" (§IV).

use csd_fxp::{sigmoid_fx_lut, softsign_fx, Fx6};
use csd_hls::{KernelSpec, LoopBody, LoopNest, Op};
use csd_tensor::{Matrix, Vector};

use crate::kernels::LstmDims;
use crate::opt::OptimizationLevel;

/// Which gate a CU computes, in the TensorFlow export order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Input gate `i_t` (sigmoid).
    Input,
    /// Forget gate `f_t` (sigmoid).
    Forget,
    /// Cell candidate `C'_t` (softsign, the paper's `tanh` replacement).
    Candidate,
    /// Output gate `o_t` (sigmoid).
    Output,
}

impl GateKind {
    /// All four CUs in export order (`i, f, c, o`).
    pub const ALL: [GateKind; 4] = [
        GateKind::Input,
        GateKind::Forget,
        GateKind::Candidate,
        GateKind::Output,
    ];

    /// Index into weight arrays (TF order).
    pub fn index(self) -> usize {
        match self {
            GateKind::Input => 0,
            GateKind::Forget => 1,
            GateKind::Candidate => 2,
            GateKind::Output => 3,
        }
    }

    /// `true` for the softsign-activated candidate gate.
    pub fn is_candidate(self) -> bool {
        self == GateKind::Candidate
    }
}

/// Functional CU, f64 path: `act(W · [h, x] + b)`.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn run_f64(
    kind: GateKind,
    w: &Matrix<f64>,
    b: &Vector<f64>,
    h_prev: &Vector<f64>,
    x: &Vector<f64>,
) -> Vector<f64> {
    let z = h_prev.concat(x);
    let pre = w.matvec(&z).add(b);
    if kind.is_candidate() {
        pre.map(|v| v / (1.0 + v.abs()))
    } else {
        pre.map(|v| 1.0 / (1.0 + (-v).exp()))
    }
}

/// Functional CU, fixed-point path: the same math on 10^6-scaled
/// integers, with the LUT sigmoid / exact softsign used on the fabric.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn run_fx(
    kind: GateKind,
    w: &Matrix<Fx6>,
    b: &Vector<Fx6>,
    h_prev: &Vector<Fx6>,
    x: &Vector<Fx6>,
) -> Vector<Fx6> {
    let z = h_prev.concat(x);
    let pre = w.matvec(&z).add(b);
    if kind.is_candidate() {
        pre.map(softsign_fx)
    } else {
        pre.map(sigmoid_fx_lut)
    }
}

/// Applies the gate activations in place to a fused `4H` pre-activation
/// vector (TF gate order `i f c o`, so rows `2H..3H` are the softsign
/// candidate and the rest are sigmoid), f64 path.
///
/// Uses exactly the same scalar expressions as [`run_f64`], so a fused
/// matvec followed by this call is bit-identical to the four per-CU
/// launches.
///
/// # Panics
///
/// Panics if `pre.len() != 4 * hidden`.
pub fn activate_fused_f64(pre: &mut Vector<f64>, hidden: usize) {
    assert_eq!(pre.len(), 4 * hidden, "fused gate length mismatch");
    let data = pre.as_mut_slice();
    for (g, block) in data.chunks_exact_mut(hidden).enumerate() {
        if GateKind::ALL[g].is_candidate() {
            for v in block {
                *v /= 1.0 + v.abs();
            }
        } else {
            for v in block {
                *v = 1.0 / (1.0 + (-*v).exp());
            }
        }
    }
}

/// Fixed-point twin of [`activate_fused_f64`]: the LUT sigmoid / exact
/// softsign applied per gate block in place.
///
/// # Panics
///
/// Panics if `pre.len() != 4 * hidden`.
pub fn activate_fused_fx(pre: &mut Vector<Fx6>, hidden: usize) {
    assert_eq!(pre.len(), 4 * hidden, "fused gate length mismatch");
    let data = pre.as_mut_slice();
    for (g, block) in data.chunks_exact_mut(hidden).enumerate() {
        if GateKind::ALL[g].is_candidate() {
            for v in block {
                *v = softsign_fx(*v);
            }
        } else {
            csd_fxp::sigmoid_fx_lut_slice(block);
        }
    }
}

/// Fused gate pre-activation from the precomputed input-gate table:
/// `out[r] = rescale(table_row[r] + Σ_{k<hcols} w[r·cols + k]·h[k])`.
///
/// `table_row` holds the folded-out `W_x·e(item) + b·SCALE` terms for
/// one vocabulary item; the MAC covers only the recurrent (`hcols`)
/// prefix of each packed row (`cols`-strided), replacing the embedding
/// gather + concat + full-`Z` matvec + bias add of the unfolded path.
/// Exactness: the partial row sum obeys the caller's full-row `z_limit`
/// bound a fortiori, the table entry is below `2^52`, and integer
/// addition is associative when nothing overflows — so this equals the
/// unfolded pre-activation bit for bit.
///
/// # Panics
///
/// Panics when the slice shapes disagree (`w` must hold at least
/// `table_row.len()` rows of `cols` weights, `h` at least `hcols`).
pub fn fused_preact_table_fx(
    table_row: &[i64],
    w: &[i32],
    cols: usize,
    hcols: usize,
    h: &[Fx6],
    out: &mut [Fx6],
) {
    assert!(hcols <= cols, "recurrent prefix wider than packed rows");
    assert!(h.len() >= hcols, "recurrent input shorter than hcols");
    assert_eq!(table_row.len(), out.len(), "table row length mismatch");
    assert!(w.len() >= out.len() * cols, "packed weights too short");
    for (r, (o, &init)) in out.iter_mut().zip(table_row).enumerate() {
        let row = &w[r * cols..r * cols + hcols];
        let mut acc: i64 = init;
        for (&wv, hv) in row.iter().zip(h) {
            acc += wv as i64 * hv.raw();
        }
        *o = Fx6::from_raw(crate::weights::div_round_i64(acc, Fx6::SCALE));
    }
}

/// The hardware structure of one CU: the `H × Z` MAC nest followed by the
/// activation loop. `#pragma HLS DATAFLOW` (§III-C) overlaps the two.
pub fn spec(kind: GateKind, level: OptimizationLevel, dims: &LstmDims) -> KernelSpec {
    let h = dims.hidden as u32;
    let z = dims.z() as u32;
    let inner = LoopNest::new(z, LoopBody::Mac, level.inner_loop_pragmas());
    let rows = LoopNest::new(
        h,
        LoopBody::Nested(Box::new(inner)),
        level.outer_loop_pragmas(),
    );
    let act_ops = match (kind.is_candidate(), level.is_fixed_point()) {
        // Float sigmoid: exp + add + divide.
        (false, false) => vec![Op::MemRead, Op::Exp, Op::Add, Op::Div],
        // Float softsign: abs + add + divide (no exp — the optimization).
        (true, false) => vec![Op::MemRead, Op::Abs, Op::Add, Op::Div],
        // Fixed sigmoid: BRAM LUT lookup + interpolation multiply-add.
        (false, true) => vec![Op::MemRead, Op::Cmp, Op::Mul, Op::Add],
        // Fixed softsign: exact integer form, one wide divide.
        (true, true) => vec![Op::MemRead, Op::Abs, Op::Add, Op::Div],
    };
    let act = LoopNest::new(h, LoopBody::Map(act_ops), level.inner_loop_pragmas());
    KernelSpec::new(format!("kernel_gates[{kind:?}]"), level.format())
        .stage(rows)
        .stage(act)
        .dataflow()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_hls::{Clock, DeviceProfile, ResourceEstimate};
    use csd_tensor::Initializer;

    fn setup() -> (Matrix<f64>, Vector<f64>, Vector<f64>, Vector<f64>) {
        let w = Initializer::XavierUniform.matrix(32, 40, 1);
        let b = Initializer::XavierUniform.vector(32, 2);
        let h = Initializer::XavierUniform.vector(32, 3);
        let x = Initializer::XavierUniform.vector(8, 4);
        (w, b, h, x)
    }

    #[test]
    fn sigmoid_gates_bounded_01() {
        let (w, b, h, x) = setup();
        for kind in [GateKind::Input, GateKind::Forget, GateKind::Output] {
            let g = run_f64(kind, &w, &b, &h, &x);
            assert!(g.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn candidate_gate_bounded_pm1() {
        let (w, b, h, x) = setup();
        let g = run_f64(GateKind::Candidate, &w, &b, &h, &x);
        assert!(g.iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn gate_matches_hand_computation() {
        // 1×2 toy gate: w = [1, 2], b = 0.5, h = [0.25], x = [0.5].
        let w = Matrix::from_rows(vec![vec![1.0, 2.0]]);
        let b = Vector::from(vec![0.5]);
        let h = Vector::from(vec![0.25]);
        let x = Vector::from(vec![0.5]);
        // pre = 0.25 + 1.0 + 0.5 = 1.75.
        let sig = run_f64(GateKind::Input, &w, &b, &h, &x);
        assert!((sig[0] - 1.0 / (1.0 + (-1.75f64).exp())).abs() < 1e-12);
        let ss = run_f64(GateKind::Candidate, &w, &b, &h, &x);
        assert!((ss[0] - 1.75 / 2.75).abs() < 1e-12);
    }

    #[test]
    fn fx_tracks_f64() {
        let (w, b, h, x) = setup();
        let wq = Matrix::<Fx6>::from_f64_flat(32, 40, &w.to_f64_flat());
        let bq = Vector::<Fx6>::from_f64_slice(&b.to_f64_vec());
        let hq = Vector::<Fx6>::from_f64_slice(&h.to_f64_vec());
        let xq = Vector::<Fx6>::from_f64_slice(&x.to_f64_vec());
        for kind in GateKind::ALL {
            let exact = run_f64(kind, &w, &b, &h, &x);
            let quant = run_fx(kind, &wq, &bq, &hq, &xq);
            for (a, bb) in exact.iter().zip(quant.to_f64_vec()) {
                assert!((a - bb).abs() < 1e-3, "{kind:?}: {a} vs {bb}");
            }
        }
    }

    #[test]
    fn fused_activation_is_bit_identical_to_per_gate() {
        let (w, b, h, x) = setup();
        let z = h.concat(&x);
        // Build the fused pre-activation vector by stacking the per-gate
        // pre-activations (all four gates share w/b here, which is fine:
        // only the activation split is under test).
        let pre = w.matvec(&z).add(&b);
        let mut fused: Vector<f64> = Vector::from([pre.as_slice(); 4].concat());
        activate_fused_f64(&mut fused, 32);
        for (g, kind) in GateKind::ALL.into_iter().enumerate() {
            let expected = run_f64(kind, &w, &b, &h, &x);
            assert_eq!(
                &fused.as_slice()[g * 32..(g + 1) * 32],
                expected.as_slice(),
                "{kind:?}"
            );
        }

        let wq = Matrix::<Fx6>::from_f64_flat(32, 40, &w.to_f64_flat());
        let bq = Vector::<Fx6>::from_f64_slice(&b.to_f64_vec());
        let hq = Vector::<Fx6>::from_f64_slice(&h.to_f64_vec());
        let xq = Vector::<Fx6>::from_f64_slice(&x.to_f64_vec());
        let preq = wq.matvec(&hq.concat(&xq)).add(&bq);
        let mut fusedq: Vector<Fx6> = Vector::from([preq.as_slice(); 4].concat());
        activate_fused_fx(&mut fusedq, 32);
        for (g, kind) in GateKind::ALL.into_iter().enumerate() {
            let expected = run_fx(kind, &wq, &bq, &hq, &xq);
            assert_eq!(
                &fusedq.as_slice()[g * 32..(g + 1) * 32],
                expected.as_slice(),
                "{kind:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "fused gate length mismatch")]
    fn fused_activation_rejects_bad_length() {
        let mut pre = Vector::zeros(7);
        activate_fused_f64(&mut pre, 2);
    }

    fn gates_budget() -> ResourceEstimate {
        // The budget policy gives each gate CU 20% of the device.
        let cap = DeviceProfile::alveo_u200().capacity;
        ResourceEstimate {
            dsp: cap.dsp / 5,
            lut: cap.lut / 5,
            ff: cap.ff / 5,
            bram: cap.bram / 5,
        }
    }

    #[test]
    fn fig3_gate_ordering_vanilla_ii_fixed() {
        let dims = LstmDims::paper();
        let clock = Clock::default_kernel_clock();
        let budget = gates_budget();
        let time = |level: OptimizationLevel| {
            let est = spec(GateKind::Input, level, &dims).estimate(&budget);
            if level.is_fixed_point() {
                clock.micros(est.timing.interval_cycles)
            } else {
                clock.micros(est.timing.fill_cycles)
            }
        };
        let v = time(OptimizationLevel::Vanilla);
        let ii = time(OptimizationLevel::IiOptimized);
        let fx = time(OptimizationLevel::FixedPoint);
        // The paper's central result: II helps ~2–4×, fixed point
        // collapses the gate time by orders of magnitude.
        assert!(v / ii > 2.0 && v / ii < 6.0, "vanilla {v} vs II {ii}");
        assert!(ii / fx > 100.0, "II {ii} vs fixed {fx}");
        assert!(fx < 0.05, "fixed-point gate time {fx} µs");
    }

    #[test]
    fn fixed_point_flattens_within_budget() {
        let dims = LstmDims::paper();
        let est =
            spec(GateKind::Input, OptimizationLevel::FixedPoint, &dims).estimate(&gates_budget());
        // The row loop pipelines: steady-state interval ≪ fill.
        assert!(est.timing.interval_cycles < est.timing.fill_cycles);
        assert!(est.timing.interval_cycles <= 4);
        assert!(est.resources.fits_within(&gates_budget()));
    }

    #[test]
    fn float_cannot_flatten() {
        let dims = LstmDims::paper();
        let est =
            spec(GateKind::Input, OptimizationLevel::IiOptimized, &dims).estimate(&gates_budget());
        // Float rows stay sequential: interval equals fill magnitude.
        assert!(est.timing.interval_cycles > 1_000);
    }
}
