//! `kernel_hidden_state`: cell-state update, hidden-state output, and the
//! fully-connected classification head.
//!
//! §III-B: "`h_t` is dependent upon `C_t`, and therefore
//! `kernel_hidden_state` is used to generate both ... taking this approach
//! allows us to maintain `C_t` entirely within `kernel_hidden_state`" —
//! the cell state never crosses a kernel boundary. The kernel also fans
//! four copies of `h_t` back to the gate CUs (§III-C), keeps the timestep
//! counter ("a static counter in order to determine when the entirety of
//! the sequence has been processed"), and applies the 32+1-parameter FC
//! head to `h_T` after the final item.

use csd_fxp::{sigmoid_fx_lut, softsign_fx, Fx6};
use csd_hls::{KernelSpec, LoopBody, LoopNest, Op};
use csd_tensor::{Scalar, Vector};

use crate::kernels::LstmDims;
use crate::opt::OptimizationLevel;

/// One state update, f64 path: consumes the four gate outputs, returns
/// `(C_t, h_t)`.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn run_f64(
    i: &Vector<f64>,
    f: &Vector<f64>,
    o: &Vector<f64>,
    cbar: &Vector<f64>,
    c_prev: &Vector<f64>,
) -> (Vector<f64>, Vector<f64>) {
    // C_t = f ∗ C_{t−1} + i ∗ C'.
    let c = f.hadamard(c_prev).add(&i.hadamard(cbar));
    // h_t = o ∗ softsign(C_t).
    let h = o.hadamard(&c.map(|v| v / (1.0 + v.abs())));
    (c, h)
}

/// One state update, fixed-point path.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn run_fx(
    i: &Vector<Fx6>,
    f: &Vector<Fx6>,
    o: &Vector<Fx6>,
    cbar: &Vector<Fx6>,
    c_prev: &Vector<Fx6>,
) -> (Vector<Fx6>, Vector<Fx6>) {
    let c = f.hadamard(c_prev).add(&i.hadamard(cbar));
    let h = o.hadamard(&c.map(softsign_fx));
    (c, h)
}

/// One state update from a fused `4H` gate vector (TF order `i f c o`),
/// writing `C_t` and `h_t` in place over the previous state — the
/// allocation-free form of [`run_f64`], computing the same expressions in
/// the same order.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn update_fused_f64(g: &Vector<f64>, c: &mut Vector<f64>, h: &mut Vector<f64>) {
    let hdim = c.len();
    assert_eq!(g.len(), 4 * hdim, "fused gate length mismatch");
    assert_eq!(h.len(), hdim, "state length mismatch");
    let (i, f, cbar, o) = fused_blocks(g.as_slice(), hdim);
    for j in 0..hdim {
        // C_t = f ∗ C_{t−1} + i ∗ C'.
        let ct = f[j] * c[j] + i[j] * cbar[j];
        c[j] = ct;
        // h_t = o ∗ softsign(C_t).
        h[j] = o[j] * (ct / (1.0 + ct.abs()));
    }
}

/// Fixed-point twin of [`update_fused_f64`].
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn update_fused_fx(g: &Vector<Fx6>, c: &mut Vector<Fx6>, h: &mut Vector<Fx6>) {
    let hdim = c.len();
    assert_eq!(g.len(), 4 * hdim, "fused gate length mismatch");
    assert_eq!(h.len(), hdim, "state length mismatch");
    let (i, f, cbar, o) = fused_blocks(g.as_slice(), hdim);
    for j in 0..hdim {
        let ct = f[j] * c[j] + i[j] * cbar[j];
        c[j] = ct;
        h[j] = o[j] * softsign_fx(ct);
    }
}

/// Splits a fused `4H` gate slice into its `(i, f, C', o)` blocks.
fn fused_blocks<T>(g: &[T], hdim: usize) -> (&[T], &[T], &[T], &[T]) {
    (
        &g[..hdim],
        &g[hdim..2 * hdim],
        &g[2 * hdim..3 * hdim],
        &g[3 * hdim..],
    )
}

/// The FC head on the final hidden state, f64 path: `σ(w · h_T + b)`.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn classify_f64(h: &Vector<f64>, fc_w: &Vector<f64>, fc_b: f64) -> f64 {
    let logit = fc_w.dot(h) + fc_b;
    1.0 / (1.0 + (-logit).exp())
}

/// The FC head, fixed-point path.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn classify_fx(h: &Vector<Fx6>, fc_w: &Vector<Fx6>, fc_b: Fx6) -> Fx6 {
    let logit = Fx6::dot(fc_w.as_slice(), h.as_slice()).checked_add(fc_b);
    sigmoid_fx_lut(logit.expect("fc logit overflow"))
}

/// Fans `h_t` back out to the four gate CUs.
pub fn fanout_h<T: Scalar>(h: &Vector<T>) -> [Vector<T>; 4] {
    [h.clone(), h.clone(), h.clone(), h.clone()]
}

/// The per-item hardware structure: four gate-result input bursts, the
/// elementwise state loop, four `h` fan-out bursts, and the timestep
/// counter. (The FC head runs once per sequence; see [`fc_spec`].)
pub fn spec(level: OptimizationLevel, dims: &LstmDims) -> KernelSpec {
    let h = dims.hidden as u32;
    let mut ops = vec![Op::MemRead, Op::MemRead, Op::MemRead, Op::MemRead];
    // c = f·c + i·c': two multiplies and an add ...
    ops.extend([Op::Mul, Op::Mul, Op::Add]);
    // ... softsign(c): |c|, +1, divide ...
    ops.extend([Op::Abs, Op::Add, Op::Div]);
    // ... h = o · softsign(c).
    ops.push(Op::Mul);
    let mut spec = KernelSpec::new("kernel_hidden_state", level.format());
    for _ in 0..4 {
        spec = spec.axi_burst(h); // i, f, o, C' arrive from the CUs
    }
    spec = spec.stage(LoopNest::new(
        h,
        LoopBody::Map(ops),
        level.inner_loop_pragmas(),
    ));
    for _ in 0..4 {
        spec = spec.axi_burst(h); // four h_{t} copies back to the CUs
    }
    // The static sequence counter: increment + end-of-sequence compare.
    spec.seq(vec![Op::Add, Op::Cmp])
}

/// The end-of-sequence FC stage: a `H`-element MAC plus the output
/// sigmoid, charged once per sequence.
pub fn fc_spec(level: OptimizationLevel, dims: &LstmDims) -> KernelSpec {
    let h = dims.hidden as u32;
    let act = if level.is_fixed_point() {
        vec![Op::MemRead, Op::Cmp, Op::Mul, Op::Add]
    } else {
        vec![Op::Exp, Op::Add, Op::Div]
    };
    KernelSpec::new("kernel_hidden_state::fc", level.format())
        .stage(LoopNest::new(h, LoopBody::Mac, level.inner_loop_pragmas()))
        .seq(act)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_hls::Clock;
    use csd_tensor::Initializer;

    fn vecs() -> [Vector<f64>; 5] {
        std::array::from_fn(|k| {
            Initializer::Uniform { limit_millis: 900 }.vector(32, k as u64 + 10)
        })
    }

    #[test]
    fn state_update_matches_hand_calc() {
        let i = Vector::from(vec![0.5]);
        let f = Vector::from(vec![0.25]);
        let o = Vector::from(vec![1.0]);
        let cbar = Vector::from(vec![0.8]);
        let c_prev = Vector::from(vec![2.0]);
        let (c, h) = run_f64(&i, &f, &o, &cbar, &c_prev);
        // c = 0.25·2 + 0.5·0.8 = 0.9; h = 1·softsign(0.9) = 0.9/1.9.
        assert!((c[0] - 0.9).abs() < 1e-12);
        assert!((h[0] - 0.9 / 1.9).abs() < 1e-12);
    }

    #[test]
    fn fx_state_update_tracks_f64() {
        let [i, f, o, cbar, c_prev] = vecs();
        let q = |v: &Vector<f64>| Vector::<Fx6>::from_f64_slice(&v.to_f64_vec());
        let (c, h) = run_f64(&i, &f, &o, &cbar, &c_prev);
        let (cq, hq) = run_fx(&q(&i), &q(&f), &q(&o), &q(&cbar), &q(&c_prev));
        assert!(c.max_abs_diff(&Vector::from(cq.to_f64_vec())) < 1e-4);
        assert!(h.max_abs_diff(&Vector::from(hq.to_f64_vec())) < 1e-4);
    }

    #[test]
    fn classify_head_matches_sigmoid() {
        let h = Vector::from(vec![0.5, -0.5]);
        let w = Vector::from(vec![1.0, 1.0]);
        let p = classify_f64(&h, &w, 0.3);
        assert!((p - 1.0 / (1.0 + (-0.3f64).exp())).abs() < 1e-12);
        let pq = classify_fx(
            &Vector::from_f64_slice(&[0.5, -0.5]),
            &Vector::from_f64_slice(&[1.0, 1.0]),
            Fx6::from_f64(0.3),
        );
        assert!((pq.to_f64() - p).abs() < 1e-3);
    }

    #[test]
    fn fused_update_is_bit_identical_to_run() {
        let [i, f, o, cbar, c_prev] = vecs();
        let h_prev = Initializer::Uniform { limit_millis: 900 }.vector(32, 99);

        let (c_expect, h_expect) = run_f64(&i, &f, &o, &cbar, &c_prev);
        let fused: Vector<f64> =
            Vector::from([i.as_slice(), f.as_slice(), cbar.as_slice(), o.as_slice()].concat());
        let mut c = c_prev.clone();
        let mut h = h_prev.clone();
        update_fused_f64(&fused, &mut c, &mut h);
        assert_eq!(c, c_expect);
        assert_eq!(h, h_expect);

        let q = |v: &Vector<f64>| Vector::<Fx6>::from_f64_slice(&v.to_f64_vec());
        let (cq_expect, hq_expect) = run_fx(&q(&i), &q(&f), &q(&o), &q(&cbar), &q(&c_prev));
        let fusedq: Vector<Fx6> = Vector::from(
            [
                q(&i).as_slice(),
                q(&f).as_slice(),
                q(&cbar).as_slice(),
                q(&o).as_slice(),
            ]
            .concat(),
        );
        let mut cq = q(&c_prev);
        let mut hq = q(&h_prev);
        update_fused_fx(&fusedq, &mut cq, &mut hq);
        assert_eq!(cq, cq_expect);
        assert_eq!(hq, hq_expect);
    }

    #[test]
    fn fanout_is_four_copies() {
        let h = Vector::from(vec![1.0, 2.0]);
        assert!(fanout_h(&h).iter().all(|c| c == &h));
    }

    #[test]
    fn hidden_timing_improves_modestly_with_ii() {
        // The paper: II helps hidden_state; fixed point does not help it
        // further (their Fig. 3 even shows a slight rise).
        let dims = LstmDims::paper();
        let clock = Clock::default_kernel_clock();
        let t = |l: OptimizationLevel| clock.micros(spec(l, &dims).estimate_default().fill_cycles);
        let v = t(OptimizationLevel::Vanilla);
        let ii = t(OptimizationLevel::IiOptimized);
        let fx = t(OptimizationLevel::FixedPoint);
        assert!(ii < v, "II should reduce hidden_state ({v} → {ii})");
        // Fixed point changes hidden_state only marginally (< 15%).
        assert!((fx - ii).abs() / ii < 0.15, "II {ii} vs fixed {fx}");
        // Ballpark of the paper's 1.3–1.7 µs row: within ~2×.
        assert!(v > 0.6 && v < 3.5, "vanilla hidden {v}");
    }

    #[test]
    fn fc_stage_is_cheap() {
        let dims = LstmDims::paper();
        let clock = Clock::default_kernel_clock();
        for l in OptimizationLevel::ALL {
            let t = clock.micros(fc_spec(l, &dims).estimate_default().fill_cycles);
            assert!(t < 1.0, "{l}: {t} µs");
        }
    }
}
