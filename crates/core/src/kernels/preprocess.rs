//! `kernel_preprocess`: item → embedding, fanned out to the gate CUs.
//!
//! §III-B: the kernel "consumes a fully-formed data sequence \[and\] for each
//! item ... generat\[es\] its corresponding embedding based off the weights
//! from the offline training procedure", implemented as the dot product of
//! the item's one-hot vector with the flattened `M × O` embedding buffer.
//! §III-C: it "creates four copies of the embedding of the given item ...
//! such that each CU has its own copies", and prefetches item `t+1` while
//! item `t` is in flight.
//!
//! The kernel is *memory-bound*: one AXI burst fetches the embedding row
//! and four bursts fan the copies out, so optimization levels barely move
//! it — exactly the paper's observation that "the execution time of
//! kernel_preprocess remained fairly fixed".

use csd_fxp::Fx6;
use csd_hls::{KernelSpec, LoopBody, LoopNest, Op};
use csd_tensor::{Matrix, Vector};

use crate::kernels::LstmDims;
use crate::opt::OptimizationLevel;

/// Whether `item` indexes a row of a `vocab`-entry embedding table (or,
/// equivalently, a row of the precomputed input-gate table the engine
/// folds the embedding into).
///
/// This is the *single* vocabulary predicate: the stream layers validate
/// tokens at the admission boundary with it, so the engine's internal
/// out-of-vocabulary asserts — kept as defense in depth — are
/// unreachable through `StreamMux`/`FleetMonitor`.
pub fn in_vocabulary(vocab: usize, item: usize) -> bool {
    item < vocab
}

/// Functional embedding lookup, f64 path: equivalent to
/// `onehot(item) · E` but without materializing the one-hot vector.
///
/// # Panics
///
/// Panics if `item` is out of vocabulary.
pub fn run_f64(embedding: &Matrix<f64>, item: usize) -> Vector<f64> {
    assert!(item < embedding.rows(), "item {item} out of vocabulary");
    Vector::from(embedding.row(item).to_vec())
}

/// Functional embedding lookup, fixed-point path (the quantized buffer the
/// host shipped to FPGA DRAM).
///
/// # Panics
///
/// Panics if `item` is out of vocabulary.
pub fn run_fx(embedding: &Matrix<Fx6>, item: usize) -> Vector<Fx6> {
    assert!(item < embedding.rows(), "item {item} out of vocabulary");
    Vector::from(embedding.row(item).to_vec())
}

/// Embedding lookup into a caller-owned buffer — the allocation-free form
/// used by the fused inference path (either precision).
///
/// # Panics
///
/// Panics if `item` is out of vocabulary or `out.len()` is not the
/// embedding width.
pub fn run_into<T: csd_tensor::Scalar>(embedding: &Matrix<T>, item: usize, out: &mut Vector<T>) {
    assert!(item < embedding.rows(), "item {item} out of vocabulary");
    assert_eq!(out.len(), embedding.cols(), "embedding width mismatch");
    out.as_mut_slice().copy_from_slice(embedding.row(item));
}

/// Fans `x` out into the per-CU copies (§III-C's four-copy operation).
pub fn fanout<T: csd_tensor::Scalar>(x: &Vector<T>) -> [Vector<T>; 4] {
    [x.clone(), x.clone(), x.clone(), x.clone()]
}

/// The hardware structure: row fetch burst → embedding prep loop → four
/// fan-out bursts to the gate CUs' buffers.
pub fn spec(level: OptimizationLevel, dims: &LstmDims) -> KernelSpec {
    let embed = dims.embed as u32;
    let mut spec = KernelSpec::new("kernel_preprocess", level.format()).axi_burst(embed);
    spec = spec.stage(LoopNest::new(
        embed,
        LoopBody::Map(vec![Op::MemRead, Op::Mul]),
        level.inner_loop_pragmas(),
    ));
    for _ in 0..4 {
        spec = spec.axi_burst(embed);
    }
    spec
}

/// `Stage` count sanity helper for tests/benches: 1 fetch + 1 loop + 4
/// fan-out bursts.
pub const STAGES: usize = 6;

#[cfg(test)]
mod tests {
    use super::*;
    use csd_hls::Clock;
    use csd_tensor::Initializer;

    fn embedding() -> Matrix<f64> {
        Initializer::XavierUniform.matrix(278, 8, 5)
    }

    #[test]
    fn lookup_matches_row() {
        let e = embedding();
        let x = run_f64(&e, 42);
        assert_eq!(x.as_slice(), e.row(42));
    }

    #[test]
    fn fx_lookup_matches_f64_within_quantization() {
        let e = embedding();
        let eq = Matrix::<Fx6>::from_f64_flat(278, 8, &e.to_f64_flat());
        let a = run_f64(&e, 7);
        let b = run_fx(&eq, 7);
        for (x, y) in a.iter().zip(b.to_f64_vec()) {
            assert!((x - y).abs() <= 5e-7);
        }
    }

    #[test]
    fn run_into_matches_allocating_lookup() {
        let e = embedding();
        let mut out = Vector::zeros(8);
        run_into(&e, 42, &mut out);
        assert_eq!(out, run_f64(&e, 42));
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn run_into_oov_panics() {
        let mut out = Vector::zeros(8);
        run_into(&embedding(), 278, &mut out);
    }

    #[test]
    fn fanout_makes_four_identical_copies() {
        let x = Vector::from(vec![1.0, 2.0]);
        let copies = fanout(&x);
        assert!(copies.iter().all(|c| c == &x));
    }

    #[test]
    fn timing_is_flat_across_levels() {
        // The paper: "kernel_preprocess remained fairly fixed".
        let dims = LstmDims::paper();
        let clock = Clock::default_kernel_clock();
        let times: Vec<f64> = OptimizationLevel::ALL
            .iter()
            .map(|&l| clock.micros(spec(l, &dims).estimate_default().fill_cycles))
            .collect();
        let spread = times
            .iter()
            .fold(0.0f64, |m, &t| m.max((t - times[0]).abs()));
        assert!(spread < 0.1, "{times:?}");
        // And in the paper's ballpark (0.74–0.80 µs): within 2×.
        assert!(times[0] > 0.3 && times[0] < 1.6, "{times:?}");
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_panics() {
        let _ = run_f64(&embedding(), 278);
    }
}
