//! The five-kernel decomposition of the LSTM forward pass (§III-B).
//!
//! Each kernel exists twice, on purpose:
//!
//! 1. **functionally** — Rust code that actually computes the kernel's
//!    outputs (in f64 for the float levels, in `Fx6` for the fixed-point
//!    level), so classification results are real, testable numbers; and
//! 2. **structurally** — a [`csd_hls::KernelSpec`] describing the loop
//!    nests and pragmas the HLS flow would synthesize, from which the
//!    latency model derives Fig. 3's timings.
//!
//! Keeping the two views side by side in one module is the Rust analogue
//! of an HLS source file: the code *is* the hardware description.

pub mod gates;
pub mod hidden;
pub mod preprocess;

use serde::{Deserialize, Serialize};

pub use gates::GateKind;

/// The model dimensions every kernel is parameterized by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LstmDims {
    /// Vocabulary size `M`.
    pub vocab: usize,
    /// Embedding size `O` (= the LSTM input size).
    pub embed: usize,
    /// Hidden size `H`.
    pub hidden: usize,
}

impl LstmDims {
    /// The paper's dimensions: `M = 278`, `O = 8`, `H = 32`.
    pub fn paper() -> Self {
        Self {
            vocab: 278,
            embed: 8,
            hidden: 32,
        }
    }

    /// The concatenated gate-input width `Z = H + O` (the `[h_{t−1}, x_t]`
    /// vector).
    pub fn z(&self) -> usize {
        self.hidden + self.embed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dims() {
        let d = LstmDims::paper();
        assert_eq!(d.z(), 40);
        assert_eq!(d.vocab * d.embed, 2_224);
    }
}
