//! The end-to-end CSD inference engine.
//!
//! [`CsdInferenceEngine`] executes the five-kernel design functionally.
//! The default per-timestep path is *fused and allocation-free*: the four
//! `H×Z` gate matrices are stacked once at construction into a single
//! `4H×Z` matrix, so each item costs one embedding copy, one concat, one
//! matvec and two in-place sweeps over preallocated scratch. The original
//! per-CU formulation (four separate gate kernels, optionally on the
//! persistent worker pool, mirroring the four hardware CUs of §III-C)
//! remains available via [`GatePath`] and is bit-for-bit identical — in
//! f64 for the float levels and in 10^6-scaled fixed point for
//! [`OptimizationLevel::FixedPoint`].

use std::sync::{Arc, OnceLock};

use csd_fxp::Fx6;
use csd_nn::ModelWeights;
use csd_tensor::{lanes, Vector};
use serde::{Deserialize, Serialize};

use crate::cascade::CascadeTier;
use crate::kernels::{gates, hidden, preprocess, GateKind};
use crate::opt::OptimizationLevel;
use crate::pool::WorkerPool;
use crate::schedule::LaneSchedule;
use crate::scratch::{EngineScratch, InferenceScratch, LaneScratch};
use crate::weights::{
    FusedGates, LaneGatesFx, PackedGatesFx, PackedGatesI16, QuantizedWeights, LANE_MAX_STEPS,
};

/// The outcome of classifying one sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Classification {
    /// `P(positive | sequence)` — ransomware probability in the use case.
    pub probability: f64,
    /// Hard decision at threshold 0.5.
    pub is_positive: bool,
}

/// One lane shard's output: `(sequence index, result)` pairs in
/// retirement order, merged back into input order by the caller.
type ShardResults = Vec<(usize, Classification)>;

/// How the per-timestep gate computation executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatePath {
    /// One fused `4H×Z` matvec into preallocated scratch — the default,
    /// allocation-free software hot path.
    Fused,
    /// Four separate gate kernels run serially, exactly as the seed
    /// engine did — the hardware-mirroring formulation.
    PerCuSerial,
    /// Four separate gate kernels scattered onto the persistent
    /// [`WorkerPool`], mirroring the four parallel hardware CUs.
    PerCuParallel,
}

/// Immutable model state shared (via `Arc`) by engine clones and batch
/// workers: the quantized weights plus the fused gate matrices derived
/// from them at construction.
#[derive(Debug)]
struct EngineCore {
    weights: QuantizedWeights,
    fused_f64: FusedGates<f64>,
    fused_fx: FusedGates<Fx6>,
    /// Narrow-MAC repack of `fused_fx` (`None` when the weights don't
    /// admit the exactness proof; the wide matvec then serves alone).
    packed_fx: Option<PackedGatesFx>,
    /// Lane-batched repack of `fused_fx` plus the embedding table (`None`
    /// when the lane exactness proof fails; batches then fall back to the
    /// serial per-sequence kernels).
    lane_fx: Option<LaneGatesFx>,
    /// `i16×i16→i32` repack of `fused_fx` (`None` whenever any row fails
    /// the narrow-accumulator proof — which is *always* the case at the
    /// paper's 10^6 decimal scale, where the recurrent `|h| ≤ 1` bound
    /// is raw `10^6 ≫ 32767`; the engine then keeps the `f64`-FMA/`i32`
    /// paths, the documented fallback contract).
    packed_i16: Option<PackedGatesI16>,
}

/// Which execution tier each packed form of the model actually landed
/// on — the introspection face of the pack-time decline machinery (the
/// structured [`crate::weights::I16Decline`] log/counter's counterpart).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TierReport {
    /// The `i16×i16→i32` repack of the *exact* 10^6-scale path took
    /// (always `false` for the paper model — the honest decline).
    pub mac_i16_exact: bool,
    /// The `i32` narrow-MAC repack took.
    pub mac_i32_narrow: bool,
    /// The lane/table repack took (lane stepping + gate table possible).
    pub lane_table: bool,
    /// The gate table is actually in use (toggle on and pack took).
    pub gate_table_enabled: bool,
    /// The attached screen tier, when a cascade is mounted: its decimal
    /// scale and calibrated band edges. The screen tier always runs the
    /// `i16` MAC — its quantizer guarantees the proof.
    pub screen: Option<ScreenTierReport>,
}

/// The screen tier's slice of [`TierReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ScreenTierReport {
    /// Raw probability units per 1.0 (10^scale_pow).
    pub scale: i64,
    /// Calibrated lower band edge.
    pub band_lo: i64,
    /// Calibrated upper band edge.
    pub band_hi: i64,
}

/// The CSD-resident classifier.
#[derive(Debug, Clone)]
pub struct CsdInferenceEngine {
    core: Arc<EngineCore>,
    level: OptimizationLevel,
    path: GatePath,
    /// Whether the fixed-point paths use the precomputed input-gate
    /// table (`CSD_GATE_TABLE`, default on; bit-identical either way).
    use_gate_table: bool,
    /// The optional screen tier (clone-cheap): mounted via
    /// [`with_cascade`](Self::with_cascade), consulted by
    /// [`classify_cascade`](Self::classify_cascade) and the streaming
    /// mux's cascade mode.
    cascade: Option<Arc<CascadeTier>>,
}

impl CsdInferenceEngine {
    /// Builds an engine from exported model weights at the given
    /// optimization level.
    ///
    /// # Panics
    ///
    /// Panics if the weight arrays are inconsistent with their config.
    pub fn new(weights: &ModelWeights, level: OptimizationLevel) -> Self {
        let weights = QuantizedWeights::from_model_weights(weights);
        let fused_f64 = weights.fused_f64();
        let fused_fx = weights.fused_fx();
        let packed_fx = PackedGatesFx::pack(&fused_fx);
        let lane_fx = LaneGatesFx::pack(&fused_fx, &weights.embedding_fx, weights.dims().hidden);
        // Attempt the i16 repack against the same per-column input bounds
        // the lane proof uses: SCALE for recurrent columns, the column
        // max |raw| for embedding columns. `pack` declines (None) when
        // any row fails the narrow proof — always, at scale 10^6.
        let packed_i16 = if crate::env::flag("CSD_MAC_I16").unwrap_or(true) {
            let dims = weights.dims();
            let mut zbound = vec![Fx6::SCALE; dims.z()];
            for (col, zb) in zbound[dims.hidden..].iter_mut().enumerate() {
                let mut m: i64 = 1;
                for r in 0..weights.embedding_fx.rows() {
                    m = m.max(weights.embedding_fx.get(r, col).raw().abs());
                }
                *zb = m;
            }
            PackedGatesI16::pack(&fused_fx, &zbound)
        } else {
            None
        };
        Self {
            core: Arc::new(EngineCore {
                weights,
                fused_f64,
                fused_fx,
                packed_fx,
                lane_fx,
                packed_i16,
            }),
            level,
            path: GatePath::Fused,
            use_gate_table: crate::env::flag("CSD_GATE_TABLE").unwrap_or(true),
            cascade: None,
        }
    }

    /// Mounts a calibrated two-tier cascade: the quantized `i16` screen
    /// model plus its uncertainty band. [`classify_cascade`](Self::classify_cascade)
    /// and the streaming mux's cascade mode consult it; every other
    /// classify entry point is untouched (the single-tier parity
    /// anchor).
    pub fn with_cascade(mut self, tier: CascadeTier) -> Self {
        self.cascade = Some(Arc::new(tier));
        self
    }

    /// The mounted cascade tier, if any.
    pub fn cascade(&self) -> Option<&CascadeTier> {
        self.cascade.as_deref()
    }

    /// The mounted cascade tier as a clone-cheap shared handle — the
    /// stream multiplexer's screen block holds one per mux.
    pub(crate) fn cascade_shared(&self) -> Option<Arc<CascadeTier>> {
        self.cascade.clone()
    }

    /// Which execution tier each packed form of the model selected —
    /// the introspection API over the pack-time decline machinery.
    pub fn tier_report(&self) -> TierReport {
        TierReport {
            mac_i16_exact: self.core.packed_i16.is_some(),
            mac_i32_narrow: self.core.packed_fx.is_some(),
            lane_table: self.core.lane_fx.is_some(),
            gate_table_enabled: self.gate_table_enabled(),
            screen: self.cascade.as_deref().map(|t| {
                let band = t.band();
                ScreenTierReport {
                    scale: t.gates().scale(),
                    band_lo: band.lo,
                    band_hi: band.hi,
                }
            }),
        }
    }

    /// Classifies one sequence through the cascade: the screen tier's
    /// integer pass first, the exact path only when the screen score
    /// falls inside the calibrated uncertainty band. Returns the verdict
    /// and whether the window escalated. Without a mounted cascade,
    /// every window "escalates" to the exact path.
    ///
    /// Screen-resolved windows report the screen's probability
    /// (`score/scale`); escalated windows report the exact path's bits.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn classify_cascade(&self, seq: &[usize]) -> (Classification, bool) {
        if let Some(tier) = self.cascade.as_deref() {
            let (score, decision) = tier.screen(seq);
            if let Some(is_positive) = decision {
                return (
                    Classification {
                        probability: score as f64 / tier.gates().scale() as f64,
                        is_positive,
                    },
                    false,
                );
            }
        }
        (self.classify(seq), true)
    }

    /// Runs the four gate CUs on the persistent worker pool, mirroring
    /// the parallel hardware CUs (§III-C); `false` restores the default
    /// fused path. Functionally identical either way.
    pub fn with_parallel_cus(mut self, parallel: bool) -> Self {
        self.path = if parallel {
            GatePath::PerCuParallel
        } else {
            GatePath::Fused
        };
        self
    }

    /// Selects the gate execution path explicitly.
    pub fn with_gate_path(mut self, path: GatePath) -> Self {
        self.path = path;
        self
    }

    /// Enables or disables the precomputed input-gate table on the
    /// fixed-point paths, overriding the `CSD_GATE_TABLE` environment
    /// default. Both settings produce bit-identical verdicts — the table
    /// is exact integer reassociation — so this is a performance toggle
    /// (and the race-free way for tests to pin a path).
    pub fn with_gate_table(mut self, on: bool) -> Self {
        self.use_gate_table = on;
        self
    }

    /// Whether the fixed-point paths actually run off the input-gate
    /// table: the toggle is on *and* the weights passed the lane
    /// exactness proof that bounds every table entry.
    pub fn gate_table_enabled(&self) -> bool {
        self.use_gate_table && self.core.lane_fx.is_some()
    }

    /// Whether the `i16×i16→i32` MAC repack is active. At the paper's
    /// 10^6 decimal scale this is always `false` — the narrow proof
    /// fails on the recurrent columns — and the engine serves the
    /// `f64`-FMA/`i32` paths instead (the fallback contract).
    pub fn mac_i16_active(&self) -> bool {
        self.core.packed_i16.is_some()
    }

    /// The gate execution path in effect.
    pub fn gate_path(&self) -> GatePath {
        self.path
    }

    /// The optimization level the engine executes at.
    pub fn level(&self) -> OptimizationLevel {
        self.level
    }

    /// The ingested (and quantized) weights.
    pub fn weights(&self) -> &QuantizedWeights {
        &self.core.weights
    }

    /// Allocates scratch sized for this engine's model, for use with
    /// [`classify_with_scratch`](Self::classify_with_scratch).
    pub fn make_scratch(&self) -> EngineScratch {
        EngineScratch::new(self.core.weights.dims())
    }

    /// Classifies one sequence.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn classify(&self, seq: &[usize]) -> Classification {
        let mut scratch = self.make_scratch();
        self.classify_with_scratch(seq, &mut scratch)
    }

    /// Classifies one sequence reusing caller-owned scratch. On the
    /// default fused path the per-timestep loop performs no heap
    /// allocation; callers classifying many sequences (monitors, batch
    /// workers) amortize the buffer allocation across all of them.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence, an out-of-vocabulary token, or
    /// scratch sized for different model dimensions.
    pub fn classify_with_scratch(
        &self,
        seq: &[usize],
        scratch: &mut EngineScratch,
    ) -> Classification {
        assert!(!seq.is_empty(), "empty sequence");
        let w = &self.core.weights;
        let probability = if self.level.is_fixed_point() {
            self.run_states_fx(seq, &mut scratch.fx_buffers);
            hidden::classify_fx(&scratch.fx_buffers.h, &w.fc_w_fx, w.fc_b_fx).to_f64()
        } else {
            self.run_states_f64(seq, &mut scratch.f64_buffers);
            hidden::classify_f64(&scratch.f64_buffers.h, &w.fc_w_f64, w.fc_b_f64)
        };
        Classification {
            probability,
            is_positive: probability >= 0.5,
        }
    }

    /// Classifies many sequences — the data-center background-scanning
    /// workload (§I: "execute the classifier continuously in the
    /// background"). Results are returned in input order.
    ///
    /// Convenience wrapper over
    /// [`classify_batch_refs`](Self::classify_batch_refs) for callers
    /// holding owned sequences.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, an empty sequence, or an
    /// out-of-vocabulary token.
    pub fn classify_batch(&self, sequences: &[Vec<usize>]) -> Vec<Classification> {
        let refs: Vec<&[usize]> = sequences.iter().map(Vec::as_slice).collect();
        self.classify_batch_refs(&refs)
    }

    /// Classifies many borrowed sequences in input order, choosing the
    /// fastest batch execution for this engine's gate path.
    ///
    /// On the default [`GatePath::Fused`] path this runs the lane-batched
    /// engine ([`classify_lanes`](Self::classify_lanes)); the per-CU paths
    /// keep the hardware-mirroring serial kernels, sharded across the
    /// persistent worker pool by borrowing — neither the engine nor any
    /// sequence is cloned per chunk. Every path returns bit-identical
    /// results.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, an empty sequence, or an
    /// out-of-vocabulary token.
    pub fn classify_batch_refs(&self, sequences: &[&[usize]]) -> Vec<Classification> {
        assert!(!sequences.is_empty(), "empty batch");
        if sequences.len() == 1 {
            // A lane block would compute `width` lanes for one sequence;
            // the serial path is strictly cheaper (and bit-identical).
            return vec![self.classify(sequences[0])];
        }
        match self.path {
            GatePath::Fused => self.classify_lanes(sequences),
            GatePath::PerCuSerial | GatePath::PerCuParallel => {
                self.classify_batch_scoped(sequences)
            }
        }
    }

    /// Serial per-sequence batch execution: chunks scattered onto the
    /// pool as *scoped* jobs that borrow the engine and the input slices
    /// directly, each reusing one scratch for its whole chunk.
    fn classify_batch_scoped(&self, sequences: &[&[usize]]) -> Vec<Classification> {
        let pool = WorkerPool::global();
        let threads = pool.threads().min(sequences.len());
        // Ceil division: at most `threads` chunks, never an empty one.
        let chunk = sequences.len().div_ceil(threads);
        let jobs: Vec<Box<dyn FnOnce() -> Vec<Classification> + Send + '_>> = sequences
            .chunks(chunk)
            .map(|batch| {
                Box::new(move || {
                    let mut scratch = self.make_scratch();
                    batch
                        .iter()
                        .map(|seq| self.classify_with_scratch(seq, &mut scratch))
                        .collect::<Vec<_>>()
                }) as Box<dyn FnOnce() -> Vec<Classification> + Send + '_>
            })
            .collect();
        pool.scatter_scoped(jobs).into_iter().flatten().collect()
    }

    /// The lane width [`classify_lanes`](Self::classify_lanes) uses: the
    /// `CSD_LANE_WIDTH` environment override when set to a positive
    /// integer, otherwise the widest multiple of 8 whose lane block —
    /// about `(4H + Z + H) · 8` bytes of `g`/`z`/`c` state per lane —
    /// fits a 32 KiB L1 data cache, clamped to `[8, 64]`. Multiples of 8
    /// keep the AVX-512 kernels on their full-width tiles; for the
    /// paper's dimensions (`H = 32`, `Z = 40`, 1600 bytes per lane) the
    /// heuristic lands on 16 lanes, i.e. two 8-wide vectors.
    pub fn lane_width(&self) -> usize {
        static ENV: OnceLock<Option<usize>> = OnceLock::new();
        let env = *ENV.get_or_init(|| crate::env::positive_usize("CSD_LANE_WIDTH"));
        if let Some(width) = env {
            return width;
        }
        let dims = self.core.weights.dims();
        let bytes_per_lane = 8 * (4 * dims.hidden + dims.z() + dims.hidden);
        let fit = (32 * 1024) / bytes_per_lane.max(1);
        (fit / 8 * 8).clamp(8, 64)
    }

    /// Classifies many borrowed sequences with the lane-batched engine at
    /// the default lane width — see
    /// [`classify_lanes_with_width`](Self::classify_lanes_with_width).
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, an empty sequence, or an
    /// out-of-vocabulary token.
    pub fn classify_lanes(&self, sequences: &[&[usize]]) -> Vec<Classification> {
        // A batch smaller than the full width still pays for every lane
        // in the block, so shrink to the next multiple of 8 that covers
        // it (8 keeps the AVX-512 kernels on full-width tiles).
        let width = self
            .lane_width()
            .min(sequences.len().next_multiple_of(8))
            .max(1);
        self.classify_lanes_with_width(sequences, width)
    }

    /// Classifies many borrowed sequences by advancing `width` of them in
    /// lockstep per worker: structure-of-arrays state turns the per-item
    /// `4H×Z` gate matvec into one `4H×Z · Z×width` matrix–matrix kernel
    /// (see [`csd_tensor::lanes`]). A length-bucketing schedule
    /// ([`LaneSchedule`]) groups similar lengths, and finished lanes
    /// retire early and refill from the shard's queue, so ragged batches
    /// waste almost no lane-steps. Results are bit-identical to
    /// [`classify`](Self::classify) at every optimization level: the
    /// float path replays the serial operation order per lane, and the
    /// fixed-point path computes the exact integer semantics (falling
    /// back to the serial kernels when the weights fail the lane
    /// exactness proof or a sequence exceeds
    /// [`LANE_MAX_STEPS`]).
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, a zero width, an empty sequence, or an
    /// out-of-vocabulary token.
    pub fn classify_lanes_with_width(
        &self,
        sequences: &[&[usize]],
        width: usize,
    ) -> Vec<Classification> {
        assert!(!sequences.is_empty(), "empty batch");
        assert!(width > 0, "lane width must be at least 1");
        for seq in sequences {
            assert!(!seq.is_empty(), "empty sequence");
        }
        let fixed = self.level.is_fixed_point();
        if fixed
            && (self.core.lane_fx.is_none() || sequences.iter().any(|s| s.len() > LANE_MAX_STEPS))
        {
            return self.classify_batch_scoped(sequences);
        }
        let lengths: Vec<usize> = sequences.iter().map(|s| s.len()).collect();
        let plan = LaneSchedule::plan(&lengths, width);
        let pool = WorkerPool::global();
        let shard_count = pool.threads().min(sequences.len().div_ceil(width)).max(1);
        let shards = plan.shards(shard_count);
        let jobs: Vec<Box<dyn FnOnce() -> ShardResults + Send + '_>> = shards
            .iter()
            .map(|queue| {
                Box::new(move || self.run_lanes(queue, sequences, width))
                    as Box<dyn FnOnce() -> ShardResults + Send + '_>
            })
            .collect();
        let mut out: Vec<Option<Classification>> = vec![None; sequences.len()];
        for (index, result) in pool.scatter_scoped(jobs).into_iter().flatten() {
            out[index] = Some(result);
        }
        out.into_iter()
            .map(|slot| slot.expect("every sequence classified"))
            .collect()
    }

    /// Whether [`step_lanes`](Self::step_lanes) can serve this engine:
    /// the float levels always step; fixed point additionally needs the
    /// weights to have passed the lane exactness proof at construction.
    /// When `false`, per-timestep callers (the stream multiplexer) must
    /// classify windows through the serial path instead — which is
    /// bit-identical anyway.
    pub fn supports_lane_stepping(&self) -> bool {
        !self.level.is_fixed_point() || self.core.lane_fx.is_some()
    }

    /// Advances a lane block one timestep in lockstep: lane `l` consumes
    /// `items[l]` when `Some`, and keeps computing on its (never read)
    /// stale state when `None`. This is the iteration-level primitive
    /// behind both the offline batch engine and the continuous-batching
    /// stream multiplexer ([`crate::stream::StreamMux`]): callers own the
    /// per-lane occupancy (which sequence, which position) and the engine
    /// owns one SoA kernel sweep per call.
    ///
    /// After the final item of a lane's sequence, read its verdict with
    /// [`retire_lane`](Self::retire_lane) and zero its state with
    /// [`LaneScratch::clear_lane`] before assigning the lane a new
    /// sequence. Stepping is bit-identical to the serial path: a sequence
    /// fed item by item through a lane produces exactly the bits
    /// [`classify`](Self::classify) produces, at every optimization
    /// level, regardless of what the other lanes are doing.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-vocabulary item, when `items.len()` differs
    /// from the scratch width, when the scratch was sized for different
    /// model dimensions, or on a fixed-point engine whose weights failed
    /// the lane exactness proof (check
    /// [`supports_lane_stepping`](Self::supports_lane_stepping)).
    pub fn step_lanes(&self, scratch: &mut LaneScratch, items: &[Option<usize>]) {
        let width = scratch.width();
        assert_eq!(items.len(), width, "one item slot per lane");
        assert_eq!(
            scratch.z.len(),
            self.core.weights.dims().z() * width,
            "scratch sized for different model dimensions"
        );
        if self.level.is_fixed_point() {
            let pack = self
                .core
                .lane_fx
                .as_ref()
                .expect("weights failed the lane exactness proof; see supports_lane_stepping");
            self.step_lanes_fx(pack, scratch, items);
        } else {
            self.step_lanes_f64(scratch, items);
        }
    }

    /// Applies the FC head to lane `lane`'s current hidden-state column,
    /// returning the classification of the sequence that lane just
    /// finished. Call exactly once per sequence, after
    /// [`step_lanes`](Self::step_lanes) consumed its final item.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is outside the scratch width.
    pub fn retire_lane(&self, scratch: &LaneScratch, lane: usize) -> Classification {
        let w = &self.core.weights;
        let hdim = w.dims().hidden;
        let width = scratch.width();
        assert!(lane < width, "lane {lane} out of range for width {width}");
        let probability = if self.level.is_fixed_point() {
            let mut h: Vector<Fx6> = Vector::zeros(hdim);
            for r in 0..hdim {
                h[r] = Fx6::from_raw(scratch.z[r * width + lane] as i64);
            }
            hidden::classify_fx(&h, &w.fc_w_fx, w.fc_b_fx).to_f64()
        } else {
            let mut h: Vector<f64> = Vector::zeros(hdim);
            for r in 0..hdim {
                h[r] = scratch.z[r * width + lane];
            }
            hidden::classify_f64(&h, &w.fc_w_f64, w.fc_b_f64)
        };
        Classification {
            probability,
            is_positive: probability >= 0.5,
        }
    }

    /// One fixed-point lockstep timestep, then the full SoA kernel
    /// sweep. Lanes passed `None` keep computing — their state stays
    /// inside every kernel's proven exactness range and is never read.
    ///
    /// With the input-gate table on (the default), a consuming lane just
    /// records its item index: the table matmul initializes that lane's
    /// accumulators from the precomputed `W_x·e(item) + b·SCALE` row,
    /// runs only the `H` recurrent columns, and rescales in its store
    /// epilogue — deleting the embedding gather, the `E` input columns,
    /// and the separate rescale pass. Idle lanes keep item 0, whose
    /// table row is proof-bounded like any other, so their (never read)
    /// state stays exact. The unfolded path gathers the embedding
    /// columns and runs the full `Z`-column matmul; both are exact
    /// integer reassociation, hence bit-identical.
    fn step_lanes_fx(&self, pack: &LaneGatesFx, s: &mut LaneScratch, items: &[Option<usize>]) {
        let w = &self.core.weights;
        let dims = w.dims();
        let (hdim, edim, zdim) = (dims.hidden, dims.embed, dims.z());
        let vocab = w.embedding_fx.rows();
        let width = s.width();
        let hw = hdim * width;
        if self.use_gate_table {
            for (l, slot) in items.iter().enumerate() {
                if let Some(item) = *slot {
                    assert!(item < vocab, "item {item} out of vocabulary");
                    s.item[l] = item;
                }
            }
            lanes::matmul_fx_lanes_table(
                pack.w_hidden(),
                4 * hdim,
                hdim,
                &s.z[..hw],
                width,
                pack.gate_table(),
                &s.item,
                &mut s.g,
            );
        } else {
            for (l, slot) in items.iter().enumerate() {
                if let Some(item) = *slot {
                    assert!(item < vocab, "item {item} out of vocabulary");
                    let row = &pack.embedding()[item * edim..(item + 1) * edim];
                    for (e, &v) in row.iter().enumerate() {
                        s.z[(hdim + e) * width + l] = v;
                    }
                }
            }
            lanes::matmul_fx_lanes(
                pack.weights(),
                4 * hdim,
                zdim,
                &s.z,
                width,
                pack.bias_scaled(),
                &mut s.g,
            );
            lanes::rescale_lanes(&mut s.g);
        }
        // Separate compact activation passes beat a fused
        // rescale+activate kernel on this data: the gate block is
        // L1-resident, so re-reading it is nearly free, while the small
        // loop bodies pipeline better. (The table matmul's in-register
        // rescale epilogue is the exception — it reuses values already
        // in accumulators, costing no extra pass at all.)
        lanes::sigmoid_lut_lanes(&mut s.g[..2 * hw]);
        lanes::softsign_lanes(&mut s.g[2 * hw..3 * hw]);
        lanes::sigmoid_lut_lanes(&mut s.g[3 * hw..]);
        let (c, zh) = (&mut s.c, &mut s.z[..hw]);
        lanes::update_lanes(&s.g, hdim, width, c, zh);
    }

    /// Float twin of [`step_lanes_fx`](Self::step_lanes_fx): each
    /// elementwise step written exactly as the serial fused path computes
    /// it (same operations, same order, per lane), so IEEE determinism
    /// makes the results bit-identical.
    fn step_lanes_f64(&self, s: &mut LaneScratch, items: &[Option<usize>]) {
        let core = &self.core;
        let w = &core.weights;
        let dims = w.dims();
        let (hdim, zdim) = (dims.hidden, dims.z());
        let wflat = core.fused_f64.w.as_flat();
        let bias = core.fused_f64.b.as_slice();
        let width = s.width();
        let hw = hdim * width;
        for (l, slot) in items.iter().enumerate() {
            if let Some(item) = *slot {
                assert!(
                    item < w.embedding_f64.rows(),
                    "item {item} out of vocabulary"
                );
                let row = w.embedding_f64.row(item);
                for (e, &v) in row.iter().enumerate() {
                    s.z[(hdim + e) * width + l] = v;
                }
            }
        }
        lanes::matmul_f64_lanes(wflat, 4 * hdim, zdim, &s.z, width, &mut s.g, &mut s.acc);
        for (r, &b) in bias.iter().enumerate() {
            for v in &mut s.g[r * width..(r + 1) * width] {
                *v += b;
            }
        }
        for (g, block) in s.g.chunks_exact_mut(hw).enumerate() {
            if GateKind::ALL[g].is_candidate() {
                for v in block {
                    *v /= 1.0 + v.abs();
                }
            } else {
                for v in block {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
        }
        let (i_g, rest) = s.g.split_at(hw);
        let (f_g, rest) = rest.split_at(hw);
        let (cbar, o_g) = rest.split_at(hw);
        let zh = &mut s.z[..hw];
        for j in 0..hw {
            let ct = f_g[j] * s.c[j] + i_g[j] * cbar[j];
            s.c[j] = ct;
            zh[j] = o_g[j] * (ct / (1.0 + ct.abs()));
        }
    }

    /// Runs one worker's queue of sequences through a lane block: `width`
    /// lanes advance in lockstep via [`step_lanes`](Self::step_lanes),
    /// each holding one in-flight sequence; a finished lane retires
    /// ([`retire_lane`](Self::retire_lane)) and immediately refills from
    /// the queue.
    fn run_lanes(&self, queue: &[usize], sequences: &[&[usize]], width: usize) -> ShardResults {
        let mut s = LaneScratch::new(self.core.weights.dims(), width);
        // Per-lane occupancy: `(sequence index, next position)`.
        let mut slots: Vec<Option<(usize, usize)>> = vec![None; width];
        let mut items: Vec<Option<usize>> = vec![None; width];
        let mut out = Vec::with_capacity(queue.len());
        let mut next = 0usize;
        let mut active = 0usize;
        for slot in slots.iter_mut() {
            if next < queue.len() {
                *slot = Some((queue[next], 0));
                next += 1;
                active += 1;
            }
        }
        while active > 0 {
            for (item, slot) in items.iter_mut().zip(slots.iter()) {
                *item = slot.map(|(si, pos)| sequences[si][pos]);
            }
            self.step_lanes(&mut s, &items);
            for (l, slot) in slots.iter_mut().enumerate() {
                let Some((si, pos)) = *slot else { continue };
                if pos + 1 < sequences[si].len() {
                    *slot = Some((si, pos + 1));
                    continue;
                }
                out.push((si, self.retire_lane(&s, l)));
                s.clear_lane(l);
                if next < queue.len() {
                    *slot = Some((queue[next], 0));
                    next += 1;
                } else {
                    *slot = None;
                    active -= 1;
                }
            }
        }
        out
    }

    /// The final hidden state in f64 (for parity tests against the
    /// offline model).
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn final_hidden_f64(&self, seq: &[usize]) -> Vec<f64> {
        assert!(!seq.is_empty(), "empty sequence");
        let mut scratch = self.make_scratch();
        if self.level.is_fixed_point() {
            self.run_states_fx(seq, &mut scratch.fx_buffers);
            scratch.fx_buffers.h.to_f64_vec()
        } else {
            self.run_states_f64(seq, &mut scratch.f64_buffers);
            scratch.f64_buffers.h.to_f64_vec()
        }
    }

    /// Walks the sequence updating `(C, h)` in `s`; leaves the final
    /// states in `s.c` / `s.h`.
    fn run_states_f64(&self, seq: &[usize], s: &mut InferenceScratch<f64>) {
        let core = &self.core;
        s.reset();
        match self.path {
            GatePath::Fused => {
                let hdim = core.weights.dims().hidden;
                for &item in seq {
                    preprocess::run_into(&core.weights.embedding_f64, item, &mut s.x);
                    s.h.concat_into(&s.x, &mut s.z);
                    core.fused_f64.w.matvec_into(&s.z, &mut s.g);
                    s.g.add_assign(&core.fused_f64.b);
                    gates::activate_fused_f64(&mut s.g, hdim);
                    hidden::update_fused_f64(&s.g, &mut s.c, &mut s.h);
                }
            }
            GatePath::PerCuSerial | GatePath::PerCuParallel => {
                for &item in seq {
                    let x = preprocess::run_f64(&core.weights.embedding_f64, item);
                    // §III-C: each CU receives its own copies of x_t, h_{t−1}.
                    let xs = preprocess::fanout(&x);
                    let hs = hidden::fanout_h(&s.h);
                    let g = self.run_gate_cus_f64(&hs, &xs);
                    let (c_next, h_next) = hidden::run_f64(&g[0], &g[1], &g[3], &g[2], &s.c);
                    s.c = c_next;
                    s.h = h_next;
                }
            }
        }
    }

    fn run_gate_cus_f64(&self, hs: &[Vector<f64>; 4], xs: &[Vector<f64>; 4]) -> [Vector<f64>; 4] {
        if self.path == GatePath::PerCuParallel {
            let jobs: Vec<Box<dyn FnOnce() -> Vector<f64> + Send>> = GateKind::ALL
                .iter()
                .enumerate()
                .map(|(slot, &kind)| {
                    let core = Arc::clone(&self.core);
                    let h = hs[slot].clone();
                    let x = xs[slot].clone();
                    Box::new(move || {
                        gates::run_f64(
                            kind,
                            &core.weights.gate_w_f64[kind.index()],
                            &core.weights.gate_b_f64[kind.index()],
                            &h,
                            &x,
                        )
                    }) as Box<dyn FnOnce() -> Vector<f64> + Send>
                })
                .collect();
            let mut out = WorkerPool::global().scatter(jobs).into_iter();
            std::array::from_fn(|_| out.next().expect("four gate CUs"))
        } else {
            let w = &self.core.weights;
            std::array::from_fn(|slot| {
                let kind = GateKind::ALL[slot];
                gates::run_f64(
                    kind,
                    &w.gate_w_f64[kind.index()],
                    &w.gate_b_f64[kind.index()],
                    &hs[slot],
                    &xs[slot],
                )
            })
        }
    }

    fn run_states_fx(&self, seq: &[usize], s: &mut InferenceScratch<Fx6>) {
        let core = &self.core;
        s.reset();
        match self.path {
            GatePath::Fused => {
                let hdim = core.weights.dims().hidden;
                // The input-gate table serves the serial path too: one
                // precomputed row replaces the embedding copy, the
                // `[h|x]` concat, the `E` input columns of the matvec,
                // and the bias add. Falls back per-item to the unfolded
                // path when the input leaves the narrow-MAC range.
                let table = match (&core.lane_fx, &core.packed_fx) {
                    (Some(lane), Some(packed)) if self.use_gate_table => Some((lane, packed)),
                    _ => None,
                };
                for &item in seq {
                    let table_ok = table.is_some_and(|(lane, packed)| {
                        assert!(item < lane.vocab(), "item {item} out of vocabulary");
                        packed.matvec_table_into(
                            lane.table_row_i64(item),
                            s.h.as_slice(),
                            s.g.as_mut_slice(),
                        )
                    });
                    if !table_ok {
                        preprocess::run_into(&core.weights.embedding_fx, item, &mut s.x);
                        s.h.concat_into(&s.x, &mut s.z);
                        let narrow_ok = core.packed_fx.as_ref().is_some_and(|p| {
                            p.matvec_into(s.z.as_slice(), &mut s.narrow_z, s.g.as_mut_slice())
                        });
                        if !narrow_ok {
                            core.fused_fx.w.matvec_into(&s.z, &mut s.g);
                        }
                        s.g.add_assign(&core.fused_fx.b);
                    }
                    gates::activate_fused_fx(&mut s.g, hdim);
                    hidden::update_fused_fx(&s.g, &mut s.c, &mut s.h);
                }
            }
            GatePath::PerCuSerial | GatePath::PerCuParallel => {
                for &item in seq {
                    let x = preprocess::run_fx(&core.weights.embedding_fx, item);
                    let xs = preprocess::fanout(&x);
                    let hs = hidden::fanout_h(&s.h);
                    let g = self.run_gate_cus_fx(&hs, &xs);
                    let (c_next, h_next) = hidden::run_fx(&g[0], &g[1], &g[3], &g[2], &s.c);
                    s.c = c_next;
                    s.h = h_next;
                }
            }
        }
    }

    fn run_gate_cus_fx(&self, hs: &[Vector<Fx6>; 4], xs: &[Vector<Fx6>; 4]) -> [Vector<Fx6>; 4] {
        if self.path == GatePath::PerCuParallel {
            let jobs: Vec<Box<dyn FnOnce() -> Vector<Fx6> + Send>> = GateKind::ALL
                .iter()
                .enumerate()
                .map(|(slot, &kind)| {
                    let core = Arc::clone(&self.core);
                    let h = hs[slot].clone();
                    let x = xs[slot].clone();
                    Box::new(move || {
                        gates::run_fx(
                            kind,
                            &core.weights.gate_w_fx[kind.index()],
                            &core.weights.gate_b_fx[kind.index()],
                            &h,
                            &x,
                        )
                    }) as Box<dyn FnOnce() -> Vector<Fx6> + Send>
                })
                .collect();
            let mut out = WorkerPool::global().scatter(jobs).into_iter();
            std::array::from_fn(|_| out.next().expect("four gate CUs"))
        } else {
            let w = &self.core.weights;
            std::array::from_fn(|slot| {
                let kind = GateKind::ALL[slot];
                gates::run_fx(
                    kind,
                    &w.gate_w_fx[kind.index()],
                    &w.gate_b_fx[kind.index()],
                    &hs[slot],
                    &xs[slot],
                )
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_nn::{ModelConfig, SequenceClassifier};

    fn model() -> SequenceClassifier {
        SequenceClassifier::new(ModelConfig::paper(), 21)
    }

    fn seq(n: usize) -> Vec<usize> {
        (0..n).map(|i| (i * 37 + 11) % 278).collect()
    }

    #[test]
    fn lane_width_heuristic_for_paper_dims() {
        // (4·32 + 40 + 32)·8 = 1600 B/lane → 20 lanes fit 32 KiB →
        // round down to the multiple of 8: two full AVX-512 vectors.
        // (Holds unless CSD_LANE_WIDTH overrides, which tests don't set.)
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::FixedPoint);
        assert_eq!(engine.lane_width(), 16);
    }

    #[test]
    fn classify_lanes_matches_serial_on_mixed_lengths() {
        let m = model();
        let w = ModelWeights::from_model(&m);
        for level in OptimizationLevel::ALL {
            let engine = CsdInferenceEngine::new(&w, level);
            let batch: Vec<Vec<usize>> = [31usize, 1, 100, 7, 55].iter().map(|&n| seq(n)).collect();
            let refs: Vec<&[usize]> = batch.iter().map(Vec::as_slice).collect();
            let serial: Vec<_> = batch.iter().map(|s| engine.classify(s)).collect();
            assert_eq!(engine.classify_lanes(&refs), serial, "{level}");
            assert_eq!(engine.classify_batch_refs(&refs), serial, "{level}");
        }
    }

    #[test]
    fn gate_table_on_and_off_are_bit_identical() {
        // The tentpole contract: the precomputed input-gate table is
        // exact integer reassociation, so folding it in changes no bit
        // on either the serial or the lane path.
        let m = model();
        let w = ModelWeights::from_model(&m);
        let on = CsdInferenceEngine::new(&w, OptimizationLevel::FixedPoint).with_gate_table(true);
        let off = CsdInferenceEngine::new(&w, OptimizationLevel::FixedPoint).with_gate_table(false);
        assert!(on.gate_table_enabled());
        assert!(!off.gate_table_enabled());
        let batch: Vec<Vec<usize>> = [1usize, 7, 40, 100, 277].iter().map(|&n| seq(n)).collect();
        let refs: Vec<&[usize]> = batch.iter().map(Vec::as_slice).collect();
        for s in &batch {
            assert_eq!(on.classify(s), off.classify(s), "serial len {}", s.len());
        }
        assert_eq!(on.classify_lanes(&refs), off.classify_lanes(&refs));
        // The per-CU path never uses the table: an independent anchor.
        let per_cu = CsdInferenceEngine::new(&w, OptimizationLevel::FixedPoint)
            .with_gate_path(GatePath::PerCuSerial);
        assert_eq!(on.classify(&batch[2]), per_cu.classify(&batch[2]));
    }

    #[test]
    fn mac_i16_declines_the_paper_scale_model() {
        // The fallback contract: at decimal scale 10^6 the recurrent
        // |h| ≤ 1 columns are raw 10^6 ≫ 32767, so the i16 repack must
        // decline and the engine serve the f64-FMA/i32 paths — which
        // the parity tests above exercise on every classify call.
        let m = model();
        let w = ModelWeights::from_model(&m);
        let engine = CsdInferenceEngine::new(&w, OptimizationLevel::FixedPoint);
        assert!(!engine.mac_i16_active());
        // Lanes still step (f64 path), verdicts still bit-identical.
        assert!(engine.supports_lane_stepping());
    }

    #[test]
    fn float_engine_matches_offline_model_exactly() {
        let m = model();
        let w = ModelWeights::from_model(&m);
        for level in [OptimizationLevel::Vanilla, OptimizationLevel::IiOptimized] {
            let engine = CsdInferenceEngine::new(&w, level);
            let s = seq(50);
            assert!(
                (engine.classify(&s).probability - m.predict_proba(&s)).abs() < 1e-9,
                "{level}"
            );
        }
    }

    #[test]
    fn fixed_engine_tracks_offline_model() {
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::FixedPoint);
        for n in [1, 10, 100] {
            let s = seq(n);
            let p_fx = engine.classify(&s).probability;
            let p_f64 = m.predict_proba(&s);
            assert!(
                (p_fx - p_f64).abs() < 0.02,
                "len {n}: fixed {p_fx} vs f64 {p_f64}"
            );
        }
    }

    #[test]
    fn hidden_state_parity_within_quantization_drift() {
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::FixedPoint);
        let s = seq(100);
        let h_fx = engine.final_hidden_f64(&s);
        let h_f64 = m.final_hidden(&s);
        for (a, b) in h_fx.iter().zip(h_f64.iter()) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn all_gate_paths_identical() {
        let m = model();
        let w = ModelWeights::from_model(&m);
        let s = seq(40);
        for level in OptimizationLevel::ALL {
            let fused = CsdInferenceEngine::new(&w, level).classify(&s);
            let per_cu = CsdInferenceEngine::new(&w, level)
                .with_gate_path(GatePath::PerCuSerial)
                .classify(&s);
            let parallel = CsdInferenceEngine::new(&w, level)
                .with_parallel_cus(true)
                .classify(&s);
            assert_eq!(fused, per_cu, "{level}");
            assert_eq!(fused, parallel, "{level}");
        }
    }

    #[test]
    fn parallel_cus_identical_to_serial() {
        let m = model();
        let w = ModelWeights::from_model(&m);
        let s = seq(40);
        for level in OptimizationLevel::ALL {
            let serial = CsdInferenceEngine::new(&w, level).classify(&s);
            let parallel = CsdInferenceEngine::new(&w, level)
                .with_parallel_cus(true)
                .classify(&s);
            assert_eq!(serial, parallel, "{level}");
        }
    }

    #[test]
    fn batch_matches_serial_classification() {
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::FixedPoint);
        let batch: Vec<Vec<usize>> = (0..13)
            .map(|k| (0..60).map(|i| (i * 11 + k * 3) % 278).collect())
            .collect();
        let parallel = engine.classify_batch(&batch);
        for (seq, got) in batch.iter().zip(&parallel) {
            assert_eq!(*got, engine.classify(seq));
        }
        assert_eq!(parallel.len(), 13);
    }

    #[test]
    fn batch_of_one_sequence() {
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::FixedPoint);
        let batch = vec![seq(25)];
        let got = engine.classify_batch(&batch);
        assert_eq!(got, vec![engine.classify(&batch[0])]);
    }

    #[test]
    fn batch_of_pool_threads_plus_one() {
        // One more sequence than workers: ceil-division chunking must
        // cover every sequence with no empty trailing chunk.
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::Vanilla);
        let n = WorkerPool::global().threads() + 1;
        let batch: Vec<Vec<usize>> = (0..n)
            .map(|k| (0..12).map(|i| (i * 7 + k) % 278).collect())
            .collect();
        let got = engine.classify_batch(&batch);
        assert_eq!(got.len(), n);
        for (seq, res) in batch.iter().zip(&got) {
            assert_eq!(*res, engine.classify(seq));
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::FixedPoint);
        let mut scratch = engine.make_scratch();
        for n in [1, 5, 40, 3] {
            let s = seq(n);
            assert_eq!(
                engine.classify_with_scratch(&s, &mut scratch),
                engine.classify(&s),
                "len {n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::Vanilla);
        let _ = engine.classify_batch(&[]);
    }

    #[test]
    fn decision_threshold() {
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::FixedPoint);
        let c = engine.classify(&seq(30));
        assert_eq!(c.is_positive, c.probability >= 0.5);
    }

    #[test]
    fn tier_report_reflects_the_packed_tiers_and_the_cascade() {
        let m = model();
        let w = ModelWeights::from_model(&m);
        let engine = CsdInferenceEngine::new(&w, OptimizationLevel::FixedPoint);
        let report = engine.tier_report();
        // The paper-scale model: i16 honestly declines, i32/lane take.
        assert!(!report.mac_i16_exact);
        assert!(report.mac_i32_narrow);
        assert!(report.lane_table);
        assert!(report.gate_table_enabled);
        assert!(report.screen.is_none());
        assert!(crate::weights::i16_decline_count() >= 1, "decline counted");

        let windows: Vec<Vec<usize>> = (0..8).map(|k| seq(10 + k * 7)).collect();
        let exact = |s: &[usize]| engine.classify(s).is_positive;
        let (tier, _, _) =
            crate::cascade::build_cascade(&w, 4, 0.02, &windows, exact).expect("builds");
        let engine = engine.with_cascade(tier);
        let screen = engine.tier_report().screen.expect("screen tier mounted");
        assert_eq!(screen.scale, 10_000);
        assert!(screen.band_lo <= screen.band_hi + 1);
    }

    #[test]
    fn cascade_classification_never_flips_and_escalation_is_exact() {
        let m = model();
        let w = ModelWeights::from_model(&m);
        let exact_engine = CsdInferenceEngine::new(&w, OptimizationLevel::FixedPoint);
        let windows: Vec<Vec<usize>> = (0..12).map(|k| seq(5 + k * 11)).collect();
        let exact = |s: &[usize]| exact_engine.classify(s).is_positive;
        let (tier, report, _) =
            crate::cascade::build_cascade(&w, 4, 0.02, &windows, exact).expect("builds");
        assert_eq!(report.windows, windows.len());
        let engine = exact_engine.clone().with_cascade(tier);
        for s in &windows {
            let (verdict, escalated) = engine.classify_cascade(s);
            let reference = exact_engine.classify(s);
            assert_eq!(verdict.is_positive, reference.is_positive, "verdict flip");
            if escalated {
                assert_eq!(verdict, reference, "escalated window must be bit-identical");
            }
        }
        // Without a cascade, everything escalates to the exact bits.
        let (verdict, escalated) = exact_engine.classify_cascade(&windows[0]);
        assert!(escalated);
        assert_eq!(verdict, exact_engine.classify(&windows[0]));
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_rejected() {
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::Vanilla);
        let _ = engine.classify(&[]);
    }
}
