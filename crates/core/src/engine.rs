//! The end-to-end CSD inference engine.
//!
//! [`CsdInferenceEngine`] executes the five-kernel design functionally:
//! per sequence item, `kernel_preprocess` produces the embedding, the four
//! `kernel_gates` CUs compute their gates (optionally on real parallel
//! threads, mirroring the hardware CUs), and `kernel_hidden_state` folds
//! them into `(C_t, h_t)`; after the last item the FC head emits the
//! classification — all in f64 for the float levels or in 10^6-scaled
//! fixed point for [`OptimizationLevel::FixedPoint`].

use csd_fxp::Fx6;
use csd_nn::ModelWeights;
use csd_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::kernels::{gates, hidden, preprocess, GateKind};
use crate::opt::OptimizationLevel;
use crate::weights::QuantizedWeights;

/// The outcome of classifying one sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Classification {
    /// `P(positive | sequence)` — ransomware probability in the use case.
    pub probability: f64,
    /// Hard decision at threshold 0.5.
    pub is_positive: bool,
}

/// The CSD-resident classifier.
#[derive(Debug, Clone)]
pub struct CsdInferenceEngine {
    weights: QuantizedWeights,
    level: OptimizationLevel,
    parallel_cus: bool,
}

impl CsdInferenceEngine {
    /// Builds an engine from exported model weights at the given
    /// optimization level.
    ///
    /// # Panics
    ///
    /// Panics if the weight arrays are inconsistent with their config.
    pub fn new(weights: &ModelWeights, level: OptimizationLevel) -> Self {
        Self {
            weights: QuantizedWeights::from_model_weights(weights),
            level,
            parallel_cus: false,
        }
    }

    /// Runs the four gate CUs on real OS threads, mirroring the parallel
    /// hardware CUs (§III-C). Functionally identical to the serial path.
    pub fn with_parallel_cus(mut self, parallel: bool) -> Self {
        self.parallel_cus = parallel;
        self
    }

    /// The optimization level the engine executes at.
    pub fn level(&self) -> OptimizationLevel {
        self.level
    }

    /// The ingested (and quantized) weights.
    pub fn weights(&self) -> &QuantizedWeights {
        &self.weights
    }

    /// Classifies one sequence.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn classify(&self, seq: &[usize]) -> Classification {
        assert!(!seq.is_empty(), "empty sequence");
        let probability = if self.level.is_fixed_point() {
            self.forward_fx(seq)
        } else {
            self.forward_f64(seq)
        };
        Classification {
            probability,
            is_positive: probability >= 0.5,
        }
    }

    /// Classifies many sequences, fanning them across worker threads —
    /// the data-center background-scanning workload (§I: "execute the
    /// classifier continuously in the background"). Results are returned
    /// in input order.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch, an empty sequence, or an
    /// out-of-vocabulary token.
    pub fn classify_batch(&self, sequences: &[Vec<usize>]) -> Vec<Classification> {
        assert!(!sequences.is_empty(), "empty batch");
        let threads = std::thread::available_parallelism()
            .map_or(4, |n| n.get())
            .min(sequences.len());
        let chunk = sequences.len().div_ceil(threads);
        let mut out = Vec::with_capacity(sequences.len());
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = sequences
                .chunks(chunk)
                .map(|batch| {
                    s.spawn(move |_| {
                        batch
                            .iter()
                            .map(|seq| self.classify(seq))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("batch worker panicked"));
            }
        })
        .expect("batch scope");
        out
    }

    /// The final hidden state in f64 (for parity tests against the
    /// offline model).
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn final_hidden_f64(&self, seq: &[usize]) -> Vec<f64> {
        assert!(!seq.is_empty(), "empty sequence");
        if self.level.is_fixed_point() {
            let (_, h) = self.run_fx_states(seq);
            h.to_f64_vec()
        } else {
            let (_, h) = self.run_f64_states(seq);
            h.to_f64_vec()
        }
    }

    fn forward_f64(&self, seq: &[usize]) -> f64 {
        let (_, h) = self.run_f64_states(seq);
        hidden::classify_f64(&h, &self.weights.fc_w_f64, self.weights.fc_b_f64)
    }

    fn run_f64_states(&self, seq: &[usize]) -> (Vector<f64>, Vector<f64>) {
        let hdim = self.weights.dims().hidden;
        let mut c = Vector::zeros(hdim);
        let mut h = Vector::zeros(hdim);
        for &item in seq {
            let x = preprocess::run_f64(&self.weights.embedding_f64, item);
            // §III-C: each CU receives its own copies of x_t and h_{t−1}.
            let xs = preprocess::fanout(&x);
            let hs = hidden::fanout_h(&h);
            let g = self.run_gate_cus_f64(&hs, &xs);
            let (c_next, h_next) = hidden::run_f64(&g[0], &g[1], &g[3], &g[2], &c);
            c = c_next;
            h = h_next;
        }
        (c, h)
    }

    fn run_gate_cus_f64(&self, hs: &[Vector<f64>; 4], xs: &[Vector<f64>; 4]) -> [Vector<f64>; 4] {
        let w = &self.weights;
        let cu = |kind: GateKind, slot: usize| {
            gates::run_f64(
                kind,
                &w.gate_w_f64[kind.index()],
                &w.gate_b_f64[kind.index()],
                &hs[slot],
                &xs[slot],
            )
        };
        if self.parallel_cus {
            let mut out: [Option<Vector<f64>>; 4] = [None, None, None, None];
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = GateKind::ALL
                    .iter()
                    .enumerate()
                    .map(|(slot, &kind)| s.spawn(move |_| cu(kind, slot)))
                    .collect();
                for (slot, hdl) in handles.into_iter().enumerate() {
                    out[slot] = Some(hdl.join().expect("gate CU panicked"));
                }
            })
            .expect("CU scope");
            out.map(|v| v.expect("all CUs ran"))
        } else {
            std::array::from_fn(|slot| cu(GateKind::ALL[slot], slot))
        }
    }

    fn forward_fx(&self, seq: &[usize]) -> f64 {
        let (_, h) = self.run_fx_states(seq);
        hidden::classify_fx(&h, &self.weights.fc_w_fx, self.weights.fc_b_fx).to_f64()
    }

    fn run_fx_states(&self, seq: &[usize]) -> (Vector<Fx6>, Vector<Fx6>) {
        let hdim = self.weights.dims().hidden;
        let mut c: Vector<Fx6> = Vector::zeros(hdim);
        let mut h: Vector<Fx6> = Vector::zeros(hdim);
        for &item in seq {
            let x = preprocess::run_fx(&self.weights.embedding_fx, item);
            let xs = preprocess::fanout(&x);
            let hs = hidden::fanout_h(&h);
            let w = &self.weights;
            let cu = |kind: GateKind, slot: usize| {
                gates::run_fx(
                    kind,
                    &w.gate_w_fx[kind.index()],
                    &w.gate_b_fx[kind.index()],
                    &hs[slot],
                    &xs[slot],
                )
            };
            let g: [Vector<Fx6>; 4] = if self.parallel_cus {
                let mut out: [Option<Vector<Fx6>>; 4] = [None, None, None, None];
                crossbeam::thread::scope(|s| {
                    let handles: Vec<_> = GateKind::ALL
                        .iter()
                        .enumerate()
                        .map(|(slot, &kind)| s.spawn(move |_| cu(kind, slot)))
                        .collect();
                    for (slot, hdl) in handles.into_iter().enumerate() {
                        out[slot] = Some(hdl.join().expect("gate CU panicked"));
                    }
                })
                .expect("CU scope");
                out.map(|v| v.expect("all CUs ran"))
            } else {
                std::array::from_fn(|slot| cu(GateKind::ALL[slot], slot))
            };
            let (c_next, h_next) = hidden::run_fx(&g[0], &g[1], &g[3], &g[2], &c);
            c = c_next;
            h = h_next;
        }
        (c, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_nn::{ModelConfig, SequenceClassifier};

    fn model() -> SequenceClassifier {
        SequenceClassifier::new(ModelConfig::paper(), 21)
    }

    fn seq(n: usize) -> Vec<usize> {
        (0..n).map(|i| (i * 37 + 11) % 278).collect()
    }

    #[test]
    fn float_engine_matches_offline_model_exactly() {
        let m = model();
        let w = ModelWeights::from_model(&m);
        for level in [OptimizationLevel::Vanilla, OptimizationLevel::IiOptimized] {
            let engine = CsdInferenceEngine::new(&w, level);
            let s = seq(50);
            assert!(
                (engine.classify(&s).probability - m.predict_proba(&s)).abs() < 1e-9,
                "{level}"
            );
        }
    }

    #[test]
    fn fixed_engine_tracks_offline_model() {
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::FixedPoint);
        for n in [1, 10, 100] {
            let s = seq(n);
            let p_fx = engine.classify(&s).probability;
            let p_f64 = m.predict_proba(&s);
            assert!(
                (p_fx - p_f64).abs() < 0.02,
                "len {n}: fixed {p_fx} vs f64 {p_f64}"
            );
        }
    }

    #[test]
    fn hidden_state_parity_within_quantization_drift() {
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::FixedPoint);
        let s = seq(100);
        let h_fx = engine.final_hidden_f64(&s);
        let h_f64 = m.final_hidden(&s);
        for (a, b) in h_fx.iter().zip(h_f64.iter()) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn parallel_cus_identical_to_serial() {
        let m = model();
        let w = ModelWeights::from_model(&m);
        let s = seq(40);
        for level in OptimizationLevel::ALL {
            let serial = CsdInferenceEngine::new(&w, level).classify(&s);
            let parallel = CsdInferenceEngine::new(&w, level)
                .with_parallel_cus(true)
                .classify(&s);
            assert_eq!(serial, parallel, "{level}");
        }
    }

    #[test]
    fn batch_matches_serial_classification() {
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::FixedPoint);
        let batch: Vec<Vec<usize>> = (0..13)
            .map(|k| (0..60).map(|i| (i * 11 + k * 3) % 278).collect())
            .collect();
        let parallel = engine.classify_batch(&batch);
        for (seq, got) in batch.iter().zip(&parallel) {
            assert_eq!(*got, engine.classify(seq));
        }
        assert_eq!(parallel.len(), 13);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::Vanilla);
        let _ = engine.classify_batch(&[]);
    }

    #[test]
    fn decision_threshold() {
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::FixedPoint);
        let c = engine.classify(&seq(30));
        assert_eq!(c.is_positive, c.probability >= 0.5);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_rejected() {
        let m = model();
        let engine =
            CsdInferenceEngine::new(&ModelWeights::from_model(&m), OptimizationLevel::Vanilla);
        let _ = engine.classify(&[]);
    }
}
