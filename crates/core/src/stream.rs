//! Continuous-batching stream multiplexer: fleet-scale online
//! classification at lane throughput.
//!
//! The paper's deployment is *continuous* monitoring of many concurrent
//! API-call streams (§I "execute the classifier continuously in the
//! background"; §II's data-center host runs thousands of processes). The
//! serial [`StreamMonitor`](crate::monitor::StreamMonitor) classifies one
//! full window per completed stride — fine for one stream, but a fleet of
//! processes turns that into thousands of independent serial `classify`
//! calls, leaving the lane-batched SoA kernels idle exactly where the
//! workload is most batchable.
//!
//! [`StreamMux`] closes that gap with *iteration-level* (continuous)
//! batching, the scheduling idea behind Orca-style LLM serving applied to
//! LSTM windows: a fixed block of `W` lane slots advances all in-flight
//! windows one timestep per [`tick`](StreamMux::tick) through
//! [`CsdInferenceEngine::step_lanes`]; a window that consumes its last
//! item retires within the tick ([`CsdInferenceEngine::retire_lane`] — the
//! FC head), and its slot is refilled from the pending queue *in the same
//! tick*, so slots never idle waiting for a batch barrier. Admission is
//! FIFO; a bounded pending queue applies backpressure with a configurable
//! drop policy. Every verdict is bit-identical to serial
//! [`classify`](crate::engine::CsdInferenceEngine::classify) of the same
//! window — the lane-stepping contract — so going online changes nothing
//! observable except throughput.
//!
//! [`FleetMonitor`] stacks the per-process monitor semantics (rolling
//! window, stride, k-of-n vote debouncing, alert latching — exactly
//! [`StreamMonitor`](crate::monitor::StreamMonitor)'s) on top of the mux:
//! `observe` only appends to per-process rolling windows and enqueues
//! completed windows; `poll`/`drain` run mux ticks and fold retired
//! verdicts back into per-process vote state, emitting [`Alert`]s.
//!
//! # Two-tier cascade
//!
//! With `CSD_CASCADE` on (or [`StreamMuxConfig::cascade`] set) *and* a
//! [`CascadeTier`] mounted on the engine, the mux runs two lane blocks
//! per tick. Pending windows are admitted to the *screen* block first —
//! the quantized `i16` model advancing in bulk through
//! [`ScreenGates::step_lanes`](crate::cascade::ScreenGates::step_lanes).
//! A retiring screen lane consults the calibrated
//! [`CascadeBand`](crate::cascade::CascadeBand): outside the band the
//! screen's verdict is emitted directly; inside it the window re-enters
//! the *exact* lane scheduler (pos reset, same latency clock) and
//! retires through the usual bit-exact path. Every serial fallback
//! (overlong windows, the low-occupancy drain shortcut, degraded-mode
//! reruns) applies the same screen-then-maybe-escalate rule, so a
//! window's verdict is a pure function of its contents — identical at
//! every shard count and on every fallback route. With cascade off the
//! mux is byte-for-byte the single-tier machine: the parity anchor.
//!
//! Two contract changes while screening, both visible and deliberate:
//! screen-resolved verdicts report the screen probability
//! (`score/scale`, not the exact path's bits), and a standalone mux's
//! retirement order interleaves the two blocks (the sharded mux still
//! delivers per-stream submission order). [`CascadeMode::Verify`]
//! shadow-classifies every screen-resolved window on the exact path and
//! counts disagreements in [`MuxStats::cascade_flips`] — the production
//! mode's zero-flip claim, measurable in place.

#![deny(clippy::unwrap_used)]

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Once};
use std::time::Instant;

use csd_device::FaultPlan;
use serde::{Deserialize, Serialize};

use crate::cascade::{CascadeMode, CascadeTier};
use crate::engine::{Classification, CsdInferenceEngine};
use crate::monitor::{Alert, MonitorConfig, RollingWindow};
use crate::schedule::PipelineSchedule;
use crate::scratch::{EngineScratch, LaneScratch, ScreenLaneScratch};
use crate::shard::{ShardedStreamMux, StealPolicy};
use crate::weights::LANE_MAX_STEPS;

/// One-shot notice when screening is requested but unavailable: the mux
/// falls back to single-tier silently after the first warning.
static CASCADE_FALLBACK_LOGGED: Once = Once::new();

/// What [`StreamMux::submit`] does when the pending queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Evict the oldest pending window to admit the new one — the
    /// freshest data wins (default: stale windows age out under
    /// overload, recent behaviour keeps being classified).
    DropOldest,
    /// Refuse the new window, keeping the queue intact.
    DropNewest,
}

/// Configuration for a [`StreamMux`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamMuxConfig {
    /// Number of lane slots `W`. `None` resolves the `CSD_STREAM_LANES`
    /// environment knob, falling back to the engine's cache-derived
    /// [`lane_width`](CsdInferenceEngine::lane_width).
    pub lanes: Option<usize>,
    /// Bound on the pending-window queue; [`OverflowPolicy`] applies
    /// beyond it.
    pub max_pending: usize,
    /// What to do when `max_pending` is reached.
    pub policy: OverflowPolicy,
    /// Shard count for a [`ShardedStreamMux`] built from this config.
    /// `None` resolves the `CSD_STREAM_SHARDS` environment knob, falling
    /// back to the worker pool's thread count. Ignored by a standalone
    /// [`StreamMux`] (always one shard).
    #[serde(default)]
    pub shards: Option<usize>,
    /// Work-steal policy for a [`ShardedStreamMux`]. `None` resolves the
    /// `CSD_STREAM_DETERMINISTIC_STEAL` environment knob, falling back
    /// to [`StealPolicy::default`]. Ignored by a standalone
    /// [`StreamMux`].
    #[serde(default)]
    pub steal: Option<StealPolicy>,
    /// Two-tier cascade mode. `None` resolves the `CSD_CASCADE`
    /// environment knob (default [`CascadeMode::Off`]). Screening also
    /// requires a [`CascadeTier`] mounted on the engine
    /// ([`with_cascade`](CsdInferenceEngine::with_cascade)); without one
    /// the mux logs a one-shot notice and runs single-tier.
    #[serde(default)]
    pub cascade: Option<CascadeMode>,
}

impl Default for StreamMuxConfig {
    fn default() -> Self {
        Self {
            lanes: None,
            max_pending: 4096,
            policy: OverflowPolicy::DropOldest,
            shards: None,
            steal: None,
            cascade: None,
        }
    }
}

/// One retired window's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// The stream (process) id the window came from.
    pub stream: u64,
    /// Caller-supplied position tag (the call index that completed the
    /// window, for monitors).
    pub at_call: usize,
    /// The classification — bit-identical to serial `classify` of the
    /// same window.
    pub classification: Classification,
    /// Ticks from submission to retirement (queue wait + compute).
    pub latency_ticks: u64,
    /// Admission sequence number, assigned by the mux at `submit` and
    /// strictly increasing in submission order (so each stream's own
    /// verdicts carry an increasing subsequence). The sharded mux uses
    /// it to deliver per-stream verdicts in submission order no matter
    /// which shard ran the window.
    #[serde(default)]
    pub seq: u64,
}

/// A snapshot of the multiplexer's tick-level counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MuxStats {
    /// Lane-sweep ticks executed.
    pub ticks: u64,
    /// Windows retired (verdicts emitted).
    pub verdicts: u64,
    /// Windows dropped by backpressure — the sum of
    /// [`evicted`](Self::evicted) and [`refused`](Self::refused), kept
    /// as the historical aggregate so old snapshots stay comparable.
    pub dropped: u64,
    /// Windows evicted *after admission*: the queue was full under
    /// [`OverflowPolicy::DropOldest`] and the oldest pending window was
    /// discarded to make room for a newer one. Charged to the stream
    /// that lost its window, not the one that submitted.
    #[serde(default)]
    pub evicted: u64,
    /// Windows refused *at submission*: the queue was full under
    /// [`OverflowPolicy::DropNewest`] and the incoming window was turned
    /// away. Charged to the submitting stream.
    #[serde(default)]
    pub refused: u64,
    /// Windows refused at submission for out-of-vocabulary tokens — a
    /// typed rejection at the admission boundary, never a panic inside
    /// a shared lane block. Distinct from backpressure: rejection means
    /// the *data* was unclassifiable, not that the mux was overloaded.
    #[serde(default)]
    pub rejected: u64,
    /// Mean fraction of lane slots occupied per tick (1.0 = every sweep
    /// fully utilized).
    pub occupancy: f64,
    /// Median submission-to-verdict latency in ticks, over the most
    /// recent window of verdicts.
    pub p50_latency_ticks: u64,
    /// 99th-percentile submission-to-verdict latency in ticks, over the
    /// most recent window of verdicts.
    pub p99_latency_ticks: u64,
    /// Verdicts per wall-clock second since the mux was created.
    pub verdicts_per_sec: f64,
    /// Lane-corruption faults injected by an armed
    /// [`FaultPlan`] (degraded mode; 0 when no plan is armed).
    pub faults: u64,
    /// Windows evicted from a corrupted lane and re-classified through
    /// the serial fused path — every one still produced its verdict.
    pub degraded_reruns: u64,
    /// Ticks that ran (or idled forward) with at least one lane
    /// poisoned.
    pub degraded_ticks: u64,
    /// Lanes currently poisoned (out of service awaiting cooldown).
    pub lanes_poisoned: u64,
    /// Windows resolved by the screen tier without touching the exact
    /// path (0 unless the cascade is screening).
    #[serde(default)]
    pub screened: u64,
    /// Windows whose screen score fell inside the calibrated band and
    /// escalated to the exact path (0 unless the cascade is screening).
    #[serde(default)]
    pub escalated: u64,
    /// Screen-resolved windows whose verdict disagreed with the exact
    /// path's, counted only under [`CascadeMode::Verify`] (the screen
    /// verdict is still the one emitted).
    #[serde(default)]
    pub cascade_flips: u64,
    /// Windows force-decided at the screen band's midpoint while the
    /// screen-only overload hint was set — verdicts that would have
    /// escalated to the exact path under normal operation. A knowingly
    /// degraded count, kept separate from [`screened`](Self::screened)
    /// so overload-mode coverage is never mistaken for calibrated
    /// screening.
    #[serde(default)]
    pub forced_screen: u64,
    /// Ticks executed while the screen-only overload hint was set.
    #[serde(default)]
    pub screen_only_ticks: u64,
    /// Pending windows moved between shards by the rebalancer (always 0
    /// for a standalone mux, and for a shard's own snapshot — steals are
    /// coordinator events).
    #[serde(default)]
    pub steals: u64,
    /// Shards aggregated into this snapshot (1 for a standalone mux or
    /// a single shard's snapshot).
    #[serde(default = "MuxStats::one_shard")]
    pub shards: u64,
}

impl MuxStats {
    /// Serde default for [`shards`](Self::shards): historical snapshots
    /// predate sharding and were all single-mux.
    fn one_shard() -> u64 {
        1
    }
}

/// Per-stream submission-loss breakdown: every way a stream's windows
/// can fail to produce a verdict, separately countable so a monitor (or
/// the sentry service) can report *why* a process lost coverage — was
/// its data garbage, was it overload eviction, or was it turned away at
/// the door.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamLoss {
    /// Admitted windows of this stream later evicted by
    /// [`OverflowPolicy::DropOldest`] backpressure.
    pub evicted: u64,
    /// Windows refused at submission by [`OverflowPolicy::DropNewest`]
    /// backpressure.
    pub refused: u64,
    /// Windows refused at submission for out-of-vocabulary tokens.
    pub rejected: u64,
}

impl StreamLoss {
    /// Total windows of the stream that never produced a verdict.
    pub fn total(&self) -> u64 {
        self.evicted + self.refused + self.rejected
    }

    /// Backpressure losses only (evicted + refused), matching the
    /// historical `dropped` aggregate.
    pub fn dropped(&self) -> u64 {
        self.evicted + self.refused
    }
}

/// A window travelling through the mux: pending (`pos == 0`, queued) or
/// active (occupying a lane at item `pos`). `pub(crate)` so the sharded
/// mux can move pending windows between shards as opaque values; the
/// fields stay private to this module.
#[derive(Debug, Clone)]
pub(crate) struct Window {
    stream: u64,
    at_call: usize,
    seq: Vec<usize>,
    pos: usize,
    enqueued_tick: u64,
    /// Admission sequence number (see [`Verdict::seq`]).
    order: u64,
    /// Whether the screen tier already saw this window and escalated it:
    /// an escalated window must take the exact path, never re-screen.
    screened: bool,
}

/// The screen tier's lane block: the quantized `i16` model's scratch,
/// its slots, and the queue of windows it escalated to the exact lanes.
#[derive(Debug, Clone)]
struct ScreenBlock {
    scratch: ScreenLaneScratch,
    slots: Vec<Option<Window>>,
    /// Reused per-tick gather argument for `ScreenGates::step_lanes`.
    items: Vec<Option<usize>>,
    active: usize,
    /// Windows the band refused to resolve, waiting for an exact lane.
    escalated: VecDeque<Window>,
}

impl ScreenBlock {
    fn new(hidden: usize, width: usize) -> Self {
        Self {
            scratch: ScreenLaneScratch::new(hidden, width),
            slots: (0..width).map(|_| None).collect(),
            items: vec![None; width],
            active: 0,
            escalated: VecDeque::new(),
        }
    }

    /// Windows occupying screen lanes or waiting escalated.
    fn in_flight(&self) -> usize {
        self.active + self.escalated.len()
    }

    fn resident_bytes(&self) -> usize {
        let win = |w: &Window| {
            std::mem::size_of::<Window>() + w.seq.capacity() * std::mem::size_of::<usize>()
        };
        self.scratch.resident_bytes()
            + self.slots.iter().flatten().map(win).sum::<usize>()
            + self.slots.capacity() * std::mem::size_of::<Option<Window>>()
            + self.items.capacity() * std::mem::size_of::<Option<usize>>()
            + self.escalated.iter().map(win).sum::<usize>()
    }
}

/// Verdict latencies kept for percentile stats (a ring of the most
/// recent retirements, so long-running muxes stay bounded).
const LATENCY_RING: usize = 4096;

/// The continuous-batching stream multiplexer.
///
/// See the [module docs](self) for the scheduling model. Construction
/// allocates one lane block; `submit` copies each window into a pooled
/// buffer (buffers recycle through retirements, so the steady state
/// allocates nothing).
#[derive(Debug, Clone)]
pub struct StreamMux {
    engine: CsdInferenceEngine,
    width: usize,
    scratch: LaneScratch,
    serial_scratch: EngineScratch,
    /// Per-lane occupancy.
    slots: Vec<Option<Window>>,
    /// Reused per-tick gather argument for `step_lanes`.
    items: Vec<Option<usize>>,
    pending: VecDeque<Window>,
    free_bufs: Vec<Vec<usize>>,
    max_pending: usize,
    policy: OverflowPolicy,
    /// Whether the engine's lane-stepping path is available; when not,
    /// every window takes the (bit-identical) serial path.
    lane_ok: bool,
    active: usize,
    ticks: u64,
    verdicts: u64,
    /// Admitted windows later evicted by `DropOldest` backpressure.
    evicted: u64,
    /// Windows refused at submission by `DropNewest` backpressure.
    refused: u64,
    /// Per-stream backpressure-eviction tallies (which process lost
    /// already-admitted data, not just how much was lost overall).
    evicted_by_stream: HashMap<u64, u64>,
    /// Per-stream refused-at-submission tallies.
    refused_by_stream: HashMap<u64, u64>,
    /// Windows refused at submission for out-of-vocabulary tokens.
    rejected: u64,
    /// Per-stream out-of-vocabulary rejection tallies: which process
    /// fed the mux garbage, not just that garbage arrived.
    rejected_by_stream: HashMap<u64, u64>,
    /// Vocabulary size, cached for submission-boundary validation.
    vocab: usize,
    occupied_steps: u64,
    latencies: Vec<u64>,
    lat_next: usize,
    /// Next admission sequence number (see [`Verdict::seq`]).
    next_order: u64,
    started: Instant,
    /// Armed fault plan: each occupied lane draws one lane-corruption
    /// chance per tick. `None` = fault-free (zero overhead).
    faults: Option<FaultPlan>,
    /// Ticks a poisoned lane sits out before re-admission.
    lane_cooldown: u64,
    /// Per-lane poison state: `Some(t)` keeps the lane out of service
    /// until tick `t`.
    poisoned: Vec<Option<u64>>,
    fault_events: u64,
    degraded_reruns: u64,
    degraded_ticks: u64,
    /// Resolved cascade mode: [`CascadeMode::Off`] unless screening was
    /// requested *and* the engine carries a tier.
    cascade_mode: CascadeMode,
    /// The engine's mounted screen tier (present iff `cascade_mode`
    /// screens), shared by the screen block and the serial fallbacks.
    tier: Option<Arc<CascadeTier>>,
    /// The screen lane block; `None` when not screening, or when the
    /// engine's lane path is unavailable (serial cascade fallback).
    screen: Option<ScreenBlock>,
    screened: u64,
    escalated: u64,
    cascade_flips: u64,
    /// Overload hint: while set, windows the band would escalate are
    /// force-decided at the band midpoint instead of taking an exact
    /// lane (see [`set_screen_only`](Self::set_screen_only)).
    screen_only: bool,
    forced_screen: u64,
    screen_only_ticks: u64,
}

impl StreamMux {
    /// Builds a multiplexer around `engine`.
    ///
    /// # Panics
    ///
    /// Panics when `config.lanes` is `Some(0)` or `config.max_pending`
    /// is zero.
    pub fn new(engine: CsdInferenceEngine, config: StreamMuxConfig) -> Self {
        let width = config
            .lanes
            .or_else(|| crate::env::positive_usize("CSD_STREAM_LANES"))
            .unwrap_or_else(|| engine.lane_width());
        assert!(width > 0, "a stream mux needs at least one lane");
        assert!(config.max_pending > 0, "max_pending must be positive");
        let scratch = LaneScratch::new(engine.weights().dims(), width);
        let serial_scratch = engine.make_scratch();
        let lane_ok = engine.supports_lane_stepping();
        let vocab = engine.weights().dims().vocab;
        let requested = config.cascade.unwrap_or_else(crate::env::cascade_mode);
        let tier = if requested.screening() {
            let tier = engine.cascade_shared();
            if tier.is_none() {
                CASCADE_FALLBACK_LOGGED.call_once(|| {
                    eprintln!(
                        "csd-accel: CSD_CASCADE requests screening but the engine has no \
                         mounted cascade tier; the stream mux runs single-tier (exact path)"
                    );
                });
            }
            tier
        } else {
            None
        };
        let cascade_mode = if tier.is_some() {
            requested
        } else {
            CascadeMode::Off
        };
        let screen = tier.as_ref().filter(|_| lane_ok).map(|t| {
            let hidden = t.gates().hidden();
            ScreenBlock::new(hidden, width)
        });
        Self {
            engine,
            width,
            scratch,
            serial_scratch,
            slots: (0..width).map(|_| None).collect(),
            items: vec![None; width],
            pending: VecDeque::new(),
            free_bufs: Vec::new(),
            max_pending: config.max_pending,
            policy: config.policy,
            lane_ok,
            active: 0,
            ticks: 0,
            verdicts: 0,
            evicted: 0,
            refused: 0,
            evicted_by_stream: HashMap::new(),
            refused_by_stream: HashMap::new(),
            rejected: 0,
            rejected_by_stream: HashMap::new(),
            vocab,
            occupied_steps: 0,
            latencies: Vec::with_capacity(LATENCY_RING),
            lat_next: 0,
            next_order: 0,
            started: Instant::now(),
            faults: None,
            lane_cooldown: 0,
            poisoned: vec![None; width],
            fault_events: 0,
            degraded_reruns: 0,
            degraded_ticks: 0,
            cascade_mode,
            tier,
            screen,
            screened: 0,
            escalated: 0,
            cascade_flips: 0,
            screen_only: false,
            forced_screen: 0,
            screen_only_ticks: 0,
        }
    }

    /// Sets or clears the screen-only overload hint. While set, windows
    /// whose screen score falls inside the calibrated band are
    /// force-decided at the band midpoint ([`CascadeBand::force`])
    /// instead of escalating to the exact path — bounding verdict
    /// latency under backlog at the cost of calibrated accuracy, with
    /// every forced verdict counted in [`MuxStats::forced_screen`].
    /// Windows already escalated keep their claim on an exact lane.
    /// A no-op (beyond remembering the flag) unless the mux is running
    /// a screening cascade: with no screen tier there is no cheaper
    /// path to prefer.
    pub fn set_screen_only(&mut self, on: bool) {
        self.screen_only = on;
    }

    /// Whether the screen-only overload hint is currently set.
    pub fn screen_only(&self) -> bool {
        self.screen_only
    }

    /// The resolved cascade mode: [`CascadeMode::Off`] unless screening
    /// was requested and the engine carries a mounted tier.
    pub fn cascade_mode(&self) -> CascadeMode {
        self.cascade_mode
    }

    /// Arms degraded mode: each occupied lane draws one corruption
    /// chance per tick from `plan` ([`FaultPlan::corrupt_lane`]). A
    /// corrupted lane's window is evicted and re-classified through the
    /// serial fused path — bit-identical, so no verdict is lost or
    /// changed, only delayed — and the lane sits out `cooldown_ticks`
    /// ticks before taking new work.
    pub fn arm_faults(&mut self, plan: FaultPlan, cooldown_ticks: u64) {
        self.faults = Some(plan);
        self.lane_cooldown = cooldown_ticks;
    }

    /// Disarms degraded mode, returning the plan (with its counters)
    /// and clearing any lane poison.
    pub fn disarm_faults(&mut self) -> Option<FaultPlan> {
        self.poisoned.iter_mut().for_each(|p| *p = None);
        self.faults.take()
    }

    /// Whether a fault plan is armed.
    pub fn faults_armed(&self) -> bool {
        self.faults.is_some()
    }

    /// Windows dropped by backpressure that belonged to `stream` — the
    /// sum of [`evicted_for`](Self::evicted_for) and
    /// [`refused_for`](Self::refused_for).
    pub fn dropped_for(&self, stream: u64) -> u64 {
        self.evicted_for(stream) + self.refused_for(stream)
    }

    /// Admitted windows of `stream` later evicted by
    /// [`OverflowPolicy::DropOldest`] backpressure.
    pub fn evicted_for(&self, stream: u64) -> u64 {
        self.evicted_by_stream.get(&stream).copied().unwrap_or(0)
    }

    /// Windows of `stream` refused at submission by
    /// [`OverflowPolicy::DropNewest`] backpressure.
    pub fn refused_for(&self, stream: u64) -> u64 {
        self.refused_by_stream.get(&stream).copied().unwrap_or(0)
    }

    /// Windows of `stream` refused at submission for out-of-vocabulary
    /// tokens.
    pub fn rejected_for(&self, stream: u64) -> u64 {
        self.rejected_by_stream.get(&stream).copied().unwrap_or(0)
    }

    /// The full per-stream loss breakdown (evicted / refused /
    /// rejected) for `stream`.
    pub fn loss_for(&self, stream: u64) -> StreamLoss {
        StreamLoss {
            evicted: self.evicted_for(stream),
            refused: self.refused_for(stream),
            rejected: self.rejected_for(stream),
        }
    }

    /// Number of lane slots.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Windows queued but not yet occupying a lane.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Windows currently occupying lanes — exact or screen — plus any
    /// escalated windows waiting for an exact lane.
    pub fn in_flight(&self) -> usize {
        self.active + self.screen.as_ref().map_or(0, ScreenBlock::in_flight)
    }

    /// Whether no window is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight() == 0 && self.pending.is_empty()
    }

    /// The engine behind the lanes (for parity checks and accounting).
    pub fn engine(&self) -> &CsdInferenceEngine {
        &self.engine
    }

    /// Current tick-level counters.
    pub fn stats(&self) -> MuxStats {
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let pct = |q: f64| -> u64 {
            if sorted.is_empty() {
                0
            } else {
                sorted[((sorted.len() - 1) as f64 * q).round() as usize]
            }
        };
        MuxStats {
            ticks: self.ticks,
            verdicts: self.verdicts,
            dropped: self.evicted + self.refused,
            evicted: self.evicted,
            refused: self.refused,
            rejected: self.rejected,
            occupancy: if self.ticks == 0 {
                0.0
            } else {
                self.occupied_steps as f64 / (self.ticks * self.width as u64) as f64
            },
            p50_latency_ticks: pct(0.50),
            p99_latency_ticks: pct(0.99),
            verdicts_per_sec: self.verdicts as f64 / self.started.elapsed().as_secs_f64().max(1e-9),
            faults: self.fault_events,
            degraded_reruns: self.degraded_reruns,
            degraded_ticks: self.degraded_ticks,
            lanes_poisoned: self.poisoned.iter().filter(|p| p.is_some()).count() as u64,
            screened: self.screened,
            escalated: self.escalated,
            cascade_flips: self.cascade_flips,
            forced_screen: self.forced_screen,
            screen_only_ticks: self.screen_only_ticks,
            steals: 0,
            shards: MuxStats::one_shard(),
        }
    }

    /// Enqueues one window for classification, copying it into a pooled
    /// buffer. Returns `false` when the window was refused — by
    /// backpressure ([`OverflowPolicy::DropNewest`] with a full queue)
    /// or because a token falls outside the model's vocabulary; under
    /// [`OverflowPolicy::DropOldest`] a full queue evicts its oldest
    /// window instead and this window is admitted.
    ///
    /// An out-of-vocabulary window is a *typed rejection, not a panic*:
    /// admitting it would panic the engine mid-tick and take down the
    /// whole lane block — every co-scheduled stream's windows with it —
    /// so one misbehaving (or hostile) process must be refused at the
    /// boundary instead. The rejection is tallied against the stream
    /// ([`rejected_for`](Self::rejected_for), [`MuxStats::rejected`])
    /// and every other stream is untouched.
    ///
    /// # Panics
    ///
    /// Panics on an empty window (the engine's contract).
    pub fn submit(&mut self, stream: u64, at_call: usize, window: &[usize]) -> bool {
        assert!(!window.is_empty(), "empty sequence");
        if !window
            .iter()
            .all(|&item| crate::kernels::preprocess::in_vocabulary(self.vocab, item))
        {
            self.rejected += 1;
            *self.rejected_by_stream.entry(stream).or_insert(0) += 1;
            return false;
        }
        if self.pending.len() >= self.max_pending {
            match self.policy {
                OverflowPolicy::DropOldest => {
                    // `max_pending > 0` (asserted at construction) makes a
                    // full queue non-empty, but an eviction miss must not
                    // take down the lane block — fall through to admission.
                    if let Some(old) = self.pending.pop_front() {
                        *self.evicted_by_stream.entry(old.stream).or_insert(0) += 1;
                        self.free_bufs.push(old.seq);
                        self.evicted += 1;
                    }
                }
                OverflowPolicy::DropNewest => {
                    *self.refused_by_stream.entry(stream).or_insert(0) += 1;
                    self.refused += 1;
                    return false;
                }
            }
        }
        let mut seq = self.free_bufs.pop().unwrap_or_default();
        seq.clear();
        seq.extend_from_slice(window);
        let order = self.next_order;
        self.next_order += 1;
        self.admit_owned(stream, at_call, order, seq);
        true
    }

    /// Admits an already-pooled buffer as a pending window with a
    /// caller-assigned sequence number, bypassing backpressure — the
    /// sharded mux's admission path, which numbers windows from one
    /// global counter and does its own backpressure accounting before
    /// routing here.
    pub(crate) fn admit_owned(&mut self, stream: u64, at_call: usize, order: u64, seq: Vec<usize>) {
        debug_assert!(!seq.is_empty(), "empty sequence");
        debug_assert!(
            seq.iter()
                .all(|&item| crate::kernels::preprocess::in_vocabulary(self.vocab, item)),
            "caller validated vocabulary before routing"
        );
        self.pending.push_back(Window {
            stream,
            at_call,
            seq,
            pos: 0,
            enqueued_tick: self.ticks,
            order,
            screened: false,
        });
    }

    /// Hands out a pooled buffer (possibly dirty — callers clear it) so
    /// window payloads recycle inside the shard that will retire them.
    pub(crate) fn lease_buf(&mut self) -> Vec<usize> {
        self.free_bufs.pop().unwrap_or_default()
    }

    /// Removes and returns the *youngest* pending window for the
    /// rebalancer: stealing from the queue's tail keeps the victim's
    /// FIFO head — its oldest, most latency-burdened work — in place.
    pub(crate) fn steal_youngest(&mut self) -> Option<Window> {
        self.pending.pop_back()
    }

    /// Accepts a window stolen from another shard. The tick clock is
    /// shard-local, so the latency stamp restarts here: a stolen
    /// window's reported latency covers its life on the thief only.
    pub(crate) fn adopt(&mut self, mut window: Window) {
        window.enqueued_tick = self.ticks;
        self.pending.push_back(window);
    }

    /// Evicts the oldest pending window (for coordinator-level
    /// [`OverflowPolicy::DropOldest`]), recycling its buffer and
    /// returning its `(stream, seq)` identity — the *caller* does the
    /// drop accounting.
    pub(crate) fn evict_oldest_pending(&mut self) -> Option<(u64, u64)> {
        let window = self.pending.pop_front()?;
        let identity = (window.stream, window.order);
        self.free_bufs.push(window.seq);
        Some(identity)
    }

    /// Admission sequence number of the oldest pending window, if any.
    pub(crate) fn oldest_pending_order(&self) -> Option<u64> {
        self.pending.front().map(|w| w.order)
    }

    /// Classifies every pending window through the serial path — the
    /// sharded form of the low-occupancy drain shortcut.
    pub(crate) fn classify_pending_serially(&mut self, out: &mut Vec<Verdict>) {
        while let Some(window) = self.pending.pop_front() {
            self.classify_serial(window, out);
        }
    }

    /// Raw occupied lane-steps, for cross-shard occupancy aggregation.
    pub(crate) fn occupied_steps(&self) -> u64 {
        self.occupied_steps
    }

    /// The retained latency samples (most recent retirements), for
    /// cross-shard percentile merging.
    pub(crate) fn latency_samples(&self) -> &[u64] {
        &self.latencies
    }

    /// Approximate heap footprint of this mux's lane block and queues:
    /// lane scratch, slot/pending window payloads, pooled buffers, and
    /// the latency ring. The engine clone and serial scratch are
    /// per-shard constants (shared-shape with every other engine clone)
    /// and are excluded — this accounts the state that scales with
    /// streams and lanes.
    pub(crate) fn resident_bytes(&self) -> usize {
        let buf = |v: &Vec<usize>| v.capacity() * std::mem::size_of::<usize>();
        let win = |w: &Window| std::mem::size_of::<Window>() + buf(&w.seq);
        self.scratch.resident_bytes()
            + self.slots.iter().flatten().map(win).sum::<usize>()
            + self.slots.capacity() * std::mem::size_of::<Option<Window>>()
            + self.items.capacity() * std::mem::size_of::<Option<usize>>()
            + self.pending.iter().map(win).sum::<usize>()
            + self.free_bufs.iter().map(buf).sum::<usize>()
            + self.latencies.capacity() * std::mem::size_of::<u64>()
            + self.poisoned.capacity() * std::mem::size_of::<Option<u64>>()
            + self.screen.as_ref().map_or(0, ScreenBlock::resident_bytes)
    }

    /// Classifies a window through the serial path and emits its verdict
    /// — the route for windows the lane path cannot take and for the
    /// low-occupancy drain shortcut. While screening, an unscreened
    /// window runs the screen tier first (serial screen is bit-identical
    /// to the screen lanes) and only falls through to the exact path
    /// when the band escalates it — the same rule as the lane blocks, so
    /// every fallback route produces the same verdict.
    fn classify_serial(&mut self, window: Window, out: &mut Vec<Verdict>) {
        if !window.screened {
            if let Some(tier) = self.tier.clone() {
                let (score, decision) = tier.screen(&window.seq);
                if let Some(is_positive) = decision {
                    self.screened += 1;
                    let c = Classification {
                        probability: score as f64 / tier.gates().scale() as f64,
                        is_positive,
                    };
                    self.verify_screen_verdict(&window, is_positive);
                    self.emit(window, c, out);
                    return;
                }
                if self.screen_only {
                    // Overload: force the in-band verdict rather than
                    // pay the exact path. Counted, never silent.
                    self.forced_screen += 1;
                    let c = Classification {
                        probability: score as f64 / tier.gates().scale() as f64,
                        is_positive: tier.band().force(score),
                    };
                    self.emit(window, c, out);
                    return;
                }
                self.escalated += 1;
            }
        }
        let c = self
            .engine
            .classify_with_scratch(&window.seq, &mut self.serial_scratch);
        self.emit(window, c, out);
    }

    /// Under [`CascadeMode::Verify`], shadow-classifies a screen-resolved
    /// window on the exact path and counts a disagreement.
    fn verify_screen_verdict(&mut self, window: &Window, screen_positive: bool) {
        if self.cascade_mode != CascadeMode::Verify {
            return;
        }
        let exact = self
            .engine
            .classify_with_scratch(&window.seq, &mut self.serial_scratch);
        if exact.is_positive != screen_positive {
            self.cascade_flips += 1;
        }
    }

    /// Records one verdict and recycles the window's buffer.
    fn emit(&mut self, window: Window, classification: Classification, out: &mut Vec<Verdict>) {
        let latency = self.ticks - window.enqueued_tick;
        if self.latencies.len() < LATENCY_RING {
            self.latencies.push(latency);
        } else {
            self.latencies[self.lat_next] = latency;
        }
        self.lat_next = (self.lat_next + 1) % LATENCY_RING;
        self.verdicts += 1;
        out.push(Verdict {
            stream: window.stream,
            at_call: window.at_call,
            classification,
            latency_ticks: latency,
            seq: window.order,
        });
        self.free_bufs.push(window.seq);
    }

    /// The next window owed an exact lane: the screen block's escalation
    /// queue when one is running (pending windows reach the exact lanes
    /// only *through* the screen), the pending queue otherwise.
    fn next_exact_window(&mut self) -> Option<Window> {
        if let Some(block) = self.screen.as_mut() {
            return block.escalated.pop_front();
        }
        self.pending.pop_front()
    }

    /// Fills lane `lane` from the exact-lane source if possible. Windows
    /// the lane path cannot serve (no exactness pack, or longer than
    /// [`LANE_MAX_STEPS`]) classify serially right here — bit-identical —
    /// rather than occupying a slot they cannot use.
    fn refill_slot(&mut self, lane: usize, out: &mut Vec<Verdict>) {
        debug_assert!(self.slots[lane].is_none());
        while let Some(window) = self.next_exact_window() {
            if !self.lane_ok || window.seq.len() > LANE_MAX_STEPS {
                self.classify_serial(window, out);
                continue;
            }
            // Clear at admission, not retirement: a slot left empty for
            // a few ticks keeps riding the lockstep kernels, so its
            // h/C state is garbage by the time a window arrives.
            self.scratch.clear_lane(lane);
            self.slots[lane] = Some(window);
            self.active += 1;
            return;
        }
    }

    /// Advances the screen lane block one item: admits pending windows
    /// into free screen lanes, steps the quantized recurrence in bulk,
    /// and retires finished lanes through the calibrated band — emitting
    /// the screen verdict outright or queueing the window for an exact
    /// lane. Returns the number of occupied screen lanes after the
    /// sweep; 0 (and a guaranteed no-op) when the cascade is off.
    fn tick_screen(&mut self, out: &mut Vec<Verdict>) -> usize {
        let Some(mut block) = self.screen.take() else {
            return 0;
        };
        let tier = self.tier.clone().expect("screen block implies a tier");
        for lane in 0..block.slots.len() {
            if block.slots[lane].is_none() {
                if let Some(window) = self.pending.pop_front() {
                    block.scratch.clear_lane(lane);
                    block.slots[lane] = Some(window);
                    block.active += 1;
                }
            }
        }
        if block.active == 0 {
            self.screen = Some(block);
            return 0;
        }
        for (item, slot) in block.items.iter_mut().zip(block.slots.iter()) {
            *item = slot.as_ref().map(|w| w.seq[w.pos]);
        }
        tier.gates().step_lanes(&mut block.scratch, &block.items);
        for lane in 0..block.slots.len() {
            let finished = {
                let Some(w) = block.slots[lane].as_mut() else {
                    continue;
                };
                w.pos += 1;
                w.pos == w.seq.len()
            };
            if !finished {
                continue;
            }
            let mut window = block.slots[lane].take().expect("checked occupied");
            block.active -= 1;
            let score = tier.gates().retire_lane(&block.scratch, lane);
            match tier.band().decide(score) {
                Some(is_positive) => {
                    self.screened += 1;
                    self.verify_screen_verdict(&window, is_positive);
                    let c = Classification {
                        probability: score as f64 / tier.gates().scale() as f64,
                        is_positive,
                    };
                    self.emit(window, c, out);
                }
                None if self.screen_only => {
                    // Overload: force the in-band verdict at the band
                    // midpoint instead of queueing for an exact lane.
                    self.forced_screen += 1;
                    let is_positive = tier.band().force(score);
                    let c = Classification {
                        probability: score as f64 / tier.gates().scale() as f64,
                        is_positive,
                    };
                    self.emit(window, c, out);
                }
                None => {
                    self.escalated += 1;
                    window.pos = 0;
                    window.screened = true;
                    block.escalated.push_back(window);
                }
            }
            // Same-tick refill: the screen slot starts its next window's
            // first item on the very next sweep.
            if let Some(next) = self.pending.pop_front() {
                block.scratch.clear_lane(lane);
                block.slots[lane] = Some(next);
                block.active += 1;
            }
        }
        let active = block.active;
        self.screen = Some(block);
        active
    }

    /// Runs one lockstep tick, appending retired verdicts to `out` and
    /// returning how many were emitted. A tick admits pending windows
    /// into free slots, advances every occupied lane one item, retires
    /// finished lanes (FC head), and refills each retired slot from the
    /// queue *within the same tick* — continuous batching with no batch
    /// barrier. With nothing active or pending this is a no-op.
    pub fn tick_into(&mut self, out: &mut Vec<Verdict>) -> usize {
        let ticks_before = self.ticks;
        let n = self.tick_inner(out);
        if self.screen_only {
            self.screen_only_ticks += self.ticks - ticks_before;
        }
        n
    }

    /// [`tick_into`](Self::tick_into) minus the screen-only tick
    /// accounting (which needs the before/after tick delta around the
    /// whole sweep).
    fn tick_inner(&mut self, out: &mut Vec<Verdict>) -> usize {
        let before = out.len();
        // Re-admit poisoned lanes whose cooldown has expired. The lane's
        // state is garbage after the fault, but refill clears at
        // admission anyway.
        for lane in 0..self.width {
            if matches!(self.poisoned[lane], Some(until) if self.ticks >= until) {
                self.poisoned[lane] = None;
            }
        }
        // Screen phase first: it can escalate windows this very tick,
        // and the exact refill below picks them up with no idle tick in
        // between. No-op when the cascade is off.
        let screen_active = self.tick_screen(out);
        for lane in 0..self.width {
            if self.slots[lane].is_none() && self.poisoned[lane].is_none() {
                self.refill_slot(lane, out);
            }
        }
        if self.active == 0 {
            if screen_active > 0 {
                // The screen block advanced, so the tick did real work
                // even with every exact lane empty.
                self.ticks += 1;
                if self.poisoned.iter().any(Option::is_some) {
                    self.degraded_ticks += 1;
                }
                return out.len() - before;
            }
            // Progress guarantee under total poisoning: with work queued
            // but every lane benched, time must still advance or the
            // cooldowns never expire and `drain` spins forever.
            let backlog = !self.pending.is_empty()
                || self
                    .screen
                    .as_ref()
                    .is_some_and(|b| !b.escalated.is_empty());
            if backlog && self.poisoned.iter().any(Option::is_some) {
                self.ticks += 1;
                self.degraded_ticks += 1;
            }
            return out.len() - before;
        }
        for (item, slot) in self.items.iter_mut().zip(self.slots.iter()) {
            *item = slot.as_ref().map(|w| w.seq[w.pos]);
        }
        // Split borrows: the gather buffer is rebuilt above, so the
        // engine only needs `scratch` mutably.
        self.engine.step_lanes(&mut self.scratch, &self.items);
        self.ticks += 1;
        self.occupied_steps += self.active as u64;
        if self.faults.is_some() {
            for lane in 0..self.width {
                if self.slots[lane].is_none() {
                    continue;
                }
                let corrupt = self.faults.as_mut().is_some_and(FaultPlan::corrupt_lane);
                if !corrupt {
                    continue;
                }
                // CRC catches the corrupted sweep: the lane's h/C state
                // is untrustworthy, so its window reruns on the serial
                // fused path (bit-identical — the verdict is delayed,
                // never lost or changed) and the lane sits out the
                // cooldown.
                let window = self.slots[lane].take().expect("checked occupied");
                self.active -= 1;
                self.fault_events += 1;
                self.poisoned[lane] = Some(self.ticks + self.lane_cooldown);
                self.degraded_reruns += 1;
                self.classify_serial(window, out);
            }
            if self.poisoned.iter().any(Option::is_some) {
                self.degraded_ticks += 1;
            }
        }
        for lane in 0..self.width {
            let finished = {
                let Some(w) = self.slots[lane].as_mut() else {
                    continue;
                };
                w.pos += 1;
                w.pos == w.seq.len()
            };
            if !finished {
                continue;
            }
            let window = self.slots[lane].take().expect("checked occupied");
            let classification = self.engine.retire_lane(&self.scratch, lane);
            self.active -= 1;
            self.emit(window, classification, out);
            // Same-tick refill: the slot starts its next window's first
            // item on the very next sweep.
            self.refill_slot(lane, out);
        }
        out.len() - before
    }

    /// Convenience wrapper over [`tick_into`](Self::tick_into).
    pub fn tick(&mut self) -> Vec<Verdict> {
        let mut out = Vec::new();
        self.tick_into(&mut out);
        out
    }

    /// Ticks until no window is queued or in flight, returning every
    /// verdict in retirement order.
    ///
    /// A near-empty mux takes a shortcut: when no lane is active and the
    /// queue holds at most `W/4` windows, they classify serially instead
    /// of paying full-width lane sweeps — bit-identical results either
    /// way, so the choice is invisible. This keeps low-concurrency
    /// callers (a drain after every call, a single tracked process) at
    /// serial cost while fleets run at lane throughput.
    pub fn drain(&mut self) -> Vec<Verdict> {
        let mut out = Vec::new();
        loop {
            if self.in_flight() == 0 {
                if self.pending.is_empty() {
                    break;
                }
                if self.pending.len() <= (self.width / 4).max(1) {
                    while let Some(window) = self.pending.pop_front() {
                        self.classify_serial(window, &mut out);
                    }
                    break;
                }
            }
            self.tick_into(&mut out);
        }
        out
    }
}

/// Hot per-process state inside a [`FleetMonitor`]: the rolling window
/// plus stride bookkeeping. Boxed out of the per-stream record and
/// allocated lazily on the first observed call, so *dormant* streams —
/// registered but silent, or already latched — never pay for a window
/// buffer. Dropped wholesale when the stream's alert latches (the
/// window is never read again).
#[derive(Debug, Clone)]
struct HotState {
    window: RollingWindow,
    since_classify: u32,
    /// Windows submitted to the mux (drives the first-full-window rule).
    submitted: u32,
    /// Verdicts folded into the vote state (drives time accounting).
    verdicts: u32,
}

/// What remains of a stream after its alert latches: the alert itself
/// and the final verdict count, boxed so the common (never-alerting)
/// fleet pays one null pointer for it.
#[derive(Debug, Clone, Copy)]
struct Latched {
    alert: Alert,
    verdicts: u32,
}

/// Per-process record inside a [`FleetMonitor`]: a 32-byte cold core so
/// a million registered streams fit in tens of megabytes. The vote ring
/// is packed into a `u64` bitmask (bit 0 = newest verdict, one bit
/// shifted in per verdict, masked to `vote_horizon` bits) — which is why
/// the fleet monitor caps `vote_horizon` at 64.
#[derive(Debug, Clone, Default)]
struct StreamState {
    hot: Option<Box<HotState>>,
    latched: Option<Box<Latched>>,
    calls_seen: u64,
    votes: u64,
}

/// A fleet of per-process ransomware monitors multiplexed onto one lane
/// block — the data-center deployment shape at lane throughput.
///
/// Semantics per process are exactly
/// [`StreamMonitor`](crate::monitor::StreamMonitor)'s (same windowing,
/// stride, voting, latching, and 0-ULP-identical verdicts); the
/// difference is *when* classification happens: `observe` is cheap (it
/// never classifies), and [`poll`](Self::poll) / [`drain`](Self::drain)
/// advance all in-flight windows together through the
/// [`ShardedStreamMux`] — one mux shard per worker-pool thread, so a
/// multi-core host classifies the fleet in parallel. Alerts therefore
/// surface at the poll/drain after the triggering window retires, not
/// inside `observe` — the price of batching. Under backpressure,
/// dropped windows are simply never voted on.
///
/// One extra constraint over the serial monitor: `vote_horizon` must be
/// at most 64 (votes pack into a bitmask so a registered-but-idle
/// stream costs ~32 bytes plus table overhead; see
/// [`resident_bytes`](Self::resident_bytes)).
#[derive(Debug, Clone)]
pub struct FleetMonitor {
    mux: ShardedStreamMux,
    config: MonitorConfig,
    streams: HashMap<u64, StreamState>,
    per_item_us: f64,
    /// Recycled verdict buffer for `poll`/`drain`: the hot monitoring
    /// path allocates nothing at steady state.
    verdict_buf: Vec<Verdict>,
    /// `vote_horizon` ones, precomputed.
    vote_mask: u64,
    /// Vocabulary size, cached for `observe`-time validation.
    vocab: usize,
    /// Out-of-vocabulary calls dropped, fleet-wide.
    oov_total: u64,
    /// Per-process out-of-vocabulary tallies — only offending streams
    /// pay an entry (the cold per-stream record stays 32 bytes).
    oov_by_stream: HashMap<u64, u64>,
}

/// Resident-memory accounting for a [`FleetMonitor`], by component.
/// Capacity-based (what the allocator holds, not just what is live) and
/// estimated for the hash table, whose bucket count is inferred from
/// its reported capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FleetResidentBytes {
    /// Streams tracked (registered or observed).
    pub tracked: usize,
    /// Tracked streams with no hot window state (dormant or latched).
    pub idle: usize,
    /// Stream table: buckets × (key + 32-byte cold record + control
    /// byte) — the cost every registered stream pays.
    pub table_bytes: usize,
    /// Hot state: rolling windows + stride bookkeeping, only for
    /// streams mid-window.
    pub hot_bytes: usize,
    /// Latched alert records.
    pub latched_bytes: usize,
    /// The sharded mux: lane blocks, pending queues, pooled buffers,
    /// reorder state (engine weights excluded — per-shard constants).
    pub mux_bytes: usize,
}

impl FleetResidentBytes {
    /// Sum over every component.
    pub fn total(&self) -> usize {
        self.table_bytes + self.hot_bytes + self.latched_bytes + self.mux_bytes
    }

    /// Table bytes per tracked stream — the marginal cost of a
    /// registered-but-idle stream, the number the million-stream
    /// deployment sizes RAM by.
    pub fn per_idle_stream(&self) -> f64 {
        self.table_bytes as f64 / self.tracked.max(1) as f64
    }
}

impl FleetMonitor {
    /// Builds a fleet monitor; each new process id lazily gets monitor
    /// state with `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.window_len`, `stride`, or `votes_needed` is
    /// zero, or `votes_needed > vote_horizon` (the
    /// [`StreamMonitor`](crate::monitor::StreamMonitor) contract), or on
    /// an invalid `mux_config` (see [`StreamMux::new`]).
    pub fn new(
        engine: CsdInferenceEngine,
        config: MonitorConfig,
        mux_config: StreamMuxConfig,
    ) -> Self {
        assert!(config.window_len > 0, "window length must be positive");
        assert!(config.stride > 0, "stride must be positive");
        assert!(config.votes_needed > 0, "votes_needed must be positive");
        assert!(
            config.votes_needed <= config.vote_horizon,
            "cannot need more votes than the horizon holds"
        );
        assert!(
            config.vote_horizon <= 64,
            "fleet monitor packs votes into a 64-bit ring"
        );
        let per_item_us = PipelineSchedule::for_level(engine.level()).steady_item_us;
        let vote_mask = if config.vote_horizon == 64 {
            u64::MAX
        } else {
            (1u64 << config.vote_horizon) - 1
        };
        let vocab = engine.weights().dims().vocab;
        Self {
            mux: ShardedStreamMux::new(engine, mux_config),
            config,
            streams: HashMap::new(),
            per_item_us,
            verdict_buf: Vec::new(),
            vote_mask,
            vocab,
            oov_total: 0,
            oov_by_stream: HashMap::new(),
        }
    }

    /// The monitor configuration.
    pub fn config(&self) -> MonitorConfig {
        self.config
    }

    /// The underlying sharded multiplexer (stats, occupancy, queue
    /// depth).
    pub fn mux(&self) -> &ShardedStreamMux {
        &self.mux
    }

    /// Arms the mux's degraded mode (see [`StreamMux::arm_faults`]):
    /// corrupted lanes rerun their windows serially, so fleet verdicts
    /// and alerts survive a flaky device unchanged. Each shard derives
    /// its own plan from `plan`'s seed so fault streams stay independent
    /// across lanes.
    pub fn arm_faults(&mut self, plan: FaultPlan, cooldown_ticks: u64) {
        self.mux.arm_faults(plan, cooldown_ticks);
    }

    /// Windows of process `pid` dropped by mux backpressure — the data
    /// this process lost to overload (never to faults).
    pub fn dropped_windows(&self, pid: u64) -> u64 {
        self.mux.dropped_for(pid)
    }

    /// Total windows dropped by mux backpressure across all processes.
    pub fn total_dropped(&self) -> u64 {
        self.mux.stats().dropped
    }

    /// The full loss breakdown for process `pid`: windows evicted by
    /// backpressure after admission, refused at admission, or rejected
    /// for out-of-vocabulary tokens. What a deployment reports as this
    /// process's coverage gap — and *why* the gap exists.
    pub fn loss_for(&self, pid: u64) -> StreamLoss {
        self.mux.loss_for(pid)
    }

    /// Out-of-vocabulary calls observed in process `pid` — each was
    /// dropped at [`observe`](Self::observe) (typed and tallied, never
    /// a panic in a shared lane block).
    pub fn oov_calls(&self, pid: u64) -> u64 {
        self.oov_by_stream.get(&pid).copied().unwrap_or(0)
    }

    /// Total out-of-vocabulary calls dropped across the fleet.
    pub fn total_oov(&self) -> u64 {
        self.oov_total
    }

    /// Number of processes currently tracked.
    pub fn tracked(&self) -> usize {
        self.streams.len()
    }

    /// Registers `pid` without observing anything: the stream gets its
    /// compact cold record (no window buffer — that allocates lazily on
    /// the first call) and counts as tracked. This is how a fleet
    /// pre-registers every process it *might* hear from: a million
    /// registered-but-idle streams cost ~100 bytes each (see
    /// [`resident_bytes`](Self::resident_bytes)).
    pub fn register(&mut self, pid: u64) {
        self.streams.entry(pid).or_default();
    }

    /// Feeds one API call observed in process `pid`. Never classifies:
    /// a completed window is enqueued on the mux for the next
    /// [`poll`](Self::poll) / [`drain`](Self::drain).
    ///
    /// An out-of-vocabulary call cannot be embedded, so it is dropped
    /// here — tallied per process ([`oov_calls`](Self::oov_calls)),
    /// never fed to the shared lane block where it would panic a mux
    /// shard and take the rest of the fleet's in-flight windows with
    /// it. The call still counts as observed (`calls_seen` advances so
    /// `at_call` tags stay aligned with the process's real activity);
    /// only the rolling window skips it.
    pub fn observe(&mut self, pid: u64, call: usize) {
        let config = self.config;
        if !crate::kernels::preprocess::in_vocabulary(self.vocab, call) {
            self.oov_total += 1;
            *self.oov_by_stream.entry(pid).or_insert(0) += 1;
            self.streams.entry(pid).or_default().calls_seen += 1;
            return;
        }
        let state = self.streams.entry(pid).or_default();
        state.calls_seen += 1;
        if state.latched.is_some() {
            // Latched streams stay latched; their window state is long
            // freed and the call only bumps the counter.
            return;
        }
        let hot = state.hot.get_or_insert_with(|| {
            Box::new(HotState {
                window: RollingWindow::new(config.window_len),
                since_classify: 0,
                submitted: 0,
                verdicts: 0,
            })
        });
        hot.window.push(call);
        if !hot.window.is_full() {
            return;
        }
        hot.since_classify += 1;
        let first_full = hot.submitted == 0;
        if !first_full && (hot.since_classify as usize) < config.stride {
            return;
        }
        hot.since_classify = 0;
        hot.submitted += 1;
        self.mux
            .submit(pid, state.calls_seen as usize, hot.window.as_slice());
    }

    /// Feeds a batch of calls for one process.
    pub fn observe_all(&mut self, pid: u64, calls: &[usize]) {
        for &c in calls {
            self.observe(pid, c);
        }
    }

    /// Runs one coordinator round (one tick on every loaded shard) and
    /// returns newly raised alerts. The verdict buffer is pooled: the
    /// steady-state monitoring loop allocates nothing here.
    pub fn poll(&mut self) -> Vec<(u64, Alert)> {
        let mut buf = std::mem::take(&mut self.verdict_buf);
        buf.clear();
        self.mux.tick_into(&mut buf);
        let alerts = self.apply(&buf);
        self.verdict_buf = buf;
        alerts
    }

    /// Classifies everything queued or in flight and returns newly
    /// raised alerts.
    pub fn drain(&mut self) -> Vec<(u64, Alert)> {
        let mut buf = std::mem::take(&mut self.verdict_buf);
        buf.clear();
        self.mux.drain_into(&mut buf);
        let alerts = self.apply(&buf);
        self.verdict_buf = buf;
        alerts
    }

    /// Folds retired verdicts into per-process vote state. Verdicts for
    /// retired (or already-alerted) processes are discarded — alerts
    /// latch exactly as in the serial monitor. The sharded mux delivers
    /// each stream's verdicts in submission order, so the fold is the
    /// same order-sensitive fold the serial monitor runs.
    fn apply(&mut self, verdicts: &[Verdict]) -> Vec<(u64, Alert)> {
        let mut alerts = Vec::new();
        for v in verdicts {
            let Some(state) = self.streams.get_mut(&v.stream) else {
                continue;
            };
            if state.latched.is_some() {
                continue;
            }
            let Some(hot) = state.hot.as_mut() else {
                continue;
            };
            hot.verdicts += 1;
            state.votes =
                ((state.votes << 1) | u64::from(v.classification.is_positive)) & self.vote_mask;
            if (state.votes.count_ones() as usize) >= self.config.votes_needed {
                let alert = Alert {
                    at_call: v.at_call,
                    probability: v.classification.probability,
                    inference_us: f64::from(hot.verdicts)
                        * self.config.window_len as f64
                        * self.per_item_us,
                };
                state.latched = Some(Box::new(Latched {
                    alert,
                    verdicts: hot.verdicts,
                }));
                // Latching retires the hot state: the rolling window
                // frees right here and the stream drops to its 32-byte
                // cold record.
                state.hot = None;
                alerts.push((v.stream, alert));
            }
        }
        alerts
    }

    /// The alert state of process `pid`, if tracked.
    pub fn alert_for(&self, pid: u64) -> Option<Alert> {
        self.streams
            .get(&pid)
            .and_then(|s| s.latched.as_ref())
            .map(|l| l.alert)
    }

    /// Process ids with latched alerts, ascending.
    pub fn alerted_pids(&self) -> Vec<u64> {
        let mut pids: Vec<u64> = self
            .streams
            .iter()
            .filter(|(_, s)| s.latched.is_some())
            .map(|(&pid, _)| pid)
            .collect();
        pids.sort_unstable();
        pids
    }

    /// API calls observed for process `pid` (0 if untracked).
    pub fn calls_seen(&self, pid: u64) -> usize {
        self.streams.get(&pid).map_or(0, |s| s.calls_seen as usize)
    }

    /// Verdicts folded into process `pid`'s vote state so far.
    pub fn classifications(&self, pid: u64) -> usize {
        self.streams.get(&pid).map_or(0, |s| {
            s.latched
                .as_ref()
                .map(|l| l.verdicts)
                .or_else(|| s.hot.as_ref().map(|h| h.verdicts))
                .unwrap_or(0) as usize
        })
    }

    /// Drops a finished process's state. Verdicts still in flight for it
    /// are discarded on retirement.
    pub fn retire(&mut self, pid: u64) {
        self.streams.remove(&pid);
    }

    /// Resident-memory accounting by component — the API the
    /// million-stream deployment sizes itself with. See
    /// [`FleetResidentBytes`].
    pub fn resident_bytes(&self) -> FleetResidentBytes {
        let mut idle = 0usize;
        let mut hot_bytes = 0usize;
        let mut latched_bytes = 0usize;
        for state in self.streams.values() {
            match state.hot.as_deref() {
                Some(hot) => {
                    hot_bytes += std::mem::size_of::<HotState>() + hot.window.resident_bytes();
                }
                None => idle += 1,
            }
            if state.latched.is_some() {
                latched_bytes += std::mem::size_of::<Latched>();
            }
        }
        FleetResidentBytes {
            tracked: self.streams.len(),
            idle,
            table_bytes: Self::table_bytes(&self.streams),
            hot_bytes,
            latched_bytes,
            mux_bytes: self.mux.resident_bytes(),
        }
    }

    /// Estimated allocation of the stream table: hashbrown keeps one
    /// control byte per bucket and resizes at 7/8 load, so the bucket
    /// count is the reported capacity scaled back up to its power of
    /// two.
    fn table_bytes(map: &HashMap<u64, StreamState>) -> usize {
        let cap = map.capacity();
        if cap == 0 {
            return 0;
        }
        let buckets = (cap * 8 / 7).next_power_of_two();
        buckets * (std::mem::size_of::<(u64, StreamState)>() + 1)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::monitor::StreamMonitor;
    use crate::opt::OptimizationLevel;
    use csd_nn::{ModelConfig, ModelWeights, SequenceClassifier};

    fn engine(level: OptimizationLevel) -> CsdInferenceEngine {
        let model = SequenceClassifier::new(ModelConfig::paper(), 21);
        CsdInferenceEngine::new(&ModelWeights::from_model(&model), level)
    }

    fn seq(n: usize, salt: usize) -> Vec<usize> {
        (0..n).map(|i| (i * 37 + 11 + salt * 29) % 278).collect()
    }

    fn mux_with_width(level: OptimizationLevel, width: usize) -> StreamMux {
        StreamMux::new(
            engine(level),
            StreamMuxConfig {
                lanes: Some(width),
                ..StreamMuxConfig::default()
            },
        )
    }

    #[test]
    fn streamed_verdicts_match_serial_classify() {
        for level in OptimizationLevel::ALL {
            let e = engine(level);
            let mut mux = StreamMux::new(
                e.clone(),
                StreamMuxConfig {
                    lanes: Some(4),
                    ..StreamMuxConfig::default()
                },
            );
            let windows: Vec<Vec<usize>> = (0..11).map(|k| seq(5 + k * 9 % 60, k)).collect();
            for (k, w) in windows.iter().enumerate() {
                assert!(mux.submit(k as u64, k, w));
            }
            let verdicts = mux.drain();
            assert_eq!(verdicts.len(), windows.len(), "{level}");
            for v in &verdicts {
                assert_eq!(
                    v.classification,
                    e.classify(&windows[v.stream as usize]),
                    "{level} stream {}",
                    v.stream
                );
            }
            assert!(mux.is_idle());
        }
    }

    #[test]
    fn same_tick_refill_keeps_slots_busy() {
        // 4 equal-length windows through 2 lanes: generation two starts
        // the tick after generation one retires, so the whole batch takes
        // 2·len ticks, not 2·len + idle gaps.
        let mut mux = mux_with_width(OptimizationLevel::FixedPoint, 2);
        let len = 10;
        for k in 0..4u64 {
            mux.submit(k, 0, &seq(len, k as usize));
        }
        let verdicts = mux.drain();
        assert_eq!(verdicts.len(), 4);
        let stats = mux.stats();
        assert_eq!(stats.ticks, 2 * len as u64);
        assert!((stats.occupancy - 1.0).abs() < 1e-12, "no idle lane-steps");
        // First generation retires at tick len, second at 2·len.
        assert_eq!(verdicts[0].latency_ticks, len as u64);
        assert_eq!(verdicts[3].latency_ticks, 2 * len as u64);
    }

    #[test]
    fn retirement_order_is_fifo_for_equal_lengths() {
        let mut mux = mux_with_width(OptimizationLevel::FixedPoint, 2);
        for k in 0..6u64 {
            mux.submit(k, k as usize, &seq(8, k as usize));
        }
        let verdicts = mux.drain();
        let order: Vec<u64> = verdicts.iter().map(|v| v.stream).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn drop_oldest_evicts_head() {
        let mut mux = StreamMux::new(
            engine(OptimizationLevel::FixedPoint),
            StreamMuxConfig {
                lanes: Some(2),
                max_pending: 2,
                policy: OverflowPolicy::DropOldest,
                ..StreamMuxConfig::default()
            },
        );
        for k in 0..4u64 {
            assert!(mux.submit(k, k as usize, &seq(6, k as usize)));
        }
        assert_eq!(mux.pending(), 2);
        let verdicts = mux.drain();
        let kept: Vec<u64> = verdicts.iter().map(|v| v.stream).collect();
        assert_eq!(kept, vec![2, 3], "oldest two evicted");
        assert_eq!(mux.stats().dropped, 2);
        assert_eq!(mux.stats().evicted, 2, "DropOldest losses are evictions");
        assert_eq!(mux.stats().refused, 0);
        assert_eq!(mux.evicted_for(0), 1, "stream 0 lost its admitted window");
        assert_eq!(mux.refused_for(0), 0);
        assert_eq!(mux.loss_for(1).total(), 1);
    }

    #[test]
    fn drop_newest_refuses_submission() {
        let mut mux = StreamMux::new(
            engine(OptimizationLevel::FixedPoint),
            StreamMuxConfig {
                lanes: Some(2),
                max_pending: 2,
                policy: OverflowPolicy::DropNewest,
                ..StreamMuxConfig::default()
            },
        );
        assert!(mux.submit(0, 0, &seq(6, 0)));
        assert!(mux.submit(1, 1, &seq(6, 1)));
        assert!(!mux.submit(2, 2, &seq(6, 2)), "queue full");
        let verdicts = mux.drain();
        let kept: Vec<u64> = verdicts.iter().map(|v| v.stream).collect();
        assert_eq!(kept, vec![0, 1]);
        assert_eq!(mux.stats().dropped, 1);
        assert_eq!(mux.stats().refused, 1, "DropNewest losses are refusals");
        assert_eq!(mux.stats().evicted, 0);
        assert_eq!(mux.refused_for(2), 1, "submitter charged");
        assert_eq!(mux.evicted_for(2), 0);
        assert_eq!(
            mux.loss_for(2),
            StreamLoss {
                evicted: 0,
                refused: 1,
                rejected: 0
            }
        );
    }

    #[test]
    fn mux_stats_json_predating_loss_split_still_deserializes() {
        // A BENCH_*.json snapshot written before `evicted`/`refused`
        // existed: the split fields default to zero, `dropped` keeps
        // its recorded aggregate.
        let old = r#"{
            "ticks": 10, "verdicts": 8, "dropped": 3,
            "occupancy": 0.5, "p50_latency_ticks": 1,
            "p99_latency_ticks": 2, "verdicts_per_sec": 100.0,
            "faults": 0, "degraded_reruns": 0, "degraded_ticks": 0,
            "lanes_poisoned": 0
        }"#;
        let stats: MuxStats = serde_json::from_str(old).expect("old snapshot parses");
        assert_eq!(stats.dropped, 3);
        assert_eq!(stats.evicted, 0);
        assert_eq!(stats.refused, 0);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.shards, 1);
    }

    #[test]
    fn tick_on_idle_mux_is_noop() {
        let mut mux = mux_with_width(OptimizationLevel::FixedPoint, 2);
        assert!(mux.tick().is_empty());
        assert_eq!(mux.stats().ticks, 0);
    }

    #[test]
    fn overlong_windows_take_the_serial_route() {
        let mut mux = mux_with_width(OptimizationLevel::FixedPoint, 2);
        let e = engine(OptimizationLevel::FixedPoint);
        let long: Vec<usize> = (0..LANE_MAX_STEPS + 1).map(|i| i % 278).collect();
        let short = seq(9, 3);
        mux.submit(0, 0, &long);
        mux.submit(1, 1, &short);
        let verdicts = mux.drain();
        assert_eq!(verdicts.len(), 2);
        for v in &verdicts {
            let expect = if v.stream == 0 {
                e.classify(&long)
            } else {
                e.classify(&short)
            };
            assert_eq!(v.classification, expect);
        }
    }

    #[test]
    fn interleaved_submission_and_ticks_match_serial() {
        let e = engine(OptimizationLevel::FixedPoint);
        let mut mux = mux_with_width(OptimizationLevel::FixedPoint, 3);
        let windows: Vec<Vec<usize>> = (0..9).map(|k| seq(4 + (k * 13) % 40, k)).collect();
        let mut verdicts = Vec::new();
        for (k, w) in windows.iter().enumerate() {
            mux.submit(k as u64, k, w);
            // Advance a few ticks mid-stream: admission interleaves with
            // retirement.
            for _ in 0..k % 4 {
                mux.tick_into(&mut verdicts);
            }
        }
        verdicts.extend(mux.drain());
        assert_eq!(verdicts.len(), windows.len());
        for v in &verdicts {
            assert_eq!(v.classification, e.classify(&windows[v.stream as usize]));
        }
    }

    #[test]
    fn stats_track_occupancy_and_latency() {
        let mut mux = mux_with_width(OptimizationLevel::FixedPoint, 4);
        for k in 0..4u64 {
            mux.submit(k, 0, &seq(12, k as usize));
        }
        let _ = mux.drain();
        let s = mux.stats();
        assert_eq!(s.verdicts, 4);
        assert_eq!(s.ticks, 12);
        assert!((s.occupancy - 1.0).abs() < 1e-12);
        assert_eq!(s.p50_latency_ticks, 12);
        assert_eq!(s.p99_latency_ticks, 12);
        assert!(s.verdicts_per_sec > 0.0);
    }

    #[test]
    fn faulty_mux_never_loses_or_changes_a_verdict() {
        use csd_device::{FaultConfig, FaultPlan};
        let e = engine(OptimizationLevel::FixedPoint);
        let mut mux = mux_with_width(OptimizationLevel::FixedPoint, 4);
        mux.arm_faults(FaultPlan::new(42, FaultConfig::uniform(0.2)), 3);
        let windows: Vec<Vec<usize>> = (0..16).map(|k| seq(6 + (k * 11) % 50, k)).collect();
        for (k, w) in windows.iter().enumerate() {
            assert!(mux.submit(k as u64, k, w));
        }
        let verdicts = mux.drain();
        assert_eq!(verdicts.len(), windows.len(), "no verdict lost");
        for v in &verdicts {
            assert_eq!(
                v.classification,
                e.classify(&windows[v.stream as usize]),
                "stream {}",
                v.stream
            );
        }
        let s = mux.stats();
        assert!(s.faults > 0, "rate 0.2 over dozens of lane-ticks must hit");
        assert_eq!(s.degraded_reruns, s.faults);
        assert!(s.degraded_ticks > 0);
        assert!(mux.is_idle());
    }

    #[test]
    fn corrupted_lane_is_benched_for_the_cooldown_then_readmitted() {
        use csd_device::{FaultConfig, FaultPlan};
        let e = engine(OptimizationLevel::FixedPoint);
        let mut mux = mux_with_width(OptimizationLevel::FixedPoint, 1);
        let cfg = FaultConfig {
            corruption: 1.0,
            ..FaultConfig::none()
        };
        mux.arm_faults(FaultPlan::new(1, cfg), 5);
        let w0 = seq(3, 0);
        let w1 = seq(3, 1);
        mux.submit(0, 0, &w0);
        mux.submit(1, 1, &w1);
        // First tick: the lane corrupts on its first sweep; the window
        // reruns serially (verdict intact) and the lane is benched.
        let first = mux.tick();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].classification, e.classify(&w0));
        assert_eq!(mux.stats().lanes_poisoned, 1);
        // Cooldown: ticks pass with no lane able to take the pending
        // window — the progress guarantee keeps time moving.
        let mut ticks_benched = 0;
        let second = loop {
            let out = mux.tick();
            if !out.is_empty() {
                break out;
            }
            ticks_benched += 1;
            assert!(ticks_benched < 20, "cooldown must expire");
        };
        assert!(
            ticks_benched >= 4,
            "lane benched, saw {ticks_benched} idle ticks"
        );
        assert_eq!(second[0].classification, e.classify(&w1));
        let s = mux.stats();
        assert_eq!(s.faults, 2);
        assert_eq!(s.degraded_reruns, 2);
        assert!(s.degraded_ticks >= 5);
        assert!(mux.is_idle());
    }

    #[test]
    fn drops_are_counted_per_stream() {
        let mut mux = StreamMux::new(
            engine(OptimizationLevel::FixedPoint),
            StreamMuxConfig {
                lanes: Some(2),
                max_pending: 2,
                policy: OverflowPolicy::DropOldest,
                ..StreamMuxConfig::default()
            },
        );
        for k in 0..4u64 {
            mux.submit(k, 0, &seq(6, k as usize));
        }
        assert_eq!(mux.dropped_for(0), 1, "oldest evicted");
        assert_eq!(mux.dropped_for(1), 1);
        assert_eq!(mux.dropped_for(2), 0);
        assert_eq!(mux.dropped_for(99), 0, "untracked stream");

        let mut refuse = StreamMux::new(
            engine(OptimizationLevel::FixedPoint),
            StreamMuxConfig {
                lanes: Some(2),
                max_pending: 1,
                policy: OverflowPolicy::DropNewest,
                ..StreamMuxConfig::default()
            },
        );
        assert!(refuse.submit(7, 0, &seq(6, 0)));
        assert!(!refuse.submit(8, 0, &seq(6, 1)));
        assert_eq!(refuse.dropped_for(8), 1, "refused submitter charged");
        assert_eq!(refuse.dropped_for(7), 0);
    }

    #[test]
    fn fleet_survives_faults_and_counts_drops_per_process() {
        use csd_device::{FaultConfig, FaultPlan};
        let e = tiny_engine();
        let mut faulty = FleetMonitor::new(e.clone(), small_config(), StreamMuxConfig::default());
        faulty.arm_faults(FaultPlan::new(5, FaultConfig::uniform(0.1)), 4);
        let mut clean = FleetMonitor::new(e, small_config(), StreamMuxConfig::default());
        let traces: Vec<(u64, Vec<usize>)> = (0..4u64)
            .map(|pid| (pid, (0..80).map(|i| (i * 5 + pid as usize) % 16).collect()))
            .collect();
        for i in 0..80 {
            for (pid, calls) in &traces {
                faulty.observe(*pid, calls[i]);
                clean.observe(*pid, calls[i]);
            }
        }
        let _ = faulty.drain();
        let _ = clean.drain();
        // Lane corruption delays verdicts but every window still votes:
        // the same processes alert, nothing is dropped.
        for (pid, _) in &traces {
            assert_eq!(
                faulty.alert_for(*pid).is_some(),
                clean.alert_for(*pid).is_some(),
                "pid {pid}"
            );
            assert_eq!(faulty.dropped_windows(*pid), 0);
        }
        assert_eq!(
            faulty.mux().stats().verdicts,
            clean.mux().stats().verdicts,
            "no verdict lost to faults"
        );
        assert!(faulty.mux().stats().faults > 0, "rate 0.1 must hit");
        assert_eq!(faulty.total_dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_window_rejected() {
        let mut mux = mux_with_width(OptimizationLevel::FixedPoint, 2);
        mux.submit(0, 0, &[]);
    }

    #[test]
    fn oov_window_is_rejected_not_a_panic() {
        // Regression: an out-of-vocabulary token used to reach the
        // engine's step path and panic mid-tick, taking the whole lane
        // block (and every co-scheduled stream) down with it. The mux
        // now refuses the window at submission with a typed, per-stream
        // tally and everyone else's verdicts are untouched.
        let e = engine(OptimizationLevel::FixedPoint);
        let mut mux = mux_with_width(OptimizationLevel::FixedPoint, 2);
        let good = seq(8, 1);
        let mut bad = seq(8, 2);
        bad[3] = 278; // paper vocabulary is 0..=277
        assert!(mux.submit(7, 0, &good));
        assert!(!mux.submit(8, 1, &bad), "OOV refused at the boundary");
        assert!(!mux.submit(8, 2, &[usize::MAX]), "extreme token refused");
        assert_eq!(mux.rejected_for(8), 2);
        assert_eq!(mux.rejected_for(7), 0);
        let verdicts = mux.drain();
        assert_eq!(verdicts.len(), 1, "the clean stream still classifies");
        assert_eq!(verdicts[0].stream, 7);
        assert_eq!(verdicts[0].classification, e.classify(&good));
        let stats = mux.stats();
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.dropped, 0, "rejection is not backpressure");
    }

    #[test]
    fn fleet_monitor_drops_oov_calls_and_keeps_the_fleet_alive() {
        // One process feeds garbage tokens; its OOV calls are dropped
        // (tallied, typed) while a clean process interleaved on the
        // same fleet alerts exactly as it would alone.
        let e = tiny_engine();
        let mut fleet = FleetMonitor::new(e.clone(), small_config(), StreamMuxConfig::default());
        let clean_calls: Vec<usize> = (0..120).map(|i| (i * 7) % 16).collect();
        for (i, &c) in clean_calls.iter().enumerate() {
            fleet.observe(1, c);
            // pid 2 alternates good calls with out-of-vocabulary ones.
            fleet.observe(2, if i % 3 == 0 { 16 + i } else { c });
        }
        let _ = fleet.drain();
        assert_eq!(fleet.oov_calls(1), 0);
        assert_eq!(fleet.oov_calls(2), 40, "every third call was OOV");
        assert_eq!(fleet.total_oov(), 40);
        assert_eq!(
            fleet.calls_seen(2),
            clean_calls.len(),
            "OOV calls still count as observed"
        );
        // The clean stream's alert state matches a fleet of its own.
        let mut alone = FleetMonitor::new(e, small_config(), StreamMuxConfig::default());
        alone.observe_all(1, &clean_calls);
        let _ = alone.drain();
        assert_eq!(fleet.alert_for(1), alone.alert_for(1));
        assert_eq!(fleet.classifications(1), alone.classifications(1));
    }

    fn small_config() -> MonitorConfig {
        MonitorConfig {
            window_len: 8,
            stride: 4,
            votes_needed: 1,
            vote_horizon: 1,
        }
    }

    fn tiny_engine() -> CsdInferenceEngine {
        let model = SequenceClassifier::new(ModelConfig::tiny(16), 9);
        CsdInferenceEngine::new(
            &ModelWeights::from_model(&model),
            OptimizationLevel::FixedPoint,
        )
    }

    #[test]
    fn fleet_matches_stream_monitor_per_process() {
        let e = tiny_engine();
        let traces: Vec<(u64, Vec<usize>)> = (0..5u64)
            .map(|pid| {
                let n = 60 + (pid as usize) * 37;
                (
                    pid,
                    (0..n).map(|i| (i * 7 + pid as usize * 3) % 16).collect(),
                )
            })
            .collect();
        // Serial reference: one StreamMonitor per process.
        let mut reference = HashMap::new();
        for (pid, calls) in &traces {
            let mut m = StreamMonitor::new(e.clone(), small_config());
            m.observe_all(calls);
            reference.insert(*pid, m.alert());
        }
        // Fleet: interleave all processes call by call, drain at the end.
        let mut fleet = FleetMonitor::new(e, small_config(), StreamMuxConfig::default());
        let longest = traces.iter().map(|(_, c)| c.len()).max().expect("traces");
        for i in 0..longest {
            for (pid, calls) in &traces {
                if let Some(&c) = calls.get(i) {
                    fleet.observe(*pid, c);
                }
            }
        }
        let _ = fleet.drain();
        for (pid, expected) in &reference {
            assert_eq!(fleet.alert_for(*pid), *expected, "pid {pid}");
        }
    }

    #[test]
    fn fleet_alerts_latch_across_windows() {
        let e = tiny_engine();
        let mut fleet = FleetMonitor::new(e, small_config(), StreamMuxConfig::default());
        let calls: Vec<usize> = (0..400).map(|i| i % 3).collect();
        let mut alerts = 0;
        for &c in &calls {
            fleet.observe(7, c);
            alerts += fleet.drain().len();
        }
        assert!(alerts <= 1, "alerts must latch");
        if alerts == 1 {
            assert!(fleet.alert_for(7).is_some());
            assert_eq!(fleet.alerted_pids(), vec![7]);
        }
    }

    #[test]
    fn fleet_retire_drops_state_and_ignores_in_flight_verdicts() {
        let e = tiny_engine();
        let mut fleet = FleetMonitor::new(e, small_config(), StreamMuxConfig::default());
        for i in 0..40usize {
            fleet.observe(1, i % 16);
            fleet.observe(2, (i + 5) % 16);
        }
        assert_eq!(fleet.tracked(), 2);
        assert!(fleet.mux().pending() > 0, "windows enqueued, not yet run");
        fleet.retire(1);
        assert_eq!(fleet.tracked(), 1);
        // Draining classifies pid 1's in-flight windows but discards the
        // verdicts; only pid 2 can alert.
        let alerts = fleet.drain();
        assert!(alerts.iter().all(|&(pid, _)| pid == 2));
        assert!(fleet.alert_for(1).is_none());
    }

    #[test]
    fn fleet_observe_all_equals_repeated_observe() {
        let e = tiny_engine();
        let calls: Vec<usize> = (0..150).map(|i| (i * 7) % 16).collect();
        let mut one = FleetMonitor::new(e.clone(), small_config(), StreamMuxConfig::default());
        one.observe_all(3, &calls);
        let _ = one.drain();
        let mut two = FleetMonitor::new(e, small_config(), StreamMuxConfig::default());
        for &c in &calls {
            two.observe(3, c);
        }
        let _ = two.drain();
        assert_eq!(one.alert_for(3), two.alert_for(3));
        assert_eq!(one.classifications(3), two.classifications(3));
        assert_eq!(one.calls_seen(3), two.calls_seen(3));
    }

    #[test]
    fn fleet_short_trace_never_classifies() {
        let e = tiny_engine();
        let mut fleet = FleetMonitor::new(e, small_config(), StreamMuxConfig::default());
        fleet.observe_all(1, &[1, 2, 3, 4, 5, 6, 7]); // one short of a window
        let alerts = fleet.drain();
        assert!(alerts.is_empty());
        assert_eq!(fleet.classifications(1), 0);
        assert_eq!(fleet.mux().stats().verdicts, 0);
    }

    #[test]
    fn fleet_stride_longer_than_window() {
        let e = tiny_engine();
        let config = MonitorConfig {
            window_len: 8,
            stride: 20,
            votes_needed: 1,
            vote_horizon: 1,
        };
        let mut fleet = FleetMonitor::new(e.clone(), config, StreamMuxConfig::default());
        let calls: Vec<usize> = (0..70).map(|i| i % 16).collect();
        fleet.observe_all(5, &calls);
        let _ = fleet.drain();
        let mut reference = StreamMonitor::new(e, config);
        reference.observe_all(&calls);
        assert_eq!(fleet.alert_for(5), reference.alert());
        if fleet.alert_for(5).is_none() {
            assert_eq!(fleet.classifications(5), reference.classifications());
        }
    }

    #[test]
    #[should_panic(expected = "cannot need more votes")]
    fn fleet_invalid_vote_config_rejected() {
        let _ = FleetMonitor::new(
            tiny_engine(),
            MonitorConfig {
                votes_needed: 4,
                vote_horizon: 3,
                ..small_config()
            },
            StreamMuxConfig::default(),
        );
    }

    /// A paper-model engine with a mounted cascade calibrated on the
    /// returned windows (so every one of them screens or escalates with
    /// zero flips by construction), plus the bare exact engine.
    fn cascaded_engine() -> (CsdInferenceEngine, CsdInferenceEngine, Vec<Vec<usize>>) {
        let model = SequenceClassifier::new(ModelConfig::paper(), 21);
        let w = ModelWeights::from_model(&model);
        let exact = CsdInferenceEngine::new(&w, OptimizationLevel::FixedPoint);
        let windows: Vec<Vec<usize>> = (0..24).map(|k| seq(4 + (k * 13) % 50, k)).collect();
        let oracle = |s: &[usize]| exact.classify(s).is_positive;
        // Margin 0.003 (30 score units): these windows' screen scores
        // separate cleanly at 4992|5001, so a 30-unit band resolves the
        // confident windows and escalates the handful near the edge —
        // both cascade paths exercised.
        let (tier, report, _) =
            crate::cascade::build_cascade(&w, 4, 0.003, &windows, oracle).expect("screen packs");
        assert!(report.escalated > 0 && report.escalated < report.windows);
        (exact.clone().with_cascade(tier), exact, windows)
    }

    fn cascade_config(width: usize, mode: CascadeMode) -> StreamMuxConfig {
        StreamMuxConfig {
            lanes: Some(width),
            cascade: Some(mode),
            ..StreamMuxConfig::default()
        }
    }

    #[test]
    fn cascade_mux_matches_cascade_serial_and_never_flips_on_calibrated_windows() {
        let (engine, exact, windows) = cascaded_engine();
        for width in [1usize, 3, 16] {
            let mut mux = StreamMux::new(engine.clone(), cascade_config(width, CascadeMode::On));
            assert_eq!(mux.cascade_mode(), CascadeMode::On);
            for (k, w) in windows.iter().enumerate() {
                assert!(mux.submit(k as u64, k, w));
            }
            let verdicts = mux.drain();
            assert!(mux.is_idle());
            assert_eq!(verdicts.len(), windows.len(), "width {width}");
            let mut escalations = 0u64;
            for v in &verdicts {
                let w = &windows[v.stream as usize];
                let (reference, escalated) = engine.classify_cascade(w);
                assert_eq!(
                    v.classification, reference,
                    "width {width} stream {}: mux cascade disagrees with serial cascade",
                    v.stream
                );
                // Calibrated windows never flip the exact verdict.
                assert_eq!(
                    v.classification.is_positive,
                    exact.classify(w).is_positive,
                    "width {width} stream {}",
                    v.stream
                );
                escalations += u64::from(escalated);
            }
            let stats = mux.stats();
            assert_eq!(stats.escalated, escalations, "width {width}");
            assert_eq!(
                stats.screened,
                windows.len() as u64 - escalations,
                "width {width}"
            );
            assert_eq!(stats.cascade_flips, 0, "flips only count under Verify");
        }
    }

    #[test]
    fn cascade_off_is_the_single_tier_parity_anchor() {
        let (engine, exact, windows) = cascaded_engine();
        let mut mux = StreamMux::new(engine, cascade_config(4, CascadeMode::Off));
        assert_eq!(mux.cascade_mode(), CascadeMode::Off);
        for (k, w) in windows.iter().enumerate() {
            assert!(mux.submit(k as u64, k, w));
        }
        let verdicts = mux.drain();
        assert_eq!(verdicts.len(), windows.len());
        for v in &verdicts {
            assert_eq!(
                v.classification,
                exact.classify(&windows[v.stream as usize]),
                "stream {}",
                v.stream
            );
        }
        let stats = mux.stats();
        assert_eq!(
            (stats.screened, stats.escalated, stats.cascade_flips),
            (0, 0, 0)
        );
    }

    #[test]
    fn verify_mode_shadow_classifies_and_counts_zero_flips_when_calibrated() {
        let (engine, _, windows) = cascaded_engine();
        let mut mux = StreamMux::new(engine.clone(), cascade_config(4, CascadeMode::Verify));
        for (k, w) in windows.iter().enumerate() {
            assert!(mux.submit(k as u64, k, w));
        }
        let verdicts = mux.drain();
        assert_eq!(verdicts.len(), windows.len());
        for v in &verdicts {
            let (reference, _) = engine.classify_cascade(&windows[v.stream as usize]);
            assert_eq!(v.classification, reference, "stream {}", v.stream);
        }
        let stats = mux.stats();
        assert!(stats.screened > 0, "verify mode still screens");
        assert_eq!(stats.cascade_flips, 0, "calibrated windows cannot flip");
    }

    #[test]
    fn screen_only_forces_in_band_windows_and_counts_them() {
        let (engine, _, windows) = cascaded_engine();
        let tier = engine.cascade_shared().expect("fixture mounts a tier");
        let mut mux = StreamMux::new(engine.clone(), cascade_config(4, CascadeMode::On));
        mux.set_screen_only(true);
        assert!(mux.screen_only());
        for (k, w) in windows.iter().enumerate() {
            assert!(mux.submit(k as u64, k, w));
        }
        let verdicts = mux.drain();
        assert_eq!(verdicts.len(), windows.len(), "every window still verdicts");
        let mut forced = 0u64;
        for v in &verdicts {
            let (score, decision) = tier.screen(&windows[v.stream as usize]);
            match decision {
                Some(p) => assert_eq!(v.classification.is_positive, p, "out-of-band unchanged"),
                None => {
                    forced += 1;
                    assert_eq!(
                        v.classification.is_positive,
                        tier.band().force(score),
                        "in-band window takes the band-midpoint verdict"
                    );
                }
            }
        }
        let stats = mux.stats();
        assert!(forced > 0, "fixture has in-band windows by construction");
        assert_eq!(stats.forced_screen, forced);
        assert_eq!(stats.escalated, 0, "screen-only never escalates");
        assert!(stats.screen_only_ticks > 0);
        // Clearing the hint restores calibrated escalation for the same
        // windows.
        mux.set_screen_only(false);
        for (k, w) in windows.iter().enumerate() {
            assert!(mux.submit(k as u64, k, w));
        }
        let _ = mux.drain();
        let stats = mux.stats();
        assert_eq!(
            stats.escalated, forced,
            "hint cleared, band escalates again"
        );
        assert_eq!(stats.forced_screen, forced, "no further forcing");
    }

    #[test]
    fn sharded_screen_only_propagates_and_aggregates() {
        let (engine, _, windows) = cascaded_engine();
        let mut mux = ShardedStreamMux::new(
            engine,
            StreamMuxConfig {
                lanes: Some(2),
                shards: Some(2),
                cascade: Some(CascadeMode::On),
                ..StreamMuxConfig::default()
            },
        );
        assert!(!mux.screen_only());
        mux.set_screen_only(true);
        assert!(mux.screen_only());
        for (k, w) in windows.iter().enumerate() {
            assert!(mux.submit(k as u64, k, w));
        }
        let verdicts = mux.drain();
        assert_eq!(verdicts.len(), windows.len());
        let stats = mux.stats();
        assert!(stats.forced_screen > 0, "forcing crosses the coordinator");
        assert_eq!(stats.escalated, 0);
    }

    #[test]
    fn cascade_without_a_mounted_tier_falls_back_to_single_tier() {
        let e = engine(OptimizationLevel::FixedPoint);
        let mut mux = StreamMux::new(e.clone(), cascade_config(2, CascadeMode::On));
        assert_eq!(mux.cascade_mode(), CascadeMode::Off);
        let windows: Vec<Vec<usize>> = (0..5).map(|k| seq(6 + k * 3, k)).collect();
        for (k, w) in windows.iter().enumerate() {
            assert!(mux.submit(k as u64, k, w));
        }
        let verdicts = mux.drain();
        assert_eq!(verdicts.len(), windows.len());
        for v in &verdicts {
            assert_eq!(v.classification, e.classify(&windows[v.stream as usize]));
        }
        assert_eq!(mux.stats().screened, 0);
    }

    #[test]
    fn sharded_cascade_matches_serial_cascade_and_aggregates_counters() {
        let (engine, _, windows) = cascaded_engine();
        let serial: Vec<_> = windows.iter().map(|w| engine.classify_cascade(w)).collect();
        for shards in [1usize, 2, 4] {
            let mut mux = ShardedStreamMux::new(
                engine.clone(),
                StreamMuxConfig {
                    lanes: Some(2),
                    shards: Some(shards),
                    steal: Some(StealPolicy::Deterministic),
                    cascade: Some(CascadeMode::On),
                    ..StreamMuxConfig::default()
                },
            );
            let mut verdicts = Vec::new();
            for (k, w) in windows.iter().enumerate() {
                assert!(mux.submit(k as u64, k, w));
                if k % 5 == 0 {
                    mux.tick_into(&mut verdicts);
                }
            }
            mux.drain_into(&mut verdicts);
            assert!(mux.is_idle());
            assert_eq!(verdicts.len(), windows.len(), "{shards} shards");
            for v in &verdicts {
                assert_eq!(
                    v.classification, serial[v.stream as usize].0,
                    "{shards} shards, stream {}",
                    v.stream
                );
            }
            let stats = mux.stats();
            let escalations = serial.iter().filter(|(_, e)| *e).count() as u64;
            assert_eq!(stats.escalated, escalations, "{shards} shards");
            assert_eq!(
                stats.screened,
                windows.len() as u64 - escalations,
                "{shards} shards"
            );
        }
    }

    #[test]
    fn cascade_mux_survives_degraded_mode_with_identical_verdicts() {
        use csd_device::FaultConfig;
        let (engine, _, windows) = cascaded_engine();
        let mut mux = StreamMux::new(engine.clone(), cascade_config(4, CascadeMode::On));
        mux.arm_faults(FaultPlan::new(0xFA_17, FaultConfig::uniform(0.05)), 3);
        for (k, w) in windows.iter().enumerate() {
            assert!(mux.submit(k as u64, k, w));
        }
        let verdicts = mux.drain();
        assert_eq!(verdicts.len(), windows.len());
        for v in &verdicts {
            let (reference, _) = engine.classify_cascade(&windows[v.stream as usize]);
            assert_eq!(v.classification, reference, "stream {}", v.stream);
        }
    }
}
