//! CSD-based LSTM inference — the reproduced paper's core contribution.
//!
//! This crate implements the five-kernel FPGA design of "Empowering Data
//! Centers with Computational Storage Drive-Based Deep Learning Inference
//! Functionality to Combat Ransomware" (DSN-S 2024, §III):
//!
//! ```text
//!                ┌────────────────────┐ DATAFLOW  ┌──────────────────────┐
//!  sequence ───▶ │ kernel_preprocess  │──x_t×4──▶ │ kernel_gates (i) CU  │──┐
//!                │ (embedding lookup, │           │ kernel_gates (f) CU  │──┼─▶ kernel_hidden_state
//!                │  prefetches t+1)   │           │ kernel_gates (o) CU  │──┤   (C_t, h_t, FC head)
//!                └────────────────────┘           │ kernel_gates (C') CU │──┘        │
//!                        ▲                        └──────────────────────┘     h_{t−1}×4 copies
//!                        └──────────────────────────────────────────────────────────┘
//! ```
//!
//! - [`opt`] — the three optimization levels of Fig. 3: `Vanilla`
//!   (kernel parallelization only), `IiOptimized` (`PIPELINE II=1`,
//!   `UNROLL`, `ARRAY_PARTITION`), and `FixedPoint` (decimal 10^6 fixed
//!   point on top of the II recipe).
//! - [`kernels`] — functional implementations *and* HLS hardware specs for
//!   `kernel_preprocess`, the four `kernel_gates` compute units, and
//!   `kernel_hidden_state`.
//! - [`weights`] — host-side weight ingest and 10^6 quantization (§III-D).
//! - [`engine`] — [`CsdInferenceEngine`]: bit-faithful classification;
//!   the default software hot path fuses the four gate matrices into one
//!   `4H×Z` matvec over preallocated scratch, with the per-CU
//!   formulation (serial or on the persistent worker pool) preserved for
//!   hardware-mirroring fidelity. Batches run the *lane-batched* engine:
//!   many sequences advance in lockstep as structure-of-arrays lane
//!   blocks, turning the gate matvec into a matrix–matrix kernel while
//!   staying bit-identical to the serial path at every level.
//! - [`scratch`] — the preallocated buffers behind the zero-allocation
//!   steady state, including the lane-block scratch.
//! - [`pool`] — the process-wide persistent worker pool backing
//!   [`classify_batch`](engine::CsdInferenceEngine::classify_batch) and
//!   the parallel-CU path, with scoped (borrowing) job submission.
//! - [`timing`] — regenerates Fig. 3 and the FPGA row of Table I from the
//!   HLS latency model.
//! - [`schedule`] — the §III-C software pipeline (preprocess prefetching
//!   item `t+1` under the compute of item `t`), plus the length-bucketing
//!   lane schedule for ragged batches.
//! - [`mixed`] — mixed-precision inference, the paper's §VI future-work
//!   direction implemented and measured.
//! - [`monitor`] — the continuous-protection wrapper: rolling window,
//!   stride classification, alert debouncing (§I's background execution).
//! - [`stream`] — the continuous-batching stream multiplexer: thousands
//!   of process streams multiplexed onto one lane block with
//!   iteration-level admission/retirement (a retiring window's slot
//!   refills the same tick), backpressure, and tick-level stats; plus
//!   the [`FleetMonitor`] that runs the monitor semantics at fleet scale.
//! - [`fleet`] — multi-device scaling (§II's "multiple devices within a
//!   single node").
//! - [`bitstream`] — the `v++` link step: schedules the design against a
//!   device and emits the [`Xclbin`] image the host programs.
//! - [`host`] — the host program against the simulated SmartSSD runtime
//!   (buffer allocation, weight migration, P2P sequence loading, kernel
//!   enqueues).
//!
//! # Example
//!
//! ```rust
//! use csd_accel::{CsdInferenceEngine, OptimizationLevel};
//! use csd_nn::{ModelConfig, ModelWeights, SequenceClassifier};
//!
//! let model = SequenceClassifier::new(ModelConfig::paper(), 7);
//! let weights = ModelWeights::from_model(&model);
//! let engine = CsdInferenceEngine::new(&weights, OptimizationLevel::FixedPoint);
//! let seq: Vec<usize> = (0..100).map(|i| (i * 13) % 278).collect();
//! // The on-device fixed-point result tracks the offline f64 model.
//! let p_fpga = engine.classify(&seq).probability;
//! let p_f64 = model.predict_proba(&seq);
//! assert!((p_fpga - p_f64).abs() < 0.05);
//! ```

// `deny`, not `forbid`: the packed gate matvec carries one narrowly
// scoped `allow` for its runtime-dispatched `#[target_feature]` copy
// (see `weights::PackedGatesFx`); everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bitstream;
pub mod cascade;
pub mod engine;
pub mod env;
pub mod fleet;
pub mod host;
pub mod kernels;
pub mod mixed;
pub mod monitor;
pub mod mpsc;
pub mod opt;
pub mod pool;
pub mod schedule;
pub mod scratch;
pub mod shard;
pub mod stream;
pub mod timing;
pub mod weights;

pub use bitstream::{link, LinkError, Xclbin};
pub use cascade::{
    build_cascade, calibrate_band, CalibrationReport, CascadeBand, CascadeMode, CascadeTier,
    ScreenGates, ScreenModel, SCREEN_MODEL_VERSION,
};
pub use engine::{Classification, CsdInferenceEngine, GatePath, ScreenTierReport, TierReport};
pub use fleet::{CsdFleet, FleetPolicy, FleetScan, FleetStats};
pub use host::{DeviceRun, HostError, HostProgram, RecoveryPolicy, RecoveryStats};
pub use kernels::LstmDims;
pub use mixed::MixedPrecisionEngine;
pub use monitor::{Alert, MonitorConfig, MonitorPool, RollingWindow, StreamMonitor};
pub use mpsc::{AdmissionHandle, AdmissionQueue};
pub use opt::OptimizationLevel;
pub use pool::{PoolError, WorkerPool, WorkerPoolBuilder};
pub use schedule::{Bottleneck, LaneBucket, LaneSchedule, PipelineSchedule, ScheduleEvent};
pub use scratch::{EngineScratch, InferenceScratch, LaneScratch, ScreenLaneScratch};
pub use shard::{ShardedStreamMux, StealPolicy, StreamInjector};
pub use stream::{
    FleetMonitor, FleetResidentBytes, MuxStats, OverflowPolicy, StreamLoss, StreamMux,
    StreamMuxConfig, Verdict,
};
pub use timing::{fig3, table1_fpga_row, Fig3Row, KernelBreakdown};
pub use weights::{
    i16_decline_count, FusedGates, I16Decline, LaneGatesFx, PackedGatesFx, PackedGatesI16,
    QuantizedWeights, LANE_MAX_STEPS,
};
