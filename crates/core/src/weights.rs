//! Host-side weight ingest and 10^6 quantization.
//!
//! §III-D: "We multiply the floating-point values of weights, biases, and
//! embeddings by this factor before the host initialization shown in
//! Fig. 2, converting them to integers while preserving significant
//! digits." [`QuantizedWeights`] performs that conversion from the
//! [`csd_nn::ModelWeights`] export, keeping both the float and the
//! fixed-point views so every optimization level can execute functionally.

use csd_fxp::{row_exact_in_f64, row_fits_i16_mac, Fx6, EXACT_F64_INT};
use csd_nn::ModelWeights;
use csd_tensor::{Matrix, Scalar, Vector};
use serde::{Deserialize, Serialize};

use crate::kernels::LstmDims;

/// The four per-gate `H × Z` matrices stacked row-wise into one `4H × Z`
/// matrix (TF gate order `i f c o`, gate `g` owning rows `g·H..(g+1)·H`),
/// with the biases stacked the same way.
///
/// One matvec against this matrix computes all four gate pre-activations
/// of a timestep, replacing four separate matvec launches. Each fused row
/// is byte-identical to the corresponding per-gate row, so results match
/// the per-gate path bit for bit in both precisions.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedGates<T> {
    /// Stacked `4H × Z` gate weights.
    pub w: Matrix<T>,
    /// Stacked `4H` gate biases.
    pub b: Vector<T>,
}

fn fuse_gates<T: Scalar>(ws: &[Matrix<T>; 4], bs: &[Vector<T>; 4]) -> FusedGates<T> {
    let (h, z) = (ws[0].rows(), ws[0].cols());
    let mut w_flat = Vec::with_capacity(4 * h * z);
    let mut b_flat = Vec::with_capacity(4 * h);
    for g in 0..4 {
        assert_eq!((ws[g].rows(), ws[g].cols()), (h, z), "gate shape mismatch");
        assert_eq!(bs[g].len(), h, "gate bias length mismatch");
        w_flat.extend_from_slice(ws[g].as_flat());
        b_flat.extend_from_slice(bs[g].as_slice());
    }
    FusedGates {
        w: Matrix::from_flat(4 * h, z, w_flat),
        b: Vector::from(b_flat),
    }
}

/// The fused fixed-point gate matrix repacked into `i32` raw values — the
/// software analogue of mapping the gate MACs onto the FPGA's narrow DSP
/// multipliers instead of a wide soft multiplier.
///
/// Quantized LSTM weights are far below `2^31` in raw 10^6-scaled form,
/// and every gate-input column is either a bounded activation (`|h| ≤ 1`,
/// so `|raw| ≤ 10^6`) or a quantized embedding, so each product fits a
/// 32×32→64-bit multiply and a whole `Z`-term row sum accumulates exactly
/// in an `i64`. Integer addition is associative and exact when nothing
/// overflows, so the narrow row sum equals the wide `i128` sum bit for
/// bit; [`PackedGatesFx::pack`] refuses weights that cannot guarantee
/// this, and [`PackedGatesFx::matvec_into`] refuses inputs outside the
/// proven range, in both cases falling back to the wide path.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedGatesFx {
    /// Row-major `rows × cols` raw weights, narrowed to `i32`.
    w: Vec<i32>,
    rows: usize,
    cols: usize,
    /// Largest `|raw|` of an input element for which every partial sum
    /// provably stays inside `i64`.
    z_limit: i64,
    /// Whether this CPU can run the AVX2-compiled copy of the row loop
    /// (detected once at pack time). Same arithmetic either way; the
    /// baseline x86-64 target lacks the signed 32×32→64 SIMD multiply,
    /// so the vector body must be compiled — and gated — explicitly.
    use_avx2: bool,
}

impl PackedGatesFx {
    /// Narrows a fused gate matrix, or `None` when some weight exceeds
    /// `i32` or is so large that no useful input range stays exact.
    pub fn pack(fused: &FusedGates<Fx6>) -> Option<Self> {
        let (rows, cols) = (fused.w.rows(), fused.w.cols());
        let mut w = Vec::with_capacity(rows * cols);
        let mut max_abs: i64 = 1;
        for &v in fused.w.as_flat() {
            let raw = v.raw();
            w.push(i32::try_from(raw).ok()?);
            max_abs = max_abs.max(raw.abs());
        }
        let z_limit = (i64::MAX / max_abs / cols.max(1) as i64).min(i32::MAX as i64);
        // An engine input always holds |h| ≤ 1; a limit below one means
        // even that cannot be guaranteed exact, so don't pack at all.
        if z_limit < Fx6::SCALE {
            return None;
        }
        Some(Self {
            w,
            rows,
            cols,
            z_limit,
            use_avx2: avx2_available(),
        })
    }

    /// Fused matvec over narrow MACs: `out[r] = rescale(Σ w[r][k]·z[k])`.
    ///
    /// Returns `false` — leaving `out` untouched — when any `|z|` exceeds
    /// the exactness bound, so the caller can fall back to the wide path.
    /// `z_narrow` is caller scratch for the narrowed input (resized here).
    ///
    /// # Panics
    ///
    /// Panics when `z` or `out` disagree with the packed shape.
    pub fn matvec_into(&self, z: &[Fx6], z_narrow: &mut Vec<i32>, out: &mut [Fx6]) -> bool {
        assert_eq!(z.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        z_narrow.clear();
        for v in z {
            let raw = v.raw();
            if raw.abs() > self.z_limit {
                return false;
            }
            z_narrow.push(raw as i32);
        }
        #[cfg(target_arch = "x86_64")]
        if self.use_avx2 {
            // SAFETY: `use_avx2` is only set when the running CPU
            // reported AVX2 support at pack time.
            #[allow(unsafe_code)]
            unsafe {
                self.rows_avx2(z_narrow, out)
            };
            return true;
        }
        matvec_rows(&self.w, self.cols, z_narrow, out);
        true
    }

    /// The row loop compiled with AVX2 enabled, so the widening MACs
    /// vectorize (`vpmuldq`). Same source, same integer results.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(unsafe_code)]
    unsafe fn rows_avx2(&self, z_narrow: &[i32], out: &mut [Fx6]) {
        matvec_rows(&self.w, self.cols, z_narrow, out);
    }

    /// Gate-table fused matvec: `out[r] = rescale(table_row[r] +
    /// Σ_{k<hcols} w[r][k]·h[k])` — the serial twin of the lane kernel's
    /// table path, skipping the embedding gather, the `[h|x]` concat,
    /// the `E` input columns, and the separate bias add. Exact by the
    /// same reassociation argument: `table_row[r]` is the integer value
    /// of the folded-out terms, and integer addition is associative
    /// when nothing overflows (the partial row sum is bounded by the
    /// full-row `z_limit` proof; the table entry is below `2^52`).
    ///
    /// Returns `false` — leaving `out` untouched — when any `|h|`
    /// exceeds the exactness bound, mirroring [`Self::matvec_into`].
    ///
    /// # Panics
    ///
    /// Panics when the slice shapes disagree with the packed matrix.
    pub fn matvec_table_into(&self, table_row: &[i64], h: &[Fx6], out: &mut [Fx6]) -> bool {
        let hcols = h.len();
        assert!(hcols <= self.cols, "more recurrent columns than packed");
        assert_eq!(table_row.len(), self.rows, "table row length mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        if h.iter().any(|v| v.raw().abs() > self.z_limit) {
            return false;
        }
        crate::kernels::gates::fused_preact_table_fx(table_row, &self.w, self.cols, hcols, h, out);
        true
    }
}

/// Whether the AVX2-compiled row loop may run on this machine.
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Shared body of the narrow-MAC row loop: `out[r] = rescale(Σ w[r]·z)`.
/// Fixed-width inner blocks keep the reduction vectorizable; integer
/// addition makes any grouping exact, so every compilation of this loop
/// produces identical raw sums.
#[inline(always)]
fn matvec_rows(w: &[i32], cols: usize, z_narrow: &[i32], out: &mut [Fx6]) {
    for (row, o) in w.chunks_exact(cols).zip(out.iter_mut()) {
        let mut acc: i64 = 0;
        let mut wb = row.chunks_exact(8);
        let mut zb = z_narrow.chunks_exact(8);
        for (ws, zs) in wb.by_ref().zip(zb.by_ref()) {
            let mut block: i64 = 0;
            for k in 0..8 {
                block += ws[k] as i64 * zs[k] as i64;
            }
            acc += block;
        }
        for (&wv, &zv) in wb.remainder().iter().zip(zb.remainder()) {
            acc += wv as i64 * zv as i64;
        }
        *o = Fx6::from_raw(div_round_i64(acc, Fx6::SCALE));
    }
}

/// Rounded division, half-away-from-zero — the same correction
/// `Fixed::dot` applies to its wide accumulator.
pub(crate) fn div_round_i64(num: i64, den: i64) -> i64 {
    debug_assert!(den > 0);
    let half = den / 2;
    if num >= 0 {
        (num + half) / den
    } else {
        (num - half) / den
    }
}

/// Longest sequence (timesteps from a zero state) the lane-batched
/// fixed-point path accepts.
///
/// The lane kernels hold raw values as exact integers in `f64`. Each
/// timestep grows the cell state by at most `SCALE` in raw magnitude
/// (`|C_t| ≤ |round(f·C/S)| + |round(i·C'/S)| ≤ |C_{t−1}| + SCALE`, since
/// the sigmoid gates are ≤ `SCALE` and the candidate is a softsign
/// output), so after `t` steps `|C| ≤ t · SCALE`. The softsign kernel
/// needs `|C|·SCALE + den/2 < 2^53`, i.e. `|C| ≤ ~8·10^9 = 8000·SCALE`.
/// Longer sequences fall back to the serial path (bit-identical anyway).
pub const LANE_MAX_STEPS: usize = 8_000;

/// The fused fixed-point gate parameters re-encoded for the lane-batched
/// kernels in [`csd_tensor::lanes`]: every raw integer stored as an exact
/// `f64`, biases pre-multiplied by `SCALE` so they fold into the matmul
/// accumulator before the rescale (`round(a/S) + b == round((a + b·S)/S)`
/// exactly, because `b·S` is a multiple of `S`).
///
/// [`LaneGatesFx::pack`] is where the exactness contract is *proven*, not
/// assumed: it rejects (returns `None`) any weight set whose worst-case
/// pre-activation accumulator could leave the exact-integer range of
/// `f64`. The engine then routes rejected models through the serial
/// fixed-point path, so lane batching never changes a single output bit.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneGatesFx {
    /// Row-major `rows × cols` raw weights as exact `f64` values.
    w: Vec<f64>,
    /// Row-major `rows × hidden` recurrent-column weights (`W_h`), the
    /// contiguous repack the gate-table matmul iterates over.
    w_h: Vec<f64>,
    /// Per-row raw bias times `SCALE`, as exact `f64` values.
    bias_scaled: Vec<f64>,
    /// `vocab × embed` raw embedding table as exact `f64` values — the
    /// lane gather source (column `hidden + e` of the gate input).
    embedding: Vec<f64>,
    /// The precomputed **input-gate table**, `vocab × rows` row-major:
    /// `table[item·rows + r] = Σ_e w[r][hidden+e]·emb[item][e] +
    /// b_r·SCALE`. One row gather replaces the per-timestep embedding
    /// copy plus the `E` input columns of the matmul.
    table: Vec<f64>,
    /// The same table as raw `i64`, for the serial fused path.
    table_i64: Vec<i64>,
    rows: usize,
    cols: usize,
    hidden: usize,
}

impl LaneGatesFx {
    /// Re-encodes the fused gates and embedding table, or `None` when the
    /// exactness proof fails.
    ///
    /// The proof obligations, per row `r` of the fused matrix:
    ///
    /// 1. every embedding raw value is an exact `f64` integer (< `2^52`);
    /// 2. `Σ_k |w[r][k]| · zbound[k] + |b_r|·SCALE + SCALE/2 < 2^52`,
    ///    where `zbound[k] = SCALE` for recurrent columns (`|h| ≤ 1` is
    ///    an invariant of the update kernel: `h = o ∗ softsign(C)` with
    ///    `o ≤ 1`) and the column's largest `|raw|` for embedding columns.
    ///
    /// Under (2) every FMA partial sum is an exact integer, so the tiled
    /// SIMD matmul, the scalar fallback, and the reference `i64`/`i128`
    /// accumulation all produce identical raw gate pre-activations.
    pub fn pack(fused: &FusedGates<Fx6>, embedding: &Matrix<Fx6>, hidden: usize) -> Option<Self> {
        let (rows, cols) = (fused.w.rows(), fused.w.cols());
        if cols != hidden + embedding.cols() {
            return None;
        }
        let mut zbound = vec![Fx6::SCALE; cols];
        for (k, zb) in zbound.iter_mut().enumerate().skip(hidden) {
            let col = k - hidden;
            let mut m: i64 = 1;
            for r in 0..embedding.rows() {
                let raw = embedding.get(r, col).raw();
                if raw.abs() >= EXACT_F64_INT {
                    return None;
                }
                m = m.max(raw.abs());
            }
            *zb = m;
        }
        let mut row_raw = vec![0i64; cols];
        for r in 0..rows {
            for (k, slot) in row_raw.iter_mut().enumerate() {
                *slot = fused.w.get(r, k).raw();
            }
            if !row_exact_in_f64(&row_raw, &zbound, fused.b[r].raw(), Fx6::SCALE) {
                return None;
            }
        }
        // Fold the embedding columns (plus the scaled bias) into the
        // per-item input-gate table. Every entry is a partial sum of a
        // row accumulator the proof above already bounded below 2^52,
        // so it is exact in f64 — no additional obligation.
        let vocab = embedding.rows();
        let mut table_i64 = Vec::with_capacity(vocab * rows);
        for item in 0..vocab {
            for r in 0..rows {
                let mut acc = fused.b[r].raw() as i128 * Fx6::SCALE as i128;
                for e in 0..embedding.cols() {
                    acc += fused.w.get(r, hidden + e).raw() as i128
                        * embedding.get(item, e).raw() as i128;
                }
                table_i64.push(acc as i64);
            }
        }
        let mut w_h = Vec::with_capacity(rows * hidden);
        for r in 0..rows {
            for k in 0..hidden {
                w_h.push(fused.w.get(r, k).raw() as f64);
            }
        }
        Some(Self {
            w: fused.w.as_flat().iter().map(|v| v.raw() as f64).collect(),
            w_h,
            bias_scaled: fused
                .b
                .iter()
                .map(|v| (v.raw() as i128 * Fx6::SCALE as i128) as f64)
                .collect(),
            embedding: embedding.as_flat().iter().map(|v| v.raw() as f64).collect(),
            table: table_i64.iter().map(|&x| x as f64).collect(),
            table_i64,
            rows,
            cols,
            hidden,
        })
    }

    /// Row-major raw weights, `f64`-encoded.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Per-row `bias · SCALE`, `f64`-encoded.
    pub fn bias_scaled(&self) -> &[f64] {
        &self.bias_scaled
    }

    /// Raw embedding table, `f64`-encoded, `vocab × embed` row-major.
    pub fn embedding(&self) -> &[f64] {
        &self.embedding
    }

    /// Recurrent-column weights `W_h`, row-major `rows × hidden`.
    pub fn w_hidden(&self) -> &[f64] {
        &self.w_h
    }

    /// The input-gate table, `vocab × rows` row-major, `f64`-encoded.
    pub fn gate_table(&self) -> &[f64] {
        &self.table
    }

    /// One raw input-gate table row: the precomputed
    /// `W_x·e(item) + b·SCALE` for every fused gate row.
    ///
    /// # Panics
    ///
    /// Panics when `item` is outside the vocabulary.
    pub fn table_row_i64(&self, item: usize) -> &[i64] {
        &self.table_i64[item * self.rows..(item + 1) * self.rows]
    }

    /// Fused gate rows (`4H`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Gate input columns (`Z = H + E`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Recurrent columns (`H`).
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Vocabulary size (input-gate table rows).
    pub fn vocab(&self) -> usize {
        self.table_i64.len() / self.rows.max(1)
    }
}

/// The fused fixed-point gate matrix narrowed all the way to `i16`
/// weights with `i32` row sums — the `vpmaddwd` MAC tier, which retires
/// twice the multiply-adds per vector instruction of the `f64` FMA path.
///
/// [`PackedGatesI16::pack`] extends the per-row magnitude-bound proof of
/// [`LaneGatesFx::pack`] to the narrower containers via
/// [`csd_fxp::row_fits_i16_mac`]. At the paper's 10^6 decimal scale the
/// proof **always fails** — the recurrent columns carry `|h| ≤ 1`, raw
/// `10^6 ≫ 32767` — so the engine keeps the `f64`-FMA/`i32` paths for
/// the shipped model (the documented fallback contract) while the kernel
/// stands ready for lower-scale tiers (e.g. a 10^3 first-pass screen,
/// ROADMAP item 2).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedGatesI16 {
    /// Row-major `rows × cols` raw weights, narrowed to `i16`.
    w: Vec<i16>,
    rows: usize,
    cols: usize,
}

/// Why a [`PackedGatesI16::pack_explain`] call declined: the structured
/// form of the `row_fits_i16_mac` failure that used to be silent (one
/// pinned test aside). The engine surfaces the first decline per process
/// as a one-shot log line and counts every decline in
/// [`i16_decline_count`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct I16Decline {
    /// Total fused rows examined.
    pub rows: usize,
    /// Gate input columns.
    pub cols: usize,
    /// Rows that failed the `i16×i16→i32` proof.
    pub rows_failed: usize,
    /// First failing row index.
    pub first_failed_row: usize,
    /// Largest `|weight raw|` seen (the `i16` container bound is 32767).
    pub max_weight_abs: i64,
    /// Largest per-column input bound (`zbound`) seen.
    pub max_zbound: i64,
}

impl std::fmt::Display for I16Decline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "i16 MAC pack declined: {}/{} rows fail row_fits_i16_mac \
             (first row {}, max |w|={}, max zbound={}, i16 bound 32767)",
            self.rows_failed,
            self.rows,
            self.first_failed_row,
            self.max_weight_abs,
            self.max_zbound
        )
    }
}

/// Process-wide count of `i16` pack declines (every model whose rows
/// failed the narrow-MAC proof since process start).
pub fn i16_decline_count() -> u64 {
    I16_DECLINES.load(std::sync::atomic::Ordering::Relaxed)
}

static I16_DECLINES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static I16_DECLINE_LOGGED: std::sync::Once = std::sync::Once::new();

fn record_i16_decline(decline: &I16Decline) {
    I16_DECLINES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    I16_DECLINE_LOGGED.call_once(|| {
        eprintln!("csd-accel: {decline} — engine keeps the f64-FMA/i32 paths (further declines counted, not logged)");
    });
}

impl PackedGatesI16 {
    /// Narrows a fused gate matrix against the caller's per-column input
    /// bound, or `None` when any row fails the `i16×i16→i32` proof.
    /// `zbound[k]` must bound `|z[k].raw()|` over every input the caller
    /// will ever present (the engine passes the same bounds
    /// [`LaneGatesFx::pack`] derives).
    pub fn pack(fused: &FusedGates<Fx6>, zbound: &[i64]) -> Option<Self> {
        Self::pack_explain(fused, zbound).ok()
    }

    /// [`Self::pack`] with a structured decline: on failure, returns
    /// *which* rows broke the proof and how far outside the containers
    /// they were, bumps the process-wide decline counter, and emits a
    /// one-shot log line for the first decline in the process.
    ///
    /// # Errors
    ///
    /// Returns [`I16Decline`] when `zbound` disagrees with the matrix
    /// shape or any row fails [`row_fits_i16_mac`].
    pub fn pack_explain(fused: &FusedGates<Fx6>, zbound: &[i64]) -> Result<Self, I16Decline> {
        let (rows, cols) = (fused.w.rows(), fused.w.cols());
        let mut row_raw = vec![0i64; rows * cols];
        for r in 0..rows {
            for k in 0..cols {
                row_raw[r * cols + k] = fused.w.get(r, k).raw();
            }
        }
        Self::pack_rows_raw(rows, cols, &row_raw, zbound)
    }

    /// The shared narrow-pack body over raw `i64` rows — the entry the
    /// screen tier uses directly (its weights live at a screen scale,
    /// not `Fx6`'s). Proves every row via [`row_fits_i16_mac`] against
    /// `zbound`, recording and describing declines.
    ///
    /// # Errors
    ///
    /// Returns [`I16Decline`] when shapes disagree or any row fails the
    /// proof.
    pub fn pack_rows_raw(
        rows: usize,
        cols: usize,
        w_raw: &[i64],
        zbound: &[i64],
    ) -> Result<Self, I16Decline> {
        let mut decline = I16Decline {
            rows,
            cols,
            rows_failed: 0,
            first_failed_row: 0,
            max_weight_abs: w_raw.iter().map(|&x| x.abs()).max().unwrap_or(0),
            max_zbound: zbound.iter().map(|&x| x.abs()).max().unwrap_or(0),
        };
        if w_raw.len() != rows * cols || zbound.len() != cols {
            decline.rows_failed = rows;
            record_i16_decline(&decline);
            return Err(decline);
        }
        let mut first_failed = None;
        for r in 0..rows {
            if !row_fits_i16_mac(&w_raw[r * cols..(r + 1) * cols], zbound) {
                decline.rows_failed += 1;
                first_failed.get_or_insert(r);
            }
        }
        if let Some(first) = first_failed {
            decline.first_failed_row = first;
            record_i16_decline(&decline);
            return Err(decline);
        }
        Ok(Self {
            w: w_raw.iter().map(|&x| x as i16).collect(),
            rows,
            cols,
        })
    }

    /// Row-major raw weights, narrowed to `i16`.
    pub fn weights(&self) -> &[i16] {
        &self.w
    }

    /// Fused gate rows (`4H`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Gate input columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Lane-batched raw row sums over the narrow MAC: delegates to
    /// [`csd_tensor::lanes::matmul_fx_lanes_i16`]. `out` receives
    /// unrescaled `Σ w·z` per row — exact under the pack-time proof.
    ///
    /// # Panics
    ///
    /// Panics when the slice shapes disagree with the packed matrix.
    pub fn matmul_lanes_into(&self, z: &[i16], width: usize, out: &mut [i32]) {
        csd_tensor::lanes::matmul_fx_lanes_i16(&self.w, self.rows, self.cols, z, width, out);
    }
}

/// The full parameter set in kernel-ready layout: per-gate `H × Z`
/// matrices over `[h | x]` columns (TF gate order `i f c o`), in both f64
/// and 10^6-scaled fixed point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedWeights {
    dims: LstmDims,
    /// Embedding table, float view.
    pub embedding_f64: Matrix<f64>,
    /// Embedding table, quantized view (the buffer DMA'd to FPGA DRAM).
    pub embedding_fx: Matrix<Fx6>,
    /// Per-gate combined weights, float view.
    pub gate_w_f64: [Matrix<f64>; 4],
    /// Per-gate combined weights, quantized view.
    pub gate_w_fx: [Matrix<Fx6>; 4],
    /// Per-gate biases, float view.
    pub gate_b_f64: [Vector<f64>; 4],
    /// Per-gate biases, quantized view.
    pub gate_b_fx: [Vector<Fx6>; 4],
    /// FC head weights, float view.
    pub fc_w_f64: Vector<f64>,
    /// FC head weights, quantized view.
    pub fc_w_fx: Vector<Fx6>,
    /// FC head bias, float view.
    pub fc_b_f64: f64,
    /// FC head bias, quantized view.
    pub fc_b_fx: Fx6,
}

impl QuantizedWeights {
    /// Ingests an exported weight set, rebuilding the combined per-gate
    /// matrices from the TensorFlow-convention `kernel`/`recurrent`
    /// arrays, then quantizing everything at scale 10^6.
    ///
    /// # Panics
    ///
    /// Panics if array lengths disagree with the export's config.
    pub fn from_model_weights(w: &ModelWeights) -> Self {
        let dims = LstmDims {
            vocab: w.config.vocab,
            embed: w.config.embed_dim,
            hidden: w.config.hidden,
        };
        let (v, x, h) = (dims.vocab, dims.embed, dims.hidden);
        assert_eq!(w.embedding.len(), v * x, "embedding size mismatch");
        assert_eq!(w.lstm_kernel.len(), x * 4 * h, "kernel size mismatch");
        assert_eq!(w.lstm_recurrent.len(), h * 4 * h, "recurrent size mismatch");
        assert_eq!(w.lstm_bias.len(), 4 * h, "bias size mismatch");
        assert_eq!(w.fc_weights.len(), h, "fc size mismatch");

        let embedding_f64 = Matrix::from_f64_flat(v, x, &w.embedding);
        let z = h + x;
        let gate_w_f64: [Matrix<f64>; 4] = std::array::from_fn(|g| {
            let mut m = Matrix::zeros(h, z);
            for j in 0..h {
                for hc in 0..h {
                    *m.get_mut(j, hc) = w.lstm_recurrent[hc * 4 * h + g * h + j];
                }
                for xc in 0..x {
                    *m.get_mut(j, h + xc) = w.lstm_kernel[xc * 4 * h + g * h + j];
                }
            }
            m
        });
        let gate_b_f64: [Vector<f64>; 4] =
            std::array::from_fn(|g| Vector::from(w.lstm_bias[g * h..(g + 1) * h].to_vec()));
        let fc_w_f64 = Vector::from(w.fc_weights.clone());

        Self {
            dims,
            embedding_fx: Matrix::from_f64_flat(v, x, &embedding_f64.to_f64_flat()),
            gate_w_fx: std::array::from_fn(|g| {
                Matrix::from_f64_flat(h, z, &gate_w_f64[g].to_f64_flat())
            }),
            gate_b_fx: std::array::from_fn(|g| Vector::from_f64_slice(&gate_b_f64[g].to_f64_vec())),
            fc_w_fx: Vector::from_f64_slice(&fc_w_f64.to_f64_vec()),
            fc_b_fx: Fx6::from_f64(w.fc_bias),
            embedding_f64,
            gate_w_f64,
            gate_b_f64,
            fc_w_f64,
            fc_b_f64: w.fc_bias,
        }
    }

    /// The model dimensions.
    pub fn dims(&self) -> LstmDims {
        self.dims
    }

    /// Builds the fused `4H × Z` gate matrix, float view. Computed on
    /// demand (typically once, at engine construction) so the serialized
    /// form of this struct stays the per-gate layout the device consumes.
    pub fn fused_f64(&self) -> FusedGates<f64> {
        fuse_gates(&self.gate_w_f64, &self.gate_b_f64)
    }

    /// Builds the fused `4H × Z` gate matrix, quantized view.
    pub fn fused_fx(&self) -> FusedGates<Fx6> {
        fuse_gates(&self.gate_w_fx, &self.gate_b_fx)
    }

    /// Bytes occupied by the quantized parameter buffers on the device
    /// (i64 per parameter), for buffer sizing in the host program.
    pub fn device_bytes(&self) -> u64 {
        let params = self.dims.vocab * self.dims.embed
            + 4 * (self.dims.hidden * self.dims.z() + self.dims.hidden)
            + self.dims.hidden
            + 1;
        (params * std::mem::size_of::<i64>()) as u64
    }

    /// Serializes the quantized parameters into the byte image the host
    /// DMA's to FPGA DRAM: a 16-byte header (magic, vocab, embed, hidden)
    /// followed by every raw `i64` little-endian, in kernel consumption
    /// order (embedding | W_i W_f W_c W_o | b_i b_f b_c b_o | fc_w | fc_b).
    pub fn to_device_image(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.device_bytes() as usize);
        out.extend_from_slice(b"CSDW");
        out.extend_from_slice(&(self.dims.vocab as u32).to_le_bytes());
        out.extend_from_slice(&(self.dims.embed as u32).to_le_bytes());
        out.extend_from_slice(&(self.dims.hidden as u32).to_le_bytes());
        let mut push = |fx: Fx6| out.extend_from_slice(&fx.raw().to_le_bytes());
        for &v in self.embedding_fx.as_flat() {
            push(v);
        }
        for g in 0..4 {
            for &v in self.gate_w_fx[g].as_flat() {
                push(v);
            }
        }
        for g in 0..4 {
            for &v in self.gate_b_fx[g].as_slice() {
                push(v);
            }
        }
        for &v in self.fc_w_fx.as_slice() {
            push(v);
        }
        push(self.fc_b_fx);
        out
    }

    /// Parses a device image back into raw fixed-point values (used by
    /// tests to prove the DMA buffer is faithful).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn parse_device_image(image: &[u8]) -> Result<(LstmDims, Vec<Fx6>), String> {
        if image.len() < 16 {
            return Err("image shorter than the header".to_string());
        }
        if &image[0..4] != b"CSDW" {
            return Err("bad magic".to_string());
        }
        let word =
            |at: usize| u32::from_le_bytes(image[at..at + 4].try_into().expect("4 bytes")) as usize;
        let dims = LstmDims {
            vocab: word(4),
            embed: word(8),
            hidden: word(12),
        };
        let body = &image[16..];
        if !body.len().is_multiple_of(8) {
            return Err("payload not i64-aligned".to_string());
        }
        let expected = dims.vocab * dims.embed
            + 4 * (dims.hidden * (dims.hidden + dims.embed))
            + 4 * dims.hidden
            + dims.hidden
            + 1;
        if body.len() / 8 != expected {
            return Err(format!(
                "expected {expected} parameters, found {}",
                body.len() / 8
            ));
        }
        let values = body
            .chunks_exact(8)
            .map(|c| Fx6::from_raw(i64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect();
        Ok((dims, values))
    }

    /// Worst-case quantization error introduced across all parameters.
    pub fn max_quantization_error(&self) -> f64 {
        let mut worst: f64 = self.embedding_f64.max_abs_diff(&Matrix::from_f64_flat(
            self.dims.vocab,
            self.dims.embed,
            &self.embedding_fx.to_f64_flat(),
        ));
        for g in 0..4 {
            let dq = Matrix::from_f64_flat(
                self.dims.hidden,
                self.dims.z(),
                &self.gate_w_fx[g].to_f64_flat(),
            );
            worst = worst.max(self.gate_w_f64[g].max_abs_diff(&dq));
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_nn::{ModelConfig, SequenceClassifier};

    fn weights() -> QuantizedWeights {
        let model = SequenceClassifier::new(ModelConfig::paper(), 33);
        QuantizedWeights::from_model_weights(&ModelWeights::from_model(&model))
    }

    #[test]
    fn dims_match_paper() {
        let q = weights();
        assert_eq!(q.dims(), LstmDims::paper());
        assert_eq!(q.gate_w_f64[0].rows(), 32);
        assert_eq!(q.gate_w_f64[0].cols(), 40);
    }

    #[test]
    fn quantization_error_within_half_lsb() {
        let q = weights();
        assert!(q.max_quantization_error() <= 0.5e-6 + 1e-12);
    }

    #[test]
    fn combined_matrix_agrees_with_nn_reconstruction() {
        // The per-gate matrices rebuilt here must match what csd-nn's own
        // import produces (same TF layout interpretation).
        let model = SequenceClassifier::new(ModelConfig::tiny(9), 5);
        let export = ModelWeights::from_model(&model);
        let q = QuantizedWeights::from_model_weights(&export);
        let rebuilt = export.to_model();
        for g in 0..4 {
            assert_eq!(q.gate_w_f64[g], *rebuilt.lstm_cell().weight(g));
            assert_eq!(q.gate_b_f64[g], *rebuilt.lstm_cell().bias(g));
        }
    }

    #[test]
    fn fused_rows_are_the_per_gate_rows() {
        let q = weights();
        let h = q.dims().hidden;
        let fused = q.fused_f64();
        let fused_fx = q.fused_fx();
        assert_eq!(fused.w.rows(), 4 * h);
        assert_eq!(fused.w.cols(), q.dims().z());
        assert_eq!(fused.b.len(), 4 * h);
        for g in 0..4 {
            for j in 0..h {
                assert_eq!(fused.w.row(g * h + j), q.gate_w_f64[g].row(j));
                assert_eq!(fused.b[g * h + j], q.gate_b_f64[g][j]);
                assert_eq!(fused_fx.w.row(g * h + j), q.gate_w_fx[g].row(j));
                assert_eq!(fused_fx.b[g * h + j], q.gate_b_fx[g][j]);
            }
        }
    }

    #[test]
    fn packed_matvec_is_bit_identical_to_wide_path() {
        let q = weights();
        let fused = q.fused_fx();
        let packed = PackedGatesFx::pack(&fused).expect("paper weights fit i32");
        let z: Vec<Fx6> = (0..q.dims().z())
            .map(|i| Fx6::from_f64(0.13 * i as f64 - 1.7))
            .collect();
        let zv = Vector::from(z);
        let wide = fused.w.matvec(&zv);
        let mut narrow = Vector::zeros(fused.w.rows());
        let mut z_scratch = Vec::new();
        assert!(packed.matvec_into(zv.as_slice(), &mut z_scratch, narrow.as_mut_slice()));
        assert_eq!(wide, narrow);
    }

    #[test]
    fn packed_matvec_declines_out_of_range_input() {
        let q = weights();
        let fused = q.fused_fx();
        let packed = PackedGatesFx::pack(&fused).expect("paper weights fit i32");
        let mut z = vec![Fx6::ZERO; q.dims().z()];
        z[0] = Fx6::from_raw(i64::MAX / 2);
        let mut out = vec![Fx6::ONE; fused.w.rows()];
        let mut z_scratch = Vec::new();
        assert!(!packed.matvec_into(&z, &mut z_scratch, &mut out));
        // Declined call must leave the output untouched.
        assert!(out.iter().all(|&v| v == Fx6::ONE));
    }

    #[test]
    fn gate_table_entries_are_the_folded_embedding_products() {
        let q = weights();
        let fused = q.fused_fx();
        let dims = q.dims();
        let lane = LaneGatesFx::pack(&fused, &q.embedding_fx, dims.hidden).expect("paper packs");
        assert_eq!(lane.hidden(), dims.hidden);
        assert_eq!(lane.vocab(), q.embedding_fx.rows());
        assert_eq!(lane.gate_table().len(), lane.vocab() * lane.rows());
        assert_eq!(lane.w_hidden().len(), lane.rows() * dims.hidden);
        for item in [0usize, 1, 137, 277] {
            let row = lane.table_row_i64(item);
            for (r, &entry) in row.iter().enumerate() {
                let mut acc = fused.b[r].raw() as i128 * Fx6::SCALE as i128;
                for e in 0..dims.embed {
                    acc += fused.w.get(r, dims.hidden + e).raw() as i128
                        * q.embedding_fx.get(item, e).raw() as i128;
                }
                assert_eq!(entry as i128, acc, "item {item} row {r}");
                // The f64 view is the same integer, exactly encoded.
                assert_eq!(lane.gate_table()[item * lane.rows() + r] as i64, entry);
            }
        }
        // W_h is the recurrent prefix of each packed row.
        for r in 0..lane.rows() {
            for k in 0..dims.hidden {
                assert_eq!(
                    lane.w_hidden()[r * dims.hidden + k],
                    lane.weights()[r * lane.cols() + k]
                );
            }
        }
    }

    #[test]
    fn table_matvec_is_bit_identical_to_unfolded_path() {
        let q = weights();
        let fused = q.fused_fx();
        let dims = q.dims();
        let lane = LaneGatesFx::pack(&fused, &q.embedding_fx, dims.hidden).expect("paper packs");
        let packed = PackedGatesFx::pack(&fused).expect("paper weights fit i32");
        let h: Vec<Fx6> = (0..dims.hidden)
            .map(|i| Fx6::from_raw((i as i64 * 137_911) % 2_000_001 - 1_000_000))
            .collect();
        for item in [0usize, 42, 277] {
            // Unfolded reference: [h | e(item)] matvec plus bias.
            let mut z: Vec<Fx6> = h.clone();
            for e in 0..dims.embed {
                z.push(q.embedding_fx.get(item, e));
            }
            let mut wide = vec![Fx6::ZERO; lane.rows()];
            let mut scratch = Vec::new();
            assert!(packed.matvec_into(&z, &mut scratch, &mut wide));
            for (o, b) in wide.iter_mut().zip(fused.b.iter()) {
                *o += *b;
            }
            let mut table = vec![Fx6::ZERO; lane.rows()];
            assert!(packed.matvec_table_into(lane.table_row_i64(item), &h, &mut table));
            assert_eq!(table, wide, "item {item}");
        }
    }

    #[test]
    fn table_matvec_declines_out_of_range_input() {
        let q = weights();
        let fused = q.fused_fx();
        let dims = q.dims();
        let lane = LaneGatesFx::pack(&fused, &q.embedding_fx, dims.hidden).expect("paper packs");
        let packed = PackedGatesFx::pack(&fused).expect("paper weights fit i32");
        let mut h = vec![Fx6::ZERO; dims.hidden];
        h[3] = Fx6::from_raw(i64::MAX / 2);
        let mut out = vec![Fx6::ONE; lane.rows()];
        assert!(!packed.matvec_table_into(lane.table_row_i64(0), &h, &mut out));
        assert!(
            out.iter().all(|&v| v == Fx6::ONE),
            "declined output untouched"
        );
    }

    #[test]
    fn i16_pack_declines_paper_scale_but_takes_small_scale_rows() {
        let q = weights();
        let fused = q.fused_fx();
        // Paper model, honest bounds: |h| ≤ 1 → raw 10^6 — must decline.
        let zbound = vec![Fx6::SCALE; q.dims().z()];
        assert!(PackedGatesI16::pack(&fused, &zbound).is_none());
        // Synthetic small-magnitude gates (10^3-scale-shaped): packs,
        // and the lane MAC matches the wide integer reference.
        let rows = 8;
        let cols = 5;
        let wi: Vec<i64> = (0..rows * cols)
            .map(|i| (i as i64 * 97) % 601 - 300)
            .collect();
        let small = FusedGates {
            w: Matrix::from_flat(
                rows,
                cols,
                wi.iter().map(|&x| Fx6::from_raw(x)).collect::<Vec<_>>(),
            ),
            b: Vector::from(vec![Fx6::ZERO; rows]),
        };
        let zb = vec![1_000i64; cols];
        let packed = PackedGatesI16::pack(&small, &zb).expect("small rows fit i16");
        assert_eq!(packed.rows(), rows);
        assert_eq!(packed.cols(), cols);
        let width = 16;
        let z: Vec<i16> = (0..cols * width)
            .map(|i| (i as i64 % 2_001 - 1_000) as i16)
            .collect();
        let mut out = vec![0i32; rows * width];
        packed.matmul_lanes_into(&z, width, &mut out);
        for r in 0..rows {
            for l in 0..width {
                let mut s = 0i64;
                for k in 0..cols {
                    s += wi[r * cols + k] * z[k * width + l] as i64;
                }
                assert_eq!(out[r * width + l] as i64, s, "r={r} l={l}");
            }
        }
    }

    #[test]
    fn pack_refuses_weights_beyond_i32() {
        let fused = FusedGates {
            w: Matrix::from_flat(1, 2, vec![Fx6::from_raw(i64::from(i32::MAX) + 1), Fx6::ONE]),
            b: Vector::from(vec![Fx6::ZERO]),
        };
        assert!(PackedGatesFx::pack(&fused).is_none());
    }

    #[test]
    fn device_bytes_counts_all_parameters() {
        let q = weights();
        // 7,505 parameters × 8 bytes.
        assert_eq!(q.device_bytes(), 7_505 * 8);
    }

    #[test]
    fn device_image_roundtrip() {
        let q = weights();
        let image = q.to_device_image();
        assert_eq!(image.len() as u64, 16 + q.device_bytes());
        let (dims, values) = QuantizedWeights::parse_device_image(&image).expect("parse");
        assert_eq!(dims, q.dims());
        assert_eq!(values.len(), 7_505);
        // First value is embedding[0,0]; last is the FC bias.
        assert_eq!(values[0], q.embedding_fx.as_flat()[0]);
        assert_eq!(*values.last().expect("non-empty"), q.fc_b_fx);
    }

    #[test]
    fn device_image_rejects_corruption() {
        let q = weights();
        let image = q.to_device_image();
        assert!(QuantizedWeights::parse_device_image(&image[..10]).is_err());
        let mut bad_magic = image.clone();
        bad_magic[0] = b'X';
        assert!(QuantizedWeights::parse_device_image(&bad_magic).is_err());
        let truncated = &image[..image.len() - 8];
        let err = QuantizedWeights::parse_device_image(truncated).unwrap_err();
        assert!(err.contains("expected"), "{err}");
    }
}
