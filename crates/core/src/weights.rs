//! Host-side weight ingest and 10^6 quantization.
//!
//! §III-D: "We multiply the floating-point values of weights, biases, and
//! embeddings by this factor before the host initialization shown in
//! Fig. 2, converting them to integers while preserving significant
//! digits." [`QuantizedWeights`] performs that conversion from the
//! [`csd_nn::ModelWeights`] export, keeping both the float and the
//! fixed-point views so every optimization level can execute functionally.

use csd_fxp::Fx6;
use csd_nn::ModelWeights;
use csd_tensor::{Matrix, Vector};
use serde::{Deserialize, Serialize};

use crate::kernels::LstmDims;

/// The full parameter set in kernel-ready layout: per-gate `H × Z`
/// matrices over `[h | x]` columns (TF gate order `i f c o`), in both f64
/// and 10^6-scaled fixed point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedWeights {
    dims: LstmDims,
    /// Embedding table, float view.
    pub embedding_f64: Matrix<f64>,
    /// Embedding table, quantized view (the buffer DMA'd to FPGA DRAM).
    pub embedding_fx: Matrix<Fx6>,
    /// Per-gate combined weights, float view.
    pub gate_w_f64: [Matrix<f64>; 4],
    /// Per-gate combined weights, quantized view.
    pub gate_w_fx: [Matrix<Fx6>; 4],
    /// Per-gate biases, float view.
    pub gate_b_f64: [Vector<f64>; 4],
    /// Per-gate biases, quantized view.
    pub gate_b_fx: [Vector<Fx6>; 4],
    /// FC head weights, float view.
    pub fc_w_f64: Vector<f64>,
    /// FC head weights, quantized view.
    pub fc_w_fx: Vector<Fx6>,
    /// FC head bias, float view.
    pub fc_b_f64: f64,
    /// FC head bias, quantized view.
    pub fc_b_fx: Fx6,
}

impl QuantizedWeights {
    /// Ingests an exported weight set, rebuilding the combined per-gate
    /// matrices from the TensorFlow-convention `kernel`/`recurrent`
    /// arrays, then quantizing everything at scale 10^6.
    ///
    /// # Panics
    ///
    /// Panics if array lengths disagree with the export's config.
    pub fn from_model_weights(w: &ModelWeights) -> Self {
        let dims = LstmDims {
            vocab: w.config.vocab,
            embed: w.config.embed_dim,
            hidden: w.config.hidden,
        };
        let (v, x, h) = (dims.vocab, dims.embed, dims.hidden);
        assert_eq!(w.embedding.len(), v * x, "embedding size mismatch");
        assert_eq!(w.lstm_kernel.len(), x * 4 * h, "kernel size mismatch");
        assert_eq!(w.lstm_recurrent.len(), h * 4 * h, "recurrent size mismatch");
        assert_eq!(w.lstm_bias.len(), 4 * h, "bias size mismatch");
        assert_eq!(w.fc_weights.len(), h, "fc size mismatch");

        let embedding_f64 = Matrix::from_f64_flat(v, x, &w.embedding);
        let z = h + x;
        let gate_w_f64: [Matrix<f64>; 4] = std::array::from_fn(|g| {
            let mut m = Matrix::zeros(h, z);
            for j in 0..h {
                for hc in 0..h {
                    *m.get_mut(j, hc) = w.lstm_recurrent[hc * 4 * h + g * h + j];
                }
                for xc in 0..x {
                    *m.get_mut(j, h + xc) = w.lstm_kernel[xc * 4 * h + g * h + j];
                }
            }
            m
        });
        let gate_b_f64: [Vector<f64>; 4] = std::array::from_fn(|g| {
            Vector::from(w.lstm_bias[g * h..(g + 1) * h].to_vec())
        });
        let fc_w_f64 = Vector::from(w.fc_weights.clone());

        Self {
            dims,
            embedding_fx: Matrix::from_f64_flat(v, x, &embedding_f64.to_f64_flat()),
            gate_w_fx: std::array::from_fn(|g| {
                Matrix::from_f64_flat(h, z, &gate_w_f64[g].to_f64_flat())
            }),
            gate_b_fx: std::array::from_fn(|g| {
                Vector::from_f64_slice(&gate_b_f64[g].to_f64_vec())
            }),
            fc_w_fx: Vector::from_f64_slice(&fc_w_f64.to_f64_vec()),
            fc_b_fx: Fx6::from_f64(w.fc_bias),
            embedding_f64,
            gate_w_f64,
            gate_b_f64,
            fc_w_f64,
            fc_b_f64: w.fc_bias,
        }
    }

    /// The model dimensions.
    pub fn dims(&self) -> LstmDims {
        self.dims
    }

    /// Bytes occupied by the quantized parameter buffers on the device
    /// (i64 per parameter), for buffer sizing in the host program.
    pub fn device_bytes(&self) -> u64 {
        let params = self.dims.vocab * self.dims.embed
            + 4 * (self.dims.hidden * self.dims.z() + self.dims.hidden)
            + self.dims.hidden
            + 1;
        (params * std::mem::size_of::<i64>()) as u64
    }

    /// Serializes the quantized parameters into the byte image the host
    /// DMA's to FPGA DRAM: a 16-byte header (magic, vocab, embed, hidden)
    /// followed by every raw `i64` little-endian, in kernel consumption
    /// order (embedding | W_i W_f W_c W_o | b_i b_f b_c b_o | fc_w | fc_b).
    pub fn to_device_image(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.device_bytes() as usize);
        out.extend_from_slice(b"CSDW");
        out.extend_from_slice(&(self.dims.vocab as u32).to_le_bytes());
        out.extend_from_slice(&(self.dims.embed as u32).to_le_bytes());
        out.extend_from_slice(&(self.dims.hidden as u32).to_le_bytes());
        let mut push = |fx: Fx6| out.extend_from_slice(&fx.raw().to_le_bytes());
        for &v in self.embedding_fx.as_flat() {
            push(v);
        }
        for g in 0..4 {
            for &v in self.gate_w_fx[g].as_flat() {
                push(v);
            }
        }
        for g in 0..4 {
            for &v in self.gate_b_fx[g].as_slice() {
                push(v);
            }
        }
        for &v in self.fc_w_fx.as_slice() {
            push(v);
        }
        push(self.fc_b_fx);
        out
    }

    /// Parses a device image back into raw fixed-point values (used by
    /// tests to prove the DMA buffer is faithful).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn parse_device_image(image: &[u8]) -> Result<(LstmDims, Vec<Fx6>), String> {
        if image.len() < 16 {
            return Err("image shorter than the header".to_string());
        }
        if &image[0..4] != b"CSDW" {
            return Err("bad magic".to_string());
        }
        let word = |at: usize| {
            u32::from_le_bytes(image[at..at + 4].try_into().expect("4 bytes")) as usize
        };
        let dims = LstmDims {
            vocab: word(4),
            embed: word(8),
            hidden: word(12),
        };
        let body = &image[16..];
        if body.len() % 8 != 0 {
            return Err("payload not i64-aligned".to_string());
        }
        let expected =
            dims.vocab * dims.embed + 4 * (dims.hidden * (dims.hidden + dims.embed)) + 4 * dims.hidden + dims.hidden + 1;
        if body.len() / 8 != expected {
            return Err(format!(
                "expected {expected} parameters, found {}",
                body.len() / 8
            ));
        }
        let values = body
            .chunks_exact(8)
            .map(|c| Fx6::from_raw(i64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect();
        Ok((dims, values))
    }

    /// Worst-case quantization error introduced across all parameters.
    pub fn max_quantization_error(&self) -> f64 {
        let mut worst: f64 = self
            .embedding_f64
            .max_abs_diff(&Matrix::from_f64_flat(
                self.dims.vocab,
                self.dims.embed,
                &self.embedding_fx.to_f64_flat(),
            ));
        for g in 0..4 {
            let dq = Matrix::from_f64_flat(
                self.dims.hidden,
                self.dims.z(),
                &self.gate_w_fx[g].to_f64_flat(),
            );
            worst = worst.max(self.gate_w_f64[g].max_abs_diff(&dq));
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_nn::{ModelConfig, SequenceClassifier};

    fn weights() -> QuantizedWeights {
        let model = SequenceClassifier::new(ModelConfig::paper(), 33);
        QuantizedWeights::from_model_weights(&ModelWeights::from_model(&model))
    }

    #[test]
    fn dims_match_paper() {
        let q = weights();
        assert_eq!(q.dims(), LstmDims::paper());
        assert_eq!(q.gate_w_f64[0].rows(), 32);
        assert_eq!(q.gate_w_f64[0].cols(), 40);
    }

    #[test]
    fn quantization_error_within_half_lsb() {
        let q = weights();
        assert!(q.max_quantization_error() <= 0.5e-6 + 1e-12);
    }

    #[test]
    fn combined_matrix_agrees_with_nn_reconstruction() {
        // The per-gate matrices rebuilt here must match what csd-nn's own
        // import produces (same TF layout interpretation).
        let model = SequenceClassifier::new(ModelConfig::tiny(9), 5);
        let export = ModelWeights::from_model(&model);
        let q = QuantizedWeights::from_model_weights(&export);
        let rebuilt = export.to_model();
        for g in 0..4 {
            assert_eq!(q.gate_w_f64[g], *rebuilt.lstm_cell().weight(g));
            assert_eq!(q.gate_b_f64[g], *rebuilt.lstm_cell().bias(g));
        }
    }

    #[test]
    fn device_bytes_counts_all_parameters() {
        let q = weights();
        // 7,505 parameters × 8 bytes.
        assert_eq!(q.device_bytes(), 7_505 * 8);
    }

    #[test]
    fn device_image_roundtrip() {
        let q = weights();
        let image = q.to_device_image();
        assert_eq!(image.len() as u64, 16 + q.device_bytes());
        let (dims, values) = QuantizedWeights::parse_device_image(&image).expect("parse");
        assert_eq!(dims, q.dims());
        assert_eq!(values.len(), 7_505);
        // First value is embedding[0,0]; last is the FC bias.
        assert_eq!(values[0], q.embedding_fx.as_flat()[0]);
        assert_eq!(*values.last().expect("non-empty"), q.fc_b_fx);
    }

    #[test]
    fn device_image_rejects_corruption() {
        let q = weights();
        let image = q.to_device_image();
        assert!(QuantizedWeights::parse_device_image(&image[..10]).is_err());
        let mut bad_magic = image.clone();
        bad_magic[0] = b'X';
        assert!(QuantizedWeights::parse_device_image(&bad_magic).is_err());
        let truncated = &image[..image.len() - 8];
        let err = QuantizedWeights::parse_device_image(truncated).unwrap_err();
        assert!(err.contains("expected"), "{err}");
    }
}
