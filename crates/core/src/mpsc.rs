//! A lock-free multi-producer single-consumer admission queue.
//!
//! The sharded streaming mux is fed by many producers — one per
//! monitored host thread in the data-center deployment — while each
//! shard drains its inbox exactly once per tick round on the
//! coordinator. That shape wants a queue whose *push* never blocks and
//! never takes a lock (producers are on the latency-sensitive observe
//! path), while *drain* may be batched (the consumer amortizes it over a
//! whole tick round).
//!
//! [`AdmissionQueue`] implements the classic Treiber-stack MPSC: `push`
//! is a single compare-exchange loop prepending to an atomic
//! singly-linked list, and `drain` swaps the whole list out with one
//! atomic exchange, then reverses it so batches come out in arrival
//! order. Per-producer FIFO is exact (a producer's own pushes never
//! reorder); cross-producer order is whatever the CAS race decided,
//! which is the only order that exists for concurrent arrivals anyway.
//!
//! No dependency is pulled in for this: the queue is ~60 lines over
//! `AtomicPtr`, with the one ownership invariant (a node is owned by
//! exactly one side at a time: the pusher until the CAS succeeds, the
//! list until an exchange takes it, the drainer after) documented at
//! each unsafe block.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

struct Node<T> {
    item: T,
    next: *mut Node<T>,
}

struct Shared<T> {
    head: AtomicPtr<Node<T>>,
    /// Approximate queue length for idleness checks; exact once all
    /// producers have quiesced.
    len: AtomicUsize,
}

// SAFETY: nodes are plain heap allocations handed between threads
// through the atomic head; `T: Send` is all that transfer needs.
#[allow(unsafe_code)] // justified above; the crate otherwise denies unsafe.
unsafe impl<T: Send> Send for Shared<T> {}
#[allow(unsafe_code)] // same argument as `Send` above.
unsafe impl<T: Send> Sync for Shared<T> {}

/// The consumer end (and owner) of a lock-free MPSC admission queue.
///
/// Create producer handles with [`handle`](Self::handle); drain on the
/// consumer with [`drain_into`](Self::drain_into). Dropping the queue
/// frees anything still enqueued; outstanding handles keep the
/// allocation alive but their pushes then land in a queue nobody will
/// drain.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    shared: Arc<Shared<T>>,
}

/// A cloneable producer handle onto an [`AdmissionQueue`].
#[derive(Debug)]
pub struct AdmissionHandle<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for AdmissionHandle<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionQueueShared")
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T> Default for AdmissionQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> AdmissionQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                head: AtomicPtr::new(std::ptr::null_mut()),
                len: AtomicUsize::new(0),
            }),
        }
    }

    /// A new producer handle; handles are cheap to clone and `Send`.
    pub fn handle(&self) -> AdmissionHandle<T> {
        AdmissionHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Items currently enqueued. Exact when no producer is mid-push;
    /// otherwise a snapshot that may trail concurrent pushes by a
    /// moment — good enough for idleness checks, not for accounting.
    pub fn len(&self) -> usize {
        self.shared.len.load(Ordering::Acquire)
    }

    /// Whether the queue currently holds nothing (same snapshot caveat
    /// as [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every enqueued item in one atomic exchange, appending them
    /// to `out` in arrival order (exactly FIFO per producer), and
    /// returns how many were taken.
    #[allow(unsafe_code)] // node ownership argument at each block.
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        let taken = self
            .shared
            .head
            .swap(std::ptr::null_mut(), Ordering::Acquire);
        if taken.is_null() {
            return 0;
        }
        // Reverse the LIFO chain in place so `out` gets arrival order.
        let mut reversed: *mut Node<T> = std::ptr::null_mut();
        let mut cursor = taken;
        while !cursor.is_null() {
            // SAFETY: the exchange above made this thread the sole owner
            // of the whole chain; `cursor` walks nodes exactly once.
            let next = unsafe { (*cursor).next };
            unsafe { (*cursor).next = reversed };
            reversed = cursor;
            cursor = next;
        }
        let mut count = 0usize;
        let mut cursor = reversed;
        while !cursor.is_null() {
            // SAFETY: sole ownership as above; `Box::from_raw` re-forms
            // the allocation `push` leaked, exactly once per node.
            let node = unsafe { Box::from_raw(cursor) };
            cursor = node.next;
            out.push(node.item);
            count += 1;
        }
        self.shared.len.fetch_sub(count, Ordering::AcqRel);
        count
    }
}

impl<T> AdmissionHandle<T> {
    /// Enqueues one item. Lock-free: a single CAS loop, no blocking, no
    /// syscalls; safe to call from any thread including signal-adjacent
    /// contexts that must never park.
    #[allow(unsafe_code)] // node ownership argument at each block.
    pub fn push(&self, item: T) {
        let node = Box::into_raw(Box::new(Node {
            item,
            next: std::ptr::null_mut(),
        }));
        let mut head = self.shared.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: until the CAS below succeeds, this thread is the
            // sole owner of `node`; writing its `next` field races with
            // nothing.
            unsafe { (*node).next = head };
            match self.shared.head.compare_exchange_weak(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(current) => head = current,
            }
        }
        self.shared.len.fetch_add(1, Ordering::AcqRel);
    }
}

impl<T> Drop for AdmissionQueue<T> {
    fn drop(&mut self) {
        // Free anything still enqueued. Producers holding handles can
        // still push afterwards; those nodes are freed when the last
        // handle drops the Arc... except the Arc only frees the Shared
        // struct, not the list — so the final drop of `Shared` walks the
        // chain too (below).
        let mut out = Vec::new();
        self.drain_into(&mut out);
    }
}

impl<T> Drop for Shared<T> {
    #[allow(unsafe_code)] // exclusive-owner walk, argument at the block.
    fn drop(&mut self) {
        // Last reference anywhere: nobody can push or drain concurrently.
        let mut cursor = *self.head.get_mut();
        while !cursor.is_null() {
            // SAFETY: exclusive access (we are in Drop of the only
            // remaining owner); each node freed exactly once.
            let node = unsafe { Box::from_raw(cursor) };
            cursor = node.next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_push_order_single_producer() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new();
        let h = q.handle();
        for i in 0..100 {
            h.push(i);
        }
        assert_eq!(q.len(), 100);
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn empty_drain_is_a_noop() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new();
        let mut out = vec![7u32];
        assert_eq!(q.drain_into(&mut out), 0);
        assert_eq!(out, vec![7], "out untouched");
    }

    #[test]
    fn interleaved_push_and_drain_loses_nothing() {
        let q: AdmissionQueue<usize> = AdmissionQueue::new();
        let h = q.handle();
        let mut out = Vec::new();
        for round in 0..10 {
            for i in 0..7 {
                h.push(round * 7 + i);
            }
            q.drain_into(&mut out);
        }
        assert_eq!(out, (0..70).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_producers_preserve_per_producer_fifo() {
        let q: AdmissionQueue<(usize, usize)> = AdmissionQueue::new();
        const PRODUCERS: usize = 4;
        const PER: usize = 2_000;
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let h = q.handle();
                scope.spawn(move || {
                    for i in 0..PER {
                        h.push((p, i));
                    }
                });
            }
            // Consumer drains concurrently with the producers.
            let mut out = Vec::new();
            while out.len() < PRODUCERS * PER {
                q.drain_into(&mut out);
                std::hint::spin_loop();
            }
            let mut next = [0usize; PRODUCERS];
            for &(p, i) in &out {
                assert_eq!(i, next[p], "producer {p} reordered");
                next[p] += 1;
            }
            assert!(next.iter().all(|&n| n == PER));
        });
        assert!(q.is_empty());
    }

    #[test]
    fn dropping_a_nonempty_queue_frees_items() {
        // Drop-sensitive payloads: leaked nodes would show under Miri /
        // sanitizers and the counter would stay short.
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q: AdmissionQueue<Counted> = AdmissionQueue::new();
            let h = q.handle();
            for _ in 0..5 {
                h.push(Counted);
            }
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn push_after_queue_drop_is_freed_by_last_handle() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let h = {
            let q: AdmissionQueue<Counted> = AdmissionQueue::new();
            q.handle()
        };
        h.push(Counted); // lands in a queue nobody will drain
        drop(h); // last owner: Shared's Drop walks the chain
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }
}
