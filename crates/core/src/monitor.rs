//! The online detection wrapper: from per-window classification to a
//! deployable monitor.
//!
//! The paper's use case is *continuous* protection — "data centers can
//! execute the classifier continuously in the background" (§I) with
//! "real-time mitigation upon detecting the presence of ransomware" (§I).
//! That needs more than a window classifier: a component that consumes
//! API calls one at a time as the host emits them, maintains the rolling
//! window, classifies at each stride, and debounces alerts so a single
//! borderline window (an encrypted-backup burst, say) does not quarantine
//! a workload.
//!
//! [`StreamMonitor`] implements that loop around a
//! [`CsdInferenceEngine`], with k-of-n vote debouncing and inference-time
//! accounting from the pipeline schedule. The window itself is a
//! [`RollingWindow`] — a compacting buffer that keeps the current window
//! contiguous so each classification reads it in place instead of
//! copying it out. [`MonitorPool`] keeps its historical
//! observe-returns-alert shape for many processes, now backed by the
//! continuous-batching [`FleetMonitor`](crate::stream::FleetMonitor).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::engine::CsdInferenceEngine;
use crate::schedule::PipelineSchedule;
use crate::stream::{FleetMonitor, StreamMuxConfig};

/// Configuration for the streaming monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Rolling-window length (the paper uses 100).
    pub window_len: usize,
    /// Classify every `stride` calls once the window is full.
    pub stride: usize,
    /// Raise an alert when `votes_needed` of the last `vote_horizon`
    /// classifications were positive (1-of-1 = alert on first hit).
    pub votes_needed: usize,
    /// Number of recent classifications considered for voting.
    pub vote_horizon: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            window_len: 100,
            stride: 10,
            votes_needed: 2,
            vote_horizon: 3,
        }
    }
}

/// A raised alert.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Index of the API call whose window completed the vote.
    pub at_call: usize,
    /// Probability of the triggering window.
    pub probability: f64,
    /// Cumulative on-device inference time spent until the alert, in µs
    /// (from the steady-state pipeline schedule).
    pub inference_us: f64,
}

/// A fixed-length rolling window over a call stream, backed by a
/// compacting buffer so the current window is always one contiguous
/// slice.
///
/// A `VecDeque` ring would wrap, forcing every consumer to copy the
/// window out before handing it to the engine; this buffer instead
/// appends until the dead prefix reaches one window length, then shifts
/// the live window back to the front — one `window_len`-item move per
/// `window_len` pushes, so pushes stay amortized O(1), the backing
/// allocation never exceeds two window lengths, and
/// [`as_slice`](Self::as_slice) is free.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    buf: Vec<usize>,
    start: usize,
    window_len: usize,
}

impl RollingWindow {
    /// An empty window of capacity `window_len`.
    ///
    /// # Panics
    ///
    /// Panics when `window_len` is zero.
    pub fn new(window_len: usize) -> Self {
        assert!(window_len > 0, "window length must be positive");
        Self {
            buf: Vec::with_capacity(2 * window_len),
            start: 0,
            window_len,
        }
    }

    /// The configured window length.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Items currently held (at most `window_len`).
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether no item has been pushed since creation/[`clear`](Self::clear).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the window holds `window_len` items.
    pub fn is_full(&self) -> bool {
        self.len() == self.window_len
    }

    /// Appends one item, evicting the oldest once full.
    pub fn push(&mut self, item: usize) {
        self.buf.push(item);
        if self.buf.len() - self.start > self.window_len {
            self.start += 1;
        }
        if self.start == self.window_len {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.window_len);
            self.start = 0;
        }
    }

    /// The live window, oldest first — the full window once
    /// [`is_full`](Self::is_full).
    pub fn as_slice(&self) -> &[usize] {
        &self.buf[self.start..]
    }

    /// Heap bytes held by the window's compacting buffer (capacity, not
    /// live length — what the allocator actually charges a hot stream).
    pub fn resident_bytes(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<usize>()
    }

    /// Empties the window, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }
}

/// Streaming ransomware monitor around a CSD engine.
#[derive(Debug, Clone)]
pub struct StreamMonitor {
    engine: CsdInferenceEngine,
    config: MonitorConfig,
    window: RollingWindow,
    calls_seen: usize,
    since_classify: usize,
    votes: VecDeque<bool>,
    classifications: usize,
    alerted: Option<Alert>,
    per_item_us: f64,
    /// Out-of-vocabulary calls dropped at `observe` (cached vocab size
    /// keeps the boundary check off the engine's assert path).
    vocab: usize,
    oov_calls: u64,
}

impl StreamMonitor {
    /// Wraps `engine` with the given `config`.
    ///
    /// # Panics
    ///
    /// Panics if `window_len`, `stride`, `votes_needed`, or `vote_horizon`
    /// is zero, or `votes_needed > vote_horizon`.
    pub fn new(engine: CsdInferenceEngine, config: MonitorConfig) -> Self {
        assert!(config.window_len > 0, "window length must be positive");
        assert!(config.stride > 0, "stride must be positive");
        assert!(config.votes_needed > 0, "votes_needed must be positive");
        assert!(
            config.votes_needed <= config.vote_horizon,
            "cannot need more votes than the horizon holds"
        );
        let per_item_us = PipelineSchedule::for_level(engine.level()).steady_item_us;
        let vocab = engine.weights().dims().vocab;
        Self {
            engine,
            config,
            window: RollingWindow::new(config.window_len),
            calls_seen: 0,
            since_classify: 0,
            votes: VecDeque::with_capacity(config.vote_horizon),
            classifications: 0,
            alerted: None,
            per_item_us,
            vocab,
            oov_calls: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> MonitorConfig {
        self.config
    }

    /// Number of API calls observed so far.
    pub fn calls_seen(&self) -> usize {
        self.calls_seen
    }

    /// Number of window classifications performed so far.
    pub fn classifications(&self) -> usize {
        self.classifications
    }

    /// The alert, if one has been raised (alerts latch: the first one is
    /// the mitigation trigger).
    pub fn alert(&self) -> Option<Alert> {
        self.alerted
    }

    /// Out-of-vocabulary calls dropped so far (each counted toward
    /// [`calls_seen`](Self::calls_seen) but excluded from the window).
    pub fn oov_calls(&self) -> u64 {
        self.oov_calls
    }

    /// Feeds one API call; returns a newly-raised alert, if any.
    ///
    /// An out-of-vocabulary call cannot be embedded, so it is dropped
    /// here — tallied in [`oov_calls`](Self::oov_calls), counted toward
    /// [`calls_seen`](Self::calls_seen), excluded from the window —
    /// rather than panicking inside the engine. A monitor fed by a live
    /// (possibly hostile) process must treat the call stream as
    /// untrusted input; this matches
    /// [`FleetMonitor::observe`](crate::stream::FleetMonitor::observe).
    pub fn observe(&mut self, call: usize) -> Option<Alert> {
        self.calls_seen += 1;
        if !crate::kernels::preprocess::in_vocabulary(self.vocab, call) {
            self.oov_calls += 1;
            return None;
        }
        self.window.push(call);
        if self.alerted.is_some() || !self.window.is_full() {
            return None;
        }
        self.since_classify += 1;
        let first_full = self.classifications == 0;
        if !first_full && self.since_classify < self.config.stride {
            return None;
        }
        self.since_classify = 0;
        // The compacting window is contiguous: classify in place, no
        // per-window copy.
        let verdict = self.engine.classify(self.window.as_slice());
        self.classifications += 1;
        if self.votes.len() == self.config.vote_horizon {
            self.votes.pop_front();
        }
        self.votes.push_back(verdict.is_positive);
        let positive_votes = self.votes.iter().filter(|&&v| v).count();
        if positive_votes >= self.config.votes_needed {
            let alert = Alert {
                at_call: self.calls_seen,
                probability: verdict.probability,
                inference_us: self.classifications as f64
                    * self.config.window_len as f64
                    * self.per_item_us,
            };
            self.alerted = Some(alert);
            return Some(alert);
        }
        None
    }

    /// Feeds a batch of calls, returning the first alert raised.
    pub fn observe_all(&mut self, calls: &[usize]) -> Option<Alert> {
        for &c in calls {
            if let Some(a) = self.observe(c) {
                return Some(a);
            }
        }
        None
    }

    /// Resets the monitor for a new stream (keeps the engine).
    pub fn reset(&mut self) {
        self.window.clear();
        self.votes.clear();
        self.calls_seen = 0;
        self.since_classify = 0;
        self.classifications = 0;
        self.alerted = None;
        self.oov_calls = 0;
    }
}

/// A pool of per-process monitors sharing one engine — the data-center
/// deployment shape: the CSD protects a host running many processes, and
/// each process's API stream gets its own rolling window and vote state.
///
/// Since the stream multiplexer landed this is a thin synchronous facade
/// over [`FleetMonitor`](crate::stream::FleetMonitor): each `observe`
/// drains the mux immediately, so alerts still surface from the very
/// call that completed the triggering window, exactly as before (the
/// mux's low-occupancy shortcut keeps that drain at serial cost).
/// Callers that can batch their polling should use `FleetMonitor`
/// directly and let windows from many processes share lane sweeps.
#[derive(Debug, Clone)]
pub struct MonitorPool {
    fleet: FleetMonitor,
}

impl MonitorPool {
    /// Creates a pool; each new process id lazily gets monitor state with
    /// `config`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid `config` (see [`StreamMonitor::new`]).
    pub fn new(engine: CsdInferenceEngine, config: MonitorConfig) -> Self {
        Self {
            fleet: FleetMonitor::new(engine, config, StreamMuxConfig::default()),
        }
    }

    /// Number of processes currently tracked.
    pub fn tracked(&self) -> usize {
        self.fleet.tracked()
    }

    /// Feeds one API call observed in process `pid`; returns a
    /// newly-raised alert for that process, if any. Out-of-vocabulary
    /// calls are dropped and tallied by the backing fleet monitor,
    /// never a panic.
    pub fn observe(&mut self, pid: u64, call: usize) -> Option<Alert> {
        self.fleet.observe(pid, call);
        self.fleet
            .drain()
            .into_iter()
            .find_map(|(p, alert)| (p == pid).then_some(alert))
    }

    /// The alert state of process `pid`, if tracked.
    pub fn alert_for(&self, pid: u64) -> Option<Alert> {
        self.fleet.alert_for(pid)
    }

    /// Process ids with latched alerts.
    pub fn alerted_pids(&self) -> Vec<u64> {
        self.fleet.alerted_pids()
    }

    /// Drops a finished process's state.
    pub fn retire(&mut self, pid: u64) {
        self.fleet.retire(pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::OptimizationLevel;
    use csd_nn::{ModelConfig, ModelWeights, SequenceClassifier};

    /// A model biased hard positive/negative by construction: weights come
    /// from a trained-ish seed, so we drive the monitor with a model the
    /// tests control via a threshold trick — instead use real sequences
    /// where a fresh model produces *some* verdict and we assert the
    /// mechanics (windowing, strides, voting, latching), which are
    /// engine-agnostic.
    fn monitor(config: MonitorConfig) -> StreamMonitor {
        let model = SequenceClassifier::new(ModelConfig::tiny(16), 9);
        let engine = CsdInferenceEngine::new(
            &ModelWeights::from_model(&model),
            OptimizationLevel::FixedPoint,
        );
        StreamMonitor::new(engine, config)
    }

    fn small_config() -> MonitorConfig {
        MonitorConfig {
            window_len: 8,
            stride: 4,
            votes_needed: 1,
            vote_horizon: 1,
        }
    }

    #[test]
    fn no_classification_before_window_fills() {
        let mut m = monitor(small_config());
        for c in 0..7usize {
            m.observe(c % 16);
        }
        assert_eq!(m.classifications(), 0);
        m.observe(7);
        assert_eq!(m.classifications(), 1, "first full window classifies");
    }

    #[test]
    fn stride_controls_classification_rate() {
        let mut m = monitor(MonitorConfig {
            votes_needed: 1,
            vote_horizon: 1,
            ..small_config()
        });
        // Feed 28 calls: windows complete at call 8, then every 4 calls.
        let calls: Vec<usize> = (0..28).map(|i| i % 16).collect();
        for &c in &calls {
            if m.alert().is_none() {
                m.observe(c);
            }
        }
        if m.alert().is_none() {
            // (8) + (12,16,20,24,28) → 6 classifications.
            assert_eq!(m.classifications(), 6);
        }
    }

    #[test]
    fn voting_debounces_single_positives() {
        // votes_needed 2 of horizon 3: one positive window cannot alert.
        let mut m = monitor(MonitorConfig {
            window_len: 8,
            stride: 4,
            votes_needed: 2,
            vote_horizon: 3,
        });
        let mut first_alert_classifications = None;
        for i in 0..200usize {
            if let Some(_a) = m.observe(i % 16) {
                first_alert_classifications = Some(m.classifications());
                break;
            }
        }
        if let Some(n) = first_alert_classifications {
            assert!(n >= 2, "an alert needs at least two positive windows");
        }
    }

    #[test]
    fn alerts_latch() {
        let mut m = monitor(small_config());
        let mut alerts = 0;
        for i in 0..400usize {
            if m.observe(i % 3).is_some() {
                alerts += 1;
            }
        }
        assert!(alerts <= 1, "alerts must latch");
        if alerts == 1 {
            assert!(m.alert().is_some());
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut m = monitor(small_config());
        for i in 0..50usize {
            m.observe(i % 16);
        }
        m.reset();
        assert_eq!(m.calls_seen(), 0);
        assert_eq!(m.classifications(), 0);
        assert!(m.alert().is_none());
    }

    #[test]
    fn alert_carries_inference_accounting() {
        let mut m = monitor(small_config());
        let alert = m.observe_all(&(0..400).map(|i| i % 2).collect::<Vec<_>>());
        if let Some(a) = alert {
            assert!(a.inference_us > 0.0);
            assert!(a.at_call >= m.config().window_len);
        }
    }

    #[test]
    fn pool_isolates_process_streams() {
        let model = SequenceClassifier::new(ModelConfig::tiny(16), 9);
        let engine = CsdInferenceEngine::new(
            &ModelWeights::from_model(&model),
            OptimizationLevel::FixedPoint,
        );
        let mut pool = MonitorPool::new(engine, small_config());
        // Interleave two processes: each stream fills its own window.
        for i in 0..200usize {
            pool.observe(1, i % 16);
            pool.observe(2, (i + 5) % 16);
        }
        assert_eq!(pool.tracked(), 2);
        // Per-process alert state is independent and consistent.
        for pid in [1u64, 2] {
            let direct = pool.alert_for(pid);
            assert_eq!(pool.alerted_pids().contains(&pid), direct.is_some());
        }
        pool.retire(1);
        assert_eq!(pool.tracked(), 1);
        assert!(pool.alert_for(1).is_none());
    }

    #[test]
    fn pool_matches_single_monitor_per_stream() {
        let model = SequenceClassifier::new(ModelConfig::tiny(16), 9);
        let engine = CsdInferenceEngine::new(
            &ModelWeights::from_model(&model),
            OptimizationLevel::FixedPoint,
        );
        let calls: Vec<usize> = (0..150).map(|i| (i * 7) % 16).collect();
        let mut single = StreamMonitor::new(engine.clone(), small_config());
        let single_alert = single.observe_all(&calls);
        let mut pool = MonitorPool::new(engine, small_config());
        let mut pool_alert = None;
        for &c in &calls {
            if pool_alert.is_none() {
                pool_alert = pool.observe(7, c);
            }
        }
        assert_eq!(single_alert, pool_alert);
    }

    #[test]
    fn oov_calls_are_dropped_and_tallied_not_a_panic() {
        let mut m = monitor(small_config());
        // ModelConfig::tiny(16) has vocab 16; token 10_000 is hostile
        // input, not a reason to take the monitor down.
        assert!(m.observe(10_000).is_none());
        assert_eq!(m.oov_calls(), 1);
        assert_eq!(m.calls_seen(), 1, "the call was still observed");
        // The window excludes the garbage: parity with a monitor that
        // never saw it, shifted by the dropped call count.
        let mut clean = monitor(small_config());
        for i in 0..40usize {
            m.observe(i % 16);
            clean.observe(i % 16);
        }
        assert_eq!(m.classifications(), clean.classifications());
        assert_eq!(
            m.alert().map(|a| a.probability),
            clean.alert().map(|a| a.probability)
        );
        m.reset();
        assert_eq!(m.oov_calls(), 0, "reset clears the tally");
    }

    #[test]
    #[should_panic(expected = "cannot need more votes")]
    fn invalid_vote_config_rejected() {
        let _ = monitor(MonitorConfig {
            votes_needed: 4,
            vote_horizon: 3,
            ..small_config()
        });
    }
}
