//! Mixed-precision inference — the paper's §VI future-work direction,
//! implemented.
//!
//! "Mixed precision procedures are commonly utilized in deep learning
//! models to enhance computational speed and efficiency by performing
//! operations in lower precision where high precision is not necessary,
//! and in higher precision where greater accuracy is required. As such,
//! exploring mixed precision alternatives on CSDs would be a notable
//! endeavour." (§VI)
//!
//! The natural split for this design: the *gate matrix-vector products*
//! (1,280 multiplies per item — the resource- and latency-critical part)
//! run at a **low** decimal scale, while the *recurrent state path*
//! (`C_t`, `h_t`, the FC head — where errors accumulate across 100
//! timesteps) runs at a **high** scale. Values cross the boundary via
//! [`csd_fxp::Fixed::rescale`].
//!
//! [`MixedPrecisionEngine`] implements that split with `Fixed<LOW>` gates
//! and `Fixed<HIGH>` state, and reports the accuracy cost so the
//! trade-off is measurable (`exp_mixed`).

use csd_fxp::{sigmoid_fx_lut, softsign_fx, Fixed};
use csd_nn::ModelWeights;
use csd_tensor::{Matrix, Vector};

use crate::engine::Classification;
use crate::kernels::{GateKind, LstmDims};
use crate::weights::QuantizedWeights;

/// A CSD engine with low-precision gate arithmetic and high-precision
/// state arithmetic.
///
/// `LOW`/`HIGH` are decimal scale exponents; the paper's uniform design
/// corresponds to `LOW = HIGH = 6`.
#[derive(Debug, Clone)]
pub struct MixedPrecisionEngine<const LOW: u32, const HIGH: u32> {
    dims: LstmDims,
    embedding: Matrix<Fixed<LOW>>,
    gate_w: [Matrix<Fixed<LOW>>; 4],
    gate_b: [Vector<Fixed<LOW>>; 4],
    fc_w: Vector<Fixed<HIGH>>,
    fc_b: Fixed<HIGH>,
}

impl<const LOW: u32, const HIGH: u32> MixedPrecisionEngine<LOW, HIGH> {
    /// Quantizes exported weights at the two scales.
    ///
    /// # Panics
    ///
    /// Panics if the weight arrays are inconsistent with their config.
    pub fn new(weights: &ModelWeights) -> Self {
        let q = QuantizedWeights::from_model_weights(weights);
        let dims = q.dims();
        let (h, z) = (dims.hidden, dims.z());
        Self {
            dims,
            embedding: Matrix::from_f64_flat(
                dims.vocab,
                dims.embed,
                &q.embedding_f64.to_f64_flat(),
            ),
            gate_w: std::array::from_fn(|g| {
                Matrix::from_f64_flat(h, z, &q.gate_w_f64[g].to_f64_flat())
            }),
            gate_b: std::array::from_fn(|g| Vector::from_f64_slice(&q.gate_b_f64[g].to_f64_vec())),
            fc_w: Vector::from_f64_slice(&q.fc_w_f64.to_f64_vec()),
            fc_b: Fixed::from_f64(q.fc_b_f64),
        }
    }

    /// The model dimensions.
    pub fn dims(&self) -> LstmDims {
        self.dims
    }

    /// Classifies one sequence with the mixed pipeline.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn classify(&self, seq: &[usize]) -> Classification {
        assert!(!seq.is_empty(), "empty sequence");
        let hdim = self.dims.hidden;
        let mut c: Vector<Fixed<HIGH>> = Vector::zeros(hdim);
        let mut h: Vector<Fixed<HIGH>> = Vector::zeros(hdim);
        for &item in seq {
            assert!(item < self.dims.vocab, "item {item} out of vocabulary");
            let x = Vector::from(self.embedding.row(item).to_vec());
            // h enters the gate stage at LOW precision.
            let h_low: Vector<Fixed<LOW>> = h.iter().map(|v| v.rescale::<LOW>()).collect();
            let z = h_low.concat(&x);
            let mut gates: [Vector<Fixed<HIGH>>; 4] = std::array::from_fn(|_| Vector::zeros(hdim));
            for kind in GateKind::ALL {
                let g = kind.index();
                let pre = self.gate_w[g].matvec(&z).add(&self.gate_b[g]);
                // Gate outputs cross back to HIGH precision before the
                // activation so the state path stays accurate.
                gates[g] = pre
                    .iter()
                    .map(|v| {
                        let wide = v.rescale::<HIGH>();
                        if kind.is_candidate() {
                            softsign_fx(wide)
                        } else {
                            sigmoid_fx_lut(wide)
                        }
                    })
                    .collect();
            }
            let [i, f, cbar, o] = [
                &gates[GateKind::Input.index()],
                &gates[GateKind::Forget.index()],
                &gates[GateKind::Candidate.index()],
                &gates[GateKind::Output.index()],
            ];
            c = f.hadamard(&c).add(&i.hadamard(cbar));
            h = o.hadamard(&c.map(softsign_fx));
        }
        let logit = Fixed::<HIGH>::dot(self.fc_w.as_slice(), h.as_slice())
            .checked_add(self.fc_b)
            .expect("fc logit overflow");
        let probability = sigmoid_fx_lut(logit).to_f64();
        Classification {
            probability,
            is_positive: probability >= 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CsdInferenceEngine;
    use crate::opt::OptimizationLevel;
    use csd_nn::{ModelConfig, SequenceClassifier};

    fn weights() -> ModelWeights {
        ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::paper(), 77))
    }

    fn seq(n: usize) -> Vec<usize> {
        (0..n).map(|i| (i * 29 + 3) % 278).collect()
    }

    #[test]
    fn uniform_66_matches_the_fx6_engine_closely() {
        let w = weights();
        let mixed = MixedPrecisionEngine::<6, 6>::new(&w);
        let uniform = CsdInferenceEngine::new(&w, OptimizationLevel::FixedPoint);
        for n in [5usize, 50, 100] {
            let s = seq(n);
            let a = mixed.classify(&s).probability;
            let b = uniform.classify(&s).probability;
            assert!((a - b).abs() < 1e-3, "n={n}: {a} vs {b}");
        }
    }

    #[test]
    fn low4_high8_tracks_f64_reference() {
        let model = SequenceClassifier::new(ModelConfig::paper(), 78);
        let w = ModelWeights::from_model(&model);
        let mixed = MixedPrecisionEngine::<4, 8>::new(&w);
        let s = seq(100);
        let drift = (mixed.classify(&s).probability - model.predict_proba(&s)).abs();
        assert!(drift < 0.05, "drift {drift}");
    }

    #[test]
    fn precision_ladder_reduces_drift() {
        // Averaged over several sequences, more gate precision tracks the
        // f64 reference at least as well.
        let model = SequenceClassifier::new(ModelConfig::paper(), 79);
        let w = ModelWeights::from_model(&model);
        let drift_for = |probe: &dyn Fn(&[usize]) -> f64| -> f64 {
            (0..8)
                .map(|k| {
                    let s: Vec<usize> = (0..100).map(|i| (i * 17 + k * 31) % 278).collect();
                    (probe(&s) - model.predict_proba(&s)).abs()
                })
                .sum::<f64>()
                / 8.0
        };
        let e3 = MixedPrecisionEngine::<3, 8>::new(&w);
        let e6 = MixedPrecisionEngine::<6, 8>::new(&w);
        let d3 = drift_for(&|s| e3.classify(s).probability);
        let d6 = drift_for(&|s| e6.classify(s).probability);
        assert!(d6 <= d3 + 1e-6, "scale 6 drift {d6} vs scale 3 drift {d3}");
        assert!(d6 < 0.01, "uniform-ish drift {d6}");
    }

    #[test]
    fn decisions_match_reference_model() {
        let model = SequenceClassifier::new(ModelConfig::paper(), 80);
        let w = ModelWeights::from_model(&model);
        let mixed = MixedPrecisionEngine::<4, 8>::new(&w);
        let mut agree = 0;
        for k in 0..10u64 {
            let s: Vec<usize> = (0..100)
                .map(|i| ((i as u64 * 13 + k * 7) % 278) as usize)
                .collect();
            if mixed.classify(&s).is_positive == model.predict(&s) {
                agree += 1;
            }
        }
        assert!(agree >= 9, "agreement {agree}/10");
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_rejected() {
        let mixed = MixedPrecisionEngine::<4, 8>::new(&weights());
        let _ = mixed.classify(&[]);
    }
}
