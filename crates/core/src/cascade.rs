//! Two-tier inference cascade: a quantized `i16` *screen* model with a
//! calibrated uncertainty band that escalates to the exact fused path.
//!
//! The deployed engine's 10^6 decimal scale honestly declines the
//! `i16×i16→i32` narrow-MAC proof (`|h| ≤ 1` is raw 10^6 ≫ `i16`), so
//! the exact path runs `i32`/FMA MACs. The cascade recovers the narrow
//! tier without touching the verdict contract:
//!
//! 1. [`csd_nn::ScreenWeights`] re-quantizes the trained model at 10^4
//!    (or lower), retrain-calibrating any recurrent row into the proof's
//!    budget, so [`ScreenGates::pack`] *never* declines.
//! 2. The screen recurrence is all-integer — `i16` hidden state, `i64`
//!    cell state, the packed [`PackedGatesI16`] MAC, a vocabulary gate
//!    table at scale², PLAN sigmoid and integer softsign — and its lane
//!    and serial forms are bit-identical by construction (the tests
//!    prove it), so escalation behaves the same at every shard count.
//! 3. A [`CascadeBand`] calibrated on held-out windows splits screen
//!    scores into *confident* (take the screen verdict) and *uncertain*
//!    (escalate to the exact path). Calibration places the band edges at
//!    the observed score extremes of the opposite class plus a safety
//!    margin, so on the calibration corpus the cascade's verdicts agree
//!    with the exact path on **every** window — the screen tier buys
//!    throughput, never correctness.
//!
//! Scores on the band boundary escalate: `decide` returns a verdict only
//! for scores *strictly* outside `[lo, hi]`.

#![deny(clippy::unwrap_used)]

use serde::{Deserialize, Serialize};

use csd_fxp::{div_round_raw, plan_sigmoid_raw, softsign_raw};
use csd_nn::{ModelWeights, ScreenQuantReport, ScreenWeights};

use crate::scratch::ScreenLaneScratch;
use crate::weights::{I16Decline, PackedGatesI16};

/// Serialization version of [`ScreenModel`]; bumped whenever the screen
/// numerics change in a way that invalidates stored calibrations.
pub const SCREEN_MODEL_VERSION: u32 = 1;

/// How the streaming mux runs the cascade (the `CSD_CASCADE` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CascadeMode {
    /// Single-tier exact path only — the parity anchor. Default.
    #[default]
    Off,
    /// Screen lanes resolve confident windows; uncertain windows
    /// escalate to the exact lane scheduler.
    On,
    /// [`CascadeMode::On`] plus a shadow exact classification of every
    /// screen-resolved window; disagreements are counted in
    /// `MuxStats::cascade_flips` (the screen verdict is still emitted,
    /// so throughput shape matches `On`). A validation harness, not a
    /// production mode.
    Verify,
}

impl CascadeMode {
    /// Whether the screen tier runs at all.
    pub fn screening(self) -> bool {
        !matches!(self, Self::Off)
    }
}

/// The calibrated uncertainty band over screen scores (raw at `scale`,
/// the screen tier's probability scale: `score/scale ∈ [0, 1]`).
///
/// Scores strictly below `lo` take the screen's *negative* verdict,
/// scores strictly above `hi` take the screen's *positive* verdict, and
/// everything in `[lo, hi]` — including both edges — escalates to the
/// exact path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CascadeBand {
    /// Lower band edge (raw screen-probability units).
    pub lo: i64,
    /// Upper band edge (raw screen-probability units).
    pub hi: i64,
    /// The screen scale the edges are expressed at.
    pub scale: i64,
}

impl CascadeBand {
    /// The screen verdict for `score`, or `None` when the window must
    /// escalate. Band edges escalate.
    pub fn decide(&self, score: i64) -> Option<bool> {
        if score < self.lo {
            Some(false)
        } else if score > self.hi {
            Some(true)
        } else {
            None
        }
    }

    /// Band width as a fraction of the probability range (diagnostic).
    pub fn width_frac(&self) -> f64 {
        (self.hi - self.lo).max(0) as f64 / self.scale as f64
    }

    /// The *forced* verdict for a score, used by the mux's screen-only
    /// overload mode when escalation to the exact path is suspended:
    /// the band splits at its midpoint (`2·score > lo + hi` is
    /// positive). Outside the band this agrees with
    /// [`decide`](Self::decide); inside it, the verdict is a knowingly
    /// degraded best effort, counted separately (`MuxStats::forced_screen`)
    /// so overload-mode coverage is never mistaken for calibrated
    /// screening.
    pub fn force(&self, score: i64) -> bool {
        score.saturating_mul(2) > self.lo.saturating_add(self.hi)
    }
}

/// A screen model ready to store or ship: the quantized weights plus
/// their calibrated band, under a serialization version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScreenModel {
    /// Must equal [`SCREEN_MODEL_VERSION`] to load.
    pub version: u32,
    /// The quantized screen weights.
    pub weights: ScreenWeights,
    /// The calibrated uncertainty band.
    pub band: CascadeBand,
}

impl ScreenModel {
    /// Serializes to JSON.
    ///
    /// # Panics
    ///
    /// Panics only if JSON serialization itself fails (it cannot for
    /// these types).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("screen model serializes")
    }

    /// Deserializes from JSON, refusing unknown versions and bands whose
    /// scale disagrees with the weights.
    ///
    /// # Errors
    ///
    /// Returns a description when the JSON is malformed, the version is
    /// not [`SCREEN_MODEL_VERSION`], or the band scale mismatches.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let model: Self = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if model.version != SCREEN_MODEL_VERSION {
            return Err(format!(
                "screen model version {} unsupported (this build reads {})",
                model.version, SCREEN_MODEL_VERSION
            ));
        }
        if model.band.scale != model.weights.scale() {
            return Err(format!(
                "band scale {} disagrees with weights scale {}",
                model.band.scale,
                model.weights.scale()
            ));
        }
        Ok(model)
    }
}

/// The screen tier's runtime form: the fused recurrent matrix packed
/// through the `i16` narrow-MAC proof, the vocabulary gate table at
/// scale² (input contribution and bias folded per item), and the
/// logistic head.
#[derive(Debug, Clone)]
pub struct ScreenGates {
    recurrent: PackedGatesI16,
    /// `vocab × 4H`, entry `[v·4H + r] = Σ_e w_x[r][e]·emb[v][e] + bias[r]·scale`.
    table: Vec<i64>,
    fc_w: Vec<i64>,
    fc_b: i64,
    scale: i64,
    hidden: usize,
    vocab: usize,
}

impl ScreenGates {
    /// Packs quantized screen weights into runtime form. Because
    /// [`ScreenWeights::quantize`] retrain-calibrates every recurrent
    /// row into the proof's budget, this never declines on its output;
    /// the `Result` guards hand-built weights.
    ///
    /// # Errors
    ///
    /// Returns the structured [`I16Decline`] when a recurrent row fails
    /// `row_fits_i16_mac` against the `|h| ≤ scale` bound.
    ///
    /// # Panics
    ///
    /// Panics when the weight array lengths disagree with the config.
    pub fn pack(w: &ScreenWeights) -> Result<Self, I16Decline> {
        let (h, e, v) = (w.config.hidden, w.config.embed_dim, w.config.vocab);
        assert_eq!(w.w_h.len(), 4 * h * h, "recurrent size mismatch");
        assert_eq!(w.w_x.len(), 4 * h * e, "kernel size mismatch");
        assert_eq!(w.bias.len(), 4 * h, "bias size mismatch");
        assert_eq!(w.embedding.len(), v * e, "embedding size mismatch");
        assert_eq!(w.fc_w.len(), h, "head size mismatch");
        let scale = w.scale();
        let zbound = vec![scale; h];
        let recurrent = PackedGatesI16::pack_rows_raw(4 * h, h, &w.w_h, &zbound)?;
        let mut table = Vec::with_capacity(v * 4 * h);
        for item in 0..v {
            let emb = &w.embedding[item * e..(item + 1) * e];
            for r in 0..4 * h {
                let mut acc = w.bias[r] as i128 * scale as i128;
                for (wx, em) in w.w_x[r * e..(r + 1) * e].iter().zip(emb) {
                    acc += *wx as i128 * *em as i128;
                }
                table.push(i64::try_from(acc).expect("screen gate-table entry fits i64"));
            }
        }
        Ok(Self {
            recurrent,
            table,
            fc_w: w.fc_w.clone(),
            fc_b: w.fc_b,
            scale,
            hidden: h,
            vocab: v,
        })
    }

    /// The screen scale (raw probability units per 1.0).
    pub fn scale(&self) -> i64 {
        self.scale
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Vocabulary size the gate table covers.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// The packed recurrent matrix (introspection).
    pub fn recurrent(&self) -> &PackedGatesI16 {
        &self.recurrent
    }

    /// Heap bytes held by the packed screen tier.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of_val(self.recurrent.weights())
            + self.table.capacity() * std::mem::size_of::<i64>()
            + self.fc_w.capacity() * std::mem::size_of::<i64>()
    }

    /// The logistic head over a hidden state read through `h_at`:
    /// `σ_PLAN(div_round(Σ fc_w[k]·h[k] + fc_b·scale, scale))`, raw at
    /// `scale`. Shared by the serial and lane retire paths so they
    /// cannot drift.
    fn head<F: Fn(usize) -> i16>(&self, h_at: F) -> i64 {
        let mut acc = self.fc_b * self.scale;
        for (k, wk) in self.fc_w.iter().enumerate() {
            acc += wk * h_at(k) as i64;
        }
        plan_sigmoid_raw(div_round_raw(acc, self.scale), self.scale)
    }

    /// Serial reference scorer: walks `seq` through the integer
    /// recurrence and returns the raw screen probability. Bit-identical
    /// to the lane path ([`Self::step_lanes`] + [`Self::retire_lane`])
    /// by construction — the serial loop performs the same integer
    /// operations in the same order per element.
    ///
    /// Allocates its small state buffers (`≤ 6·4H` words); the mux's
    /// bulk path uses the lane form instead.
    ///
    /// # Panics
    ///
    /// Panics when any item is outside the vocabulary.
    pub fn score_serial(&self, seq: &[usize]) -> i64 {
        let hd = self.hidden;
        let mut h = vec![0i16; hd];
        let mut c = vec![0i64; hd];
        let mut g = vec![0i64; 4 * hd];
        let w = self.recurrent.weights();
        for &item in seq {
            assert!(
                item < self.vocab,
                "item {item} outside vocab {}",
                self.vocab
            );
            let trow = &self.table[item * 4 * hd..(item + 1) * 4 * hd];
            for r in 0..4 * hd {
                // Exact by the narrow-MAC proof: the lane kernel's i32
                // sum equals this i64 sum.
                let mut mac = 0i64;
                for (wk, hk) in w[r * hd..(r + 1) * hd].iter().zip(&h) {
                    mac += *wk as i64 * *hk as i64;
                }
                g[r] = div_round_raw(mac + trow[r], self.scale);
            }
            for v in &mut g[..2 * hd] {
                *v = plan_sigmoid_raw(*v, self.scale);
            }
            for v in &mut g[2 * hd..3 * hd] {
                *v = softsign_raw(*v, self.scale);
            }
            for v in &mut g[3 * hd..] {
                *v = plan_sigmoid_raw(*v, self.scale);
            }
            for j in 0..hd {
                let (gi, gf, gc, go) = (g[j], g[hd + j], g[2 * hd + j], g[3 * hd + j]);
                let ct = div_round_raw(gf * c[j] + gi * gc, self.scale);
                c[j] = ct;
                h[j] = div_round_raw(go * softsign_raw(ct, self.scale), self.scale) as i16;
            }
        }
        self.head(|k| h[k])
    }

    /// Advances every lane one timestep. `items[l] = Some(v)` moves lane
    /// `l` onto item `v` first; `None` lanes re-step on their previous
    /// item (idle lanes park on the bounded placeholder row 0 — same
    /// contract as the exact lane path, only retired lanes' outputs are
    /// read).
    ///
    /// # Panics
    ///
    /// Panics when `items.len()` disagrees with the scratch width or an
    /// item is outside the vocabulary.
    pub fn step_lanes(&self, s: &mut ScreenLaneScratch, items: &[Option<usize>]) {
        let width = s.width();
        assert_eq!(items.len(), width, "one item slot per lane");
        assert_eq!(
            s.h.len(),
            self.hidden * width,
            "scratch sized for this model"
        );
        for (slot, it) in s.item.iter_mut().zip(items) {
            if let Some(v) = *it {
                assert!(v < self.vocab, "item {v} outside vocab {}", self.vocab);
                *slot = v;
            }
        }
        self.recurrent.matmul_lanes_into(&s.h, width, &mut s.mac);
        csd_tensor::lanes::screen_preact_lanes(
            &s.mac,
            4 * self.hidden,
            width,
            &self.table,
            &s.item,
            self.scale,
            &mut s.g,
        );
        csd_tensor::lanes::screen_activate_lanes(&mut s.g, self.hidden, width, self.scale);
        csd_tensor::lanes::screen_update_lanes(
            &s.g,
            self.hidden,
            width,
            self.scale,
            &mut s.c,
            &mut s.h,
        );
    }

    /// Reads one finished lane's raw screen probability.
    pub fn retire_lane(&self, s: &ScreenLaneScratch, lane: usize) -> i64 {
        let width = s.width();
        self.head(|k| s.h[k * width + lane])
    }

    /// Scores a batch of sequences through the lane path — the bulk
    /// counterpart of [`score_serial`](Self::score_serial), bit-identical
    /// to it per sequence (the parity tests prove it). Sequences are
    /// processed `width` lanes at a time; a lane whose sequence ends
    /// before the chunk's longest retires at its own last step and parks
    /// for the remainder, exactly the mux's schedule.
    ///
    /// The schedule contract is explicit about degenerate shapes: an
    /// empty batch (or an empty chunk) runs zero lane steps and
    /// contributes no scores — `max()` over no lane lengths is `None`,
    /// never a panic — and a zero-length sequence scores the head of the
    /// zero state, matching `score_serial(&[])`.
    ///
    /// # Panics
    ///
    /// Panics when `width` is zero or any item is outside the
    /// vocabulary.
    pub fn score_lanes(&self, seqs: &[&[usize]], width: usize) -> Vec<i64> {
        assert!(width > 0, "a lane block needs at least one lane");
        let mut out = Vec::with_capacity(seqs.len());
        for chunk in seqs.chunks(width) {
            let mut s = ScreenLaneScratch::new(self.hidden, width);
            // `chunks` never yields an empty slice, but the schedule
            // must not depend on that: no lanes → no steps, no scores.
            let Some(longest) = chunk.iter().map(|q| q.len()).max() else {
                continue;
            };
            let mut done: Vec<Option<i64>> = vec![None; chunk.len()];
            let mut items: Vec<Option<usize>> = vec![None; width];
            for t in 0..longest {
                // A lane whose sequence just ended retires *before* its
                // first parked step (None re-steps the previous item).
                for (l, q) in chunk.iter().enumerate() {
                    if t == q.len() && done[l].is_none() {
                        done[l] = Some(self.retire_lane(&s, l));
                    }
                }
                for (l, slot) in items.iter_mut().enumerate() {
                    *slot = chunk.get(l).and_then(|q| q.get(t).copied());
                }
                self.step_lanes(&mut s, &items);
            }
            for (l, score) in done.into_iter().enumerate() {
                out.push(score.unwrap_or_else(|| self.retire_lane(&s, l)));
            }
        }
        out
    }
}

/// The attached cascade: packed screen gates plus the stored model they
/// came from (weights + band), clone-cheap behind the engine's `Arc`.
#[derive(Debug, Clone)]
pub struct CascadeTier {
    model: ScreenModel,
    gates: ScreenGates,
}

impl CascadeTier {
    /// Builds the runtime tier from a stored model.
    ///
    /// # Errors
    ///
    /// Returns [`I16Decline`] when the model's recurrent rows fail the
    /// narrow-MAC proof (impossible for [`ScreenWeights::quantize`]
    /// output, possible for hand-built weights).
    pub fn from_model(model: ScreenModel) -> Result<Self, I16Decline> {
        let gates = ScreenGates::pack(&model.weights)?;
        Ok(Self { model, gates })
    }

    /// The stored model (for serialization).
    pub fn model(&self) -> &ScreenModel {
        &self.model
    }

    /// The calibrated band.
    pub fn band(&self) -> CascadeBand {
        self.model.band
    }

    /// The packed screen gates.
    pub fn gates(&self) -> &ScreenGates {
        &self.gates
    }

    /// Serial screen pass: the raw score and the band's decision
    /// (`None` = escalate to the exact path).
    pub fn screen(&self, seq: &[usize]) -> (i64, Option<bool>) {
        let score = self.gates.score_serial(seq);
        (score, self.model.band.decide(score))
    }
}

/// What calibration saw and produced — reported by the cascade campaign
/// and stored alongside benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Calibration windows scored.
    pub windows: usize,
    /// Exact-positive windows among them.
    pub positives: usize,
    /// Exact-negative windows among them.
    pub negatives: usize,
    /// Windows the calibrated band escalates.
    pub escalated: usize,
    /// `escalated / windows` (0 when no windows).
    pub escalation_rate: f64,
    /// Calibrated lower edge.
    pub lo: i64,
    /// Calibrated upper edge.
    pub hi: i64,
}

/// Calibrates the uncertainty band from `(screen score, exact verdict)`
/// pairs: `lo` sits `margin` below the lowest positive's score and `hi`
/// sits `margin` above the highest negative's score, so every
/// calibration window either escalates or screens to the verdict the
/// exact path gave — zero flips on the calibration set by construction.
///
/// When the classes separate cleanly (`lo > hi`), both edges collapse to
/// the midpoint: confident scores on each side keep their verdict and
/// only an exact hit on the midpoint escalates. Degenerate sets are
/// conservative: with no positives every score screens negative; with no
/// negatives every score screens positive; with neither, everything
/// escalates.
pub fn calibrate_band(
    scale: i64,
    samples: &[(i64, bool)],
    margin: i64,
) -> (CascadeBand, CalibrationReport) {
    let margin = margin.max(0);
    let positives = samples.iter().filter(|&&(_, p)| p).count();
    let negatives = samples.len() - positives;
    let min_pos = samples.iter().filter(|&&(_, p)| p).map(|&(s, _)| s).min();
    let max_neg = samples.iter().filter(|&&(_, p)| !p).map(|&(s, _)| s).max();
    let band = match (min_pos, max_neg) {
        (Some(mp), Some(mn)) => {
            let (mut lo, mut hi) = (mp - margin, mn + margin);
            if lo > hi {
                // Clean separation — collapse to the midpoint; only an
                // exact hit on it escalates.
                let mid = lo + (hi - lo) / 2;
                lo = mid;
                hi = mid;
            }
            CascadeBand { lo, hi, scale }
        }
        // Single-class and empty sets keep an explicit empty or full
        // band (an empty interval `lo > hi` never escalates).
        // No positives observed: everything may screen negative.
        (None, Some(_)) => CascadeBand {
            lo: scale + 1,
            hi: scale,
            scale,
        },
        // No negatives observed: everything may screen positive.
        (Some(_), None) => CascadeBand {
            lo: 0,
            hi: -1,
            scale,
        },
        // Nothing observed: escalate everything.
        (None, None) => CascadeBand {
            lo: 0,
            hi: scale,
            scale,
        },
    };
    let escalated = samples
        .iter()
        .filter(|&&(s, _)| band.decide(s).is_none())
        .count();
    debug_assert!(
        samples
            .iter()
            .all(|&(s, p)| band.decide(s).is_none_or(|v| v == p)),
        "calibrated band contradicts a calibration sample"
    );
    let report = CalibrationReport {
        windows: samples.len(),
        positives,
        negatives,
        escalated,
        escalation_rate: if samples.is_empty() {
            0.0
        } else {
            escalated as f64 / samples.len() as f64
        },
        lo: band.lo,
        hi: band.hi,
    };
    (band, report)
}

/// End-to-end cascade construction: quantize the trained export at
/// `10^scale_pow`, pack the screen gates, score every calibration
/// window, query the exact path's verdict through `exact`, and calibrate
/// the band with `margin_frac·scale` of slack.
///
/// # Errors
///
/// Returns [`I16Decline`] only for hand-built weights whose rows evade
/// the quantizer's retrain-calibration (never for real exports).
///
/// # Panics
///
/// Panics when `scale_pow` is outside the provable range (see
/// [`csd_nn::SCREEN_SCALE_POW_MAX`]).
pub fn build_cascade<F: Fn(&[usize]) -> bool>(
    weights: &ModelWeights,
    scale_pow: u32,
    margin_frac: f64,
    windows: &[Vec<usize>],
    exact: F,
) -> Result<(CascadeTier, CalibrationReport, ScreenQuantReport), I16Decline> {
    let (screen, quant) = ScreenWeights::quantize(weights, scale_pow);
    let gates = ScreenGates::pack(&screen)?;
    let scale = gates.scale();
    let samples: Vec<(i64, bool)> = windows
        .iter()
        .map(|w| (gates.score_serial(w), exact(w)))
        .collect();
    let margin = ((margin_frac.max(0.0) * scale as f64).round() as i64).max(0);
    let (band, report) = calibrate_band(scale, &samples, margin);
    let tier = CascadeTier {
        model: ScreenModel {
            version: SCREEN_MODEL_VERSION,
            weights: screen,
            band,
        },
        gates,
    };
    Ok((tier, report, quant))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use csd_nn::{ModelConfig, SequenceClassifier};

    fn screen_weights(pow: u32) -> ScreenWeights {
        let model = SequenceClassifier::new(ModelConfig::paper(), 77);
        ScreenWeights::quantize(&ModelWeights::from_model(&model), pow).0
    }

    fn sequences(vocab: usize) -> Vec<Vec<usize>> {
        // Deterministic mixed-length item streams.
        (0..17)
            .map(|i| {
                let len = 1 + (i * 7) % 23;
                (0..len).map(|t| (i * 131 + t * 48_271) % vocab).collect()
            })
            .collect()
    }

    #[test]
    fn lane_and_serial_screen_paths_are_bit_identical() {
        for pow in [3u32, 4] {
            let gates = ScreenGates::pack(&screen_weights(pow)).expect("packs");
            let seqs = sequences(gates.vocab());
            let views: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
            for width in [1usize, 3, 16] {
                let lane_scores = gates.score_lanes(&views, width);
                assert_eq!(lane_scores.len(), seqs.len());
                for (l, (seq, lane_score)) in seqs.iter().zip(&lane_scores).enumerate() {
                    assert_eq!(
                        *lane_score,
                        gates.score_serial(seq),
                        "pow={pow} width={width} lane={l} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_chunk_scores_no_lanes_instead_of_panicking() {
        // Regression: the lane-walk schedule took `max()` over the
        // chunk's sequence lengths and unwrapped it, so the empty-chunk
        // shape panicked instead of scheduling zero steps.
        let gates = ScreenGates::pack(&screen_weights(4)).expect("packs");
        assert!(gates.score_lanes(&[], 1).is_empty());
        assert!(gates.score_lanes(&[], 16).is_empty());
    }

    #[test]
    fn zero_length_sequences_score_the_zero_state_on_both_paths() {
        let gates = ScreenGates::pack(&screen_weights(4)).expect("packs");
        let serial = gates.score_serial(&[]);
        // Alone, and sharing a chunk with a non-empty lane (the parked
        // lane must retire before its first step).
        assert_eq!(gates.score_lanes(&[&[]], 4), vec![serial]);
        let other: Vec<usize> = vec![1, 2, 3];
        let scores = gates.score_lanes(&[&[], &other], 4);
        assert_eq!(scores[0], serial);
        assert_eq!(scores[1], gates.score_serial(&other));
    }

    #[test]
    fn gate_table_folds_input_and_bias_exactly() {
        let w = screen_weights(4);
        let gates = ScreenGates::pack(&w).expect("packs");
        let (h, e) = (w.config.hidden, w.config.embed_dim);
        let item = 42 % w.config.vocab;
        let r = 3 * h + 7; // gate o, row 7
        let mut want = w.bias[r] as i128 * w.scale() as i128;
        for k in 0..e {
            want += w.w_x[r * e + k] as i128 * w.embedding[item * e + k] as i128;
        }
        assert_eq!(gates.table[item * 4 * h + r] as i128, want);
    }

    #[test]
    fn band_edges_escalate_and_outside_decides() {
        let band = CascadeBand {
            lo: 2_000,
            hi: 7_000,
            scale: 10_000,
        };
        assert_eq!(band.decide(1_999), Some(false));
        assert_eq!(band.decide(2_000), None, "lower edge escalates");
        assert_eq!(band.decide(5_000), None);
        assert_eq!(band.decide(7_000), None, "upper edge escalates");
        assert_eq!(band.decide(7_001), Some(true));
    }

    #[test]
    fn calibration_never_contradicts_its_samples() {
        let scale = 10_000;
        // Overlapping classes: negatives up to 6000, positives from 4000.
        let mut samples = Vec::new();
        for i in 0..50 {
            samples.push((1_000 + i * 100, false));
            samples.push((4_000 + i * 100, true));
        }
        let (band, report) = calibrate_band(scale, &samples, 150);
        assert_eq!(band.lo, 4_000 - 150);
        assert_eq!(band.hi, 5_900 + 150);
        for &(s, p) in &samples {
            if let Some(v) = band.decide(s) {
                assert_eq!(v, p, "screen verdict flips sample at {s}");
            }
        }
        assert_eq!(report.windows, 100);
        assert_eq!(report.positives, 50);
        assert!(report.escalated > 0);
        assert!((report.escalation_rate - report.escalated as f64 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn clean_separation_collapses_to_midpoint() {
        let samples = [(1_000, false), (2_000, false), (8_000, true), (9_000, true)];
        let (band, report) = calibrate_band(10_000, &samples, 100);
        assert_eq!(band.lo, band.hi, "collapsed");
        assert!(band.lo > 2_100 && band.hi < 7_900);
        assert_eq!(report.escalated, 0);
        assert_eq!(band.decide(band.lo), None, "only the midpoint escalates");
    }

    #[test]
    fn degenerate_calibrations_stay_conservative() {
        let scale = 10_000;
        // Single-class sets screen everything to that class.
        let (neg_only, _) = calibrate_band(scale, &[(3_000, false)], 100);
        assert_eq!(neg_only.decide(9_999), Some(false));
        assert_eq!(neg_only.decide(0), Some(false));
        let (pos_only, _) = calibrate_band(scale, &[(3_000, true)], 100);
        assert_eq!(pos_only.decide(0), Some(true));
        // Empty set escalates the whole range.
        let (empty, report) = calibrate_band(scale, &[], 100);
        assert_eq!(empty.decide(0), None);
        assert_eq!(empty.decide(scale), None);
        assert_eq!(report.escalation_rate, 0.0);
    }

    #[test]
    fn screen_model_serde_roundtrip_and_version_gate() {
        let weights = screen_weights(3);
        let band = CascadeBand {
            lo: 100,
            hi: 900,
            scale: weights.scale(),
        };
        let model = ScreenModel {
            version: SCREEN_MODEL_VERSION,
            weights,
            band,
        };
        let json = model.to_json();
        let back = ScreenModel::from_json(&json).expect("round-trips");
        assert_eq!(back, model);

        let mut wrong = model.clone();
        wrong.version = SCREEN_MODEL_VERSION + 1;
        let err = ScreenModel::from_json(&wrong.to_json()).unwrap_err();
        assert!(err.contains("version"), "{err}");

        let mut mismatched = model;
        mismatched.band.scale += 1;
        let err = ScreenModel::from_json(&mismatched.to_json()).unwrap_err();
        assert!(err.contains("scale"), "{err}");
    }

    #[test]
    fn build_cascade_end_to_end_agrees_with_the_exact_oracle() {
        let model = SequenceClassifier::new(ModelConfig::paper(), 5);
        let weights = ModelWeights::from_model(&model);
        let windows = sequences(weights.config.vocab);
        // Any deterministic oracle works for the zero-flip property.
        let exact = |w: &[usize]| model.predict_proba(w) >= 0.5;
        let (tier, report, quant) =
            build_cascade(&weights, 4, 0.02, &windows, exact).expect("builds");
        assert_eq!(quant.scale, 10_000);
        assert_eq!(report.windows, windows.len());
        for w in &windows {
            let (_, decision) = tier.screen(w);
            if let Some(v) = decision {
                assert_eq!(v, exact(w), "cascade flipped a calibration window");
            }
        }
        // The stored model round-trips into an identical tier.
        let reloaded = CascadeTier::from_model(
            ScreenModel::from_json(&tier.model().to_json()).expect("loads"),
        )
        .expect("packs");
        for w in &windows {
            assert_eq!(reloaded.screen(w), tier.screen(w));
        }
    }
}
