//! The per-item pipeline schedule of §III-C.
//!
//! "While an item in the sequence is being processed by the kernel_gates
//! CUs and kernel_hidden_state, kernel_preprocess preemptively processes
//! the next item in the sequence to generate its embeddings in parallel so
//! the embeddings can be consumed by the kernel_gates CUs when available."
//!
//! [`PipelineSchedule`] turns the per-kernel timings of
//! [`crate::timing::breakdown`] into that two-stage software pipeline:
//!
//! ```text
//! stage A: kernel_preprocess(item t+1)            ── overlaps ──┐
//! stage B: kernel_gates(item t) → kernel_hidden_state(item t) ◀─┘
//! ```
//!
//! The recurrence forces gates→hidden to serialize within an item (the
//! gates need `h_{t−1}`, hidden needs the gates), so the steady-state
//! per-item cost is `max(preprocess, gates + hidden)` and the bottleneck
//! stage is explicit. [`PipelineSchedule::simulate`] also produces the
//! full Gantt-style event trace for inspection and testing.

use serde::{Deserialize, Serialize};

use crate::kernels::LstmDims;
use crate::opt::OptimizationLevel;
use crate::timing::{breakdown, KernelBreakdown};

/// Which pipeline stage bounds the steady-state item rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bottleneck {
    /// The embedding/fan-out stage (memory-bound designs).
    Preprocess,
    /// The gates + hidden-state compute chain.
    Compute,
}

/// One executed kernel occurrence in the simulated schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleEvent {
    /// Item index within the sequence.
    pub item: usize,
    /// Kernel name tag: `"preprocess"`, `"gates"`, or `"hidden"`.
    pub kernel: &'static str,
    /// Start time in µs from sequence start.
    pub start_us: f64,
    /// End time in µs.
    pub end_us: f64,
}

/// The derived pipeline timing for one optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineSchedule {
    /// Per-kernel times feeding the schedule.
    pub breakdown: KernelBreakdown,
    /// Steady-state per-item time: `max(preprocess, gates + hidden)`.
    pub steady_item_us: f64,
    /// Which stage sets that rate.
    pub bottleneck: Bottleneck,
    /// Pipeline fill time (the first item has no prefetch to hide).
    pub fill_us: f64,
}

impl PipelineSchedule {
    /// Builds the schedule for `level` on the paper's model dimensions.
    pub fn for_level(level: OptimizationLevel) -> Self {
        Self::from_breakdown(breakdown(level, &LstmDims::paper()))
    }

    /// Builds the schedule from an explicit per-kernel breakdown.
    pub fn from_breakdown(b: KernelBreakdown) -> Self {
        let compute = b.gates_us + b.hidden_us;
        let steady = b.preprocess_us.max(compute);
        Self {
            breakdown: b,
            steady_item_us: steady,
            bottleneck: if b.preprocess_us > compute {
                Bottleneck::Preprocess
            } else {
                Bottleneck::Compute
            },
            fill_us: b.preprocess_us,
        }
    }

    /// Total time for an `items`-long sequence under the pipeline:
    /// `fill + items × steady`.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn sequence_us(&self, items: usize) -> f64 {
        assert!(items > 0, "empty sequence");
        self.fill_us + items as f64 * self.steady_item_us
    }

    /// The unpipelined (paper-Fig.-3-sum) time for comparison:
    /// `items × (preprocess + gates + hidden)`.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn sequence_unpipelined_us(&self, items: usize) -> f64 {
        assert!(items > 0, "empty sequence");
        items as f64 * self.breakdown.total_us()
    }

    /// Simulates the schedule for `items` items, returning every kernel
    /// occurrence. Invariants encoded (and tested):
    ///
    /// - `preprocess(t+1)` starts no later than `gates(t)` does;
    /// - `gates(t)` starts only when both `preprocess(t)` and
    ///   `hidden(t−1)` (which produces `h_{t−1}`) are done;
    /// - `hidden(t)` follows `gates(t)`.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn simulate(&self, items: usize) -> Vec<ScheduleEvent> {
        assert!(items > 0, "empty sequence");
        let b = self.breakdown;
        let mut events = Vec::with_capacity(items * 3);
        let mut pre_done = vec![0.0f64; items];
        let mut hidden_done = 0.0f64;
        let mut pre_free = 0.0f64;
        // Preprocess is eager: it runs as soon as its circuit is free.
        for (t, done) in pre_done.iter_mut().enumerate() {
            let start = pre_free;
            let end = start + b.preprocess_us;
            events.push(ScheduleEvent {
                item: t,
                kernel: "preprocess",
                start_us: start,
                end_us: end,
            });
            *done = end;
            pre_free = end;
        }
        for (t, &pre) in pre_done.iter().enumerate() {
            let g_start = pre.max(hidden_done);
            let g_end = g_start + b.gates_us;
            events.push(ScheduleEvent {
                item: t,
                kernel: "gates",
                start_us: g_start,
                end_us: g_end,
            });
            let h_end = g_end + b.hidden_us;
            events.push(ScheduleEvent {
                item: t,
                kernel: "hidden",
                start_us: g_end,
                end_us: h_end,
            });
            hidden_done = h_end;
        }
        events.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        events
    }

    /// The simulated makespan for `items` items.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn simulated_makespan_us(&self, items: usize) -> f64 {
        self.simulate(items)
            .iter()
            .map(|e| e.end_us)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed() -> PipelineSchedule {
        PipelineSchedule::for_level(OptimizationLevel::FixedPoint)
    }

    #[test]
    fn steady_state_is_max_of_stages() {
        for level in OptimizationLevel::ALL {
            let s = PipelineSchedule::for_level(level);
            let b = s.breakdown;
            assert_eq!(
                s.steady_item_us,
                b.preprocess_us.max(b.gates_us + b.hidden_us),
                "{level}"
            );
        }
    }

    #[test]
    fn pipeline_beats_unpipelined_sum() {
        for level in OptimizationLevel::ALL {
            let s = PipelineSchedule::for_level(level);
            assert!(
                s.sequence_us(100) < s.sequence_unpipelined_us(100),
                "{level}: prefetch overlap must save time"
            );
        }
    }

    #[test]
    fn compute_bound_at_every_level() {
        // With these kernels the gates+hidden chain dominates preprocess,
        // so prefetching fully hides the embedding generation — the point
        // of §III-C.
        for level in OptimizationLevel::ALL {
            assert_eq!(
                PipelineSchedule::for_level(level).bottleneck,
                Bottleneck::Compute,
                "{level}"
            );
        }
    }

    #[test]
    fn simulation_matches_closed_form() {
        for level in OptimizationLevel::ALL {
            let s = PipelineSchedule::for_level(level);
            for items in [1usize, 2, 10, 100] {
                let sim = s.simulated_makespan_us(items);
                // Closed form: fill + n·steady is exact when compute-bound.
                let closed = s.sequence_us(items);
                assert!(
                    (sim - closed).abs() < 1e-9,
                    "{level} n={items}: sim {sim} vs closed {closed}"
                );
            }
        }
    }

    #[test]
    fn prefetch_overlaps_compute() {
        let s = fixed();
        let events = s.simulate(5);
        // preprocess(1) must start before gates(0) ends.
        let pre1 = events
            .iter()
            .find(|e| e.kernel == "preprocess" && e.item == 1)
            .expect("pre1");
        let gates0 = events
            .iter()
            .find(|e| e.kernel == "gates" && e.item == 0)
            .expect("gates0");
        assert!(pre1.start_us < gates0.end_us + s.breakdown.hidden_us);
    }

    #[test]
    fn recurrence_dependencies_respected() {
        let s = fixed();
        let events = s.simulate(20);
        let find = |kernel: &str, item: usize| {
            *events
                .iter()
                .find(|e| e.kernel == kernel && e.item == item)
                .expect("event")
        };
        for t in 0..20 {
            let pre = find("preprocess", t);
            let gates = find("gates", t);
            let hidden = find("hidden", t);
            assert!(gates.start_us >= pre.end_us - 1e-12, "gates wait for x_t");
            assert!(
                hidden.start_us >= gates.end_us - 1e-12,
                "hidden waits for the gates"
            );
            if t > 0 {
                let prev_hidden = find("hidden", t - 1);
                assert!(
                    gates.start_us >= prev_hidden.end_us - 1e-12,
                    "gates wait for h_(t-1)"
                );
            }
        }
    }

    #[test]
    fn event_count_and_ordering() {
        let events = fixed().simulate(7);
        assert_eq!(events.len(), 21);
        for pair in events.windows(2) {
            assert!(pair[0].start_us <= pair[1].start_us);
        }
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn zero_items_rejected() {
        let _ = fixed().sequence_us(0);
    }
}
