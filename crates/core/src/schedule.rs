//! The per-item pipeline schedule of §III-C.
//!
//! "While an item in the sequence is being processed by the kernel_gates
//! CUs and kernel_hidden_state, kernel_preprocess preemptively processes
//! the next item in the sequence to generate its embeddings in parallel so
//! the embeddings can be consumed by the kernel_gates CUs when available."
//!
//! [`PipelineSchedule`] turns the per-kernel timings of
//! [`crate::timing::breakdown`] into that two-stage software pipeline:
//!
//! ```text
//! stage A: kernel_preprocess(item t+1)            ── overlaps ──┐
//! stage B: kernel_gates(item t) → kernel_hidden_state(item t) ◀─┘
//! ```
//!
//! The recurrence forces gates→hidden to serialize within an item (the
//! gates need `h_{t−1}`, hidden needs the gates), so the steady-state
//! per-item cost is `max(preprocess, gates + hidden)` and the bottleneck
//! stage is explicit. [`PipelineSchedule::simulate`] also produces the
//! full Gantt-style event trace for inspection and testing.

use serde::{Deserialize, Serialize};

use crate::kernels::LstmDims;
use crate::opt::OptimizationLevel;
use crate::timing::{breakdown, KernelBreakdown};

/// Which pipeline stage bounds the steady-state item rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bottleneck {
    /// The embedding/fan-out stage (memory-bound designs).
    Preprocess,
    /// The gates + hidden-state compute chain.
    Compute,
}

/// One executed kernel occurrence in the simulated schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleEvent {
    /// Item index within the sequence.
    pub item: usize,
    /// Kernel name tag: `"preprocess"`, `"gates"`, or `"hidden"`.
    pub kernel: &'static str,
    /// Start time in µs from sequence start.
    pub start_us: f64,
    /// End time in µs.
    pub end_us: f64,
}

/// The derived pipeline timing for one optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineSchedule {
    /// Per-kernel times feeding the schedule.
    pub breakdown: KernelBreakdown,
    /// Steady-state per-item time: `max(preprocess, gates + hidden)`.
    pub steady_item_us: f64,
    /// Which stage sets that rate.
    pub bottleneck: Bottleneck,
    /// Pipeline fill time (the first item has no prefetch to hide).
    pub fill_us: f64,
}

impl PipelineSchedule {
    /// Builds the schedule for `level` on the paper's model dimensions.
    pub fn for_level(level: OptimizationLevel) -> Self {
        Self::from_breakdown(breakdown(level, &LstmDims::paper()))
    }

    /// Builds the schedule from an explicit per-kernel breakdown.
    pub fn from_breakdown(b: KernelBreakdown) -> Self {
        let compute = b.gates_us + b.hidden_us;
        let steady = b.preprocess_us.max(compute);
        Self {
            breakdown: b,
            steady_item_us: steady,
            bottleneck: if b.preprocess_us > compute {
                Bottleneck::Preprocess
            } else {
                Bottleneck::Compute
            },
            fill_us: b.preprocess_us,
        }
    }

    /// Total time for an `items`-long sequence under the pipeline:
    /// `fill + items × steady`.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn sequence_us(&self, items: usize) -> f64 {
        assert!(items > 0, "empty sequence");
        self.fill_us + items as f64 * self.steady_item_us
    }

    /// The unpipelined (paper-Fig.-3-sum) time for comparison:
    /// `items × (preprocess + gates + hidden)`.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn sequence_unpipelined_us(&self, items: usize) -> f64 {
        assert!(items > 0, "empty sequence");
        items as f64 * self.breakdown.total_us()
    }

    /// Simulates the schedule for `items` items, returning every kernel
    /// occurrence. Invariants encoded (and tested):
    ///
    /// - `preprocess(t+1)` starts no later than `gates(t)` does;
    /// - `gates(t)` starts only when both `preprocess(t)` and
    ///   `hidden(t−1)` (which produces `h_{t−1}`) are done;
    /// - `hidden(t)` follows `gates(t)`.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn simulate(&self, items: usize) -> Vec<ScheduleEvent> {
        assert!(items > 0, "empty sequence");
        let b = self.breakdown;
        let mut events = Vec::with_capacity(items * 3);
        let mut pre_done = vec![0.0f64; items];
        let mut hidden_done = 0.0f64;
        let mut pre_free = 0.0f64;
        // Preprocess is eager: it runs as soon as its circuit is free.
        for (t, done) in pre_done.iter_mut().enumerate() {
            let start = pre_free;
            let end = start + b.preprocess_us;
            events.push(ScheduleEvent {
                item: t,
                kernel: "preprocess",
                start_us: start,
                end_us: end,
            });
            *done = end;
            pre_free = end;
        }
        for (t, &pre) in pre_done.iter().enumerate() {
            let g_start = pre.max(hidden_done);
            let g_end = g_start + b.gates_us;
            events.push(ScheduleEvent {
                item: t,
                kernel: "gates",
                start_us: g_start,
                end_us: g_end,
            });
            let h_end = g_end + b.hidden_us;
            events.push(ScheduleEvent {
                item: t,
                kernel: "hidden",
                start_us: g_end,
                end_us: h_end,
            });
            hidden_done = h_end;
        }
        events.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        events
    }

    /// The simulated makespan for `items` items.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn simulated_makespan_us(&self, items: usize) -> f64 {
        self.simulate(items)
            .iter()
            .map(|e| e.end_us)
            .fold(0.0, f64::max)
    }
}

/// One near-uniform-length bucket of sequences in a [`LaneSchedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneBucket {
    /// Batch indices of the member sequences, longest first.
    pub indices: Vec<usize>,
    /// Shortest member length.
    pub min_len: usize,
    /// Longest member length.
    pub max_len: usize,
    /// Total items (sum of member lengths) — the bucket's work estimate.
    pub work: usize,
}

/// A length-bucketing plan for lane-batched batch classification.
///
/// A lane block advances all its lanes until the *last* one finishes, so
/// mixing a 5-item sequence into a block of 500-item sequences wastes
/// almost nothing (the short lane retires early and is refilled), but the
/// reverse — one straggler keeping a near-empty block alive — wastes
/// compute on vacated lanes. Sorting the batch by descending length and
/// cutting a new bucket when lengths fall below half the bucket's longest
/// keeps every block's occupants within 2× of each other, so refills stay
/// effective and tail waste is bounded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSchedule {
    /// Buckets in descending length order.
    pub buckets: Vec<LaneBucket>,
}

impl LaneSchedule {
    /// Plans buckets for a batch with the given per-sequence lengths.
    ///
    /// Sequences are sorted by descending length (ties broken by batch
    /// index, so the plan is deterministic); a new bucket starts when the
    /// next length drops below half the current bucket's maximum *and*
    /// the bucket already fills a whole number of lane rows (cutting
    /// mid-row would strand lanes the refill queue could have used).
    pub fn plan(lengths: &[usize], lane_width: usize) -> Self {
        assert!(lane_width > 0, "lane width must be at least 1");
        let mut order: Vec<usize> = (0..lengths.len()).collect();
        order.sort_by(|&a, &b| lengths[b].cmp(&lengths[a]).then(a.cmp(&b)));
        let mut buckets: Vec<LaneBucket> = Vec::new();
        for i in order {
            let len = lengths[i];
            match buckets.last_mut() {
                Some(b) if 2 * len >= b.max_len || !b.indices.len().is_multiple_of(lane_width) => {
                    b.indices.push(i);
                    b.min_len = len;
                    b.work += len;
                }
                _ => buckets.push(LaneBucket {
                    indices: vec![i],
                    min_len: len,
                    max_len: len,
                    work: len,
                }),
            }
        }
        Self { buckets }
    }

    /// Partitions the buckets across at most `shards` workers, greedily
    /// assigning each bucket (largest work first) to the least-loaded
    /// shard. Returns the concatenated index order per shard; empty
    /// shards are dropped. Buckets are never split, so each shard's queue
    /// stays sorted by descending length within a bucket — the property
    /// the lane refill relies on.
    pub fn shards(&self, shards: usize) -> Vec<Vec<usize>> {
        assert!(shards > 0, "shard count must be at least 1");
        let mut order: Vec<usize> = (0..self.buckets.len()).collect();
        order.sort_by(|&a, &b| {
            self.buckets[b]
                .work
                .cmp(&self.buckets[a].work)
                .then(a.cmp(&b))
        });
        let mut loads = vec![0usize; shards.min(self.buckets.len()).max(1)];
        let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); loads.len()];
        for bi in order {
            let target = loads
                .iter()
                .enumerate()
                .min_by_key(|&(i, &load)| (load, i))
                .map(|(i, _)| i)
                .expect("at least one shard");
            loads[target] += self.buckets[bi].work;
            assigned[target].push(bi);
        }
        assigned
            .into_iter()
            .filter(|bucket_ids| !bucket_ids.is_empty())
            .map(|mut bucket_ids| {
                // Process each shard's buckets in plan (descending-length)
                // order.
                bucket_ids.sort_unstable();
                bucket_ids
                    .into_iter()
                    .flat_map(|bi| self.buckets[bi].indices.iter().copied())
                    .collect()
            })
            .collect()
    }

    /// Total items across all buckets.
    pub fn total_work(&self) -> usize {
        self.buckets.iter().map(|b| b.work).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed() -> PipelineSchedule {
        PipelineSchedule::for_level(OptimizationLevel::FixedPoint)
    }

    #[test]
    fn steady_state_is_max_of_stages() {
        for level in OptimizationLevel::ALL {
            let s = PipelineSchedule::for_level(level);
            let b = s.breakdown;
            assert_eq!(
                s.steady_item_us,
                b.preprocess_us.max(b.gates_us + b.hidden_us),
                "{level}"
            );
        }
    }

    #[test]
    fn pipeline_beats_unpipelined_sum() {
        for level in OptimizationLevel::ALL {
            let s = PipelineSchedule::for_level(level);
            assert!(
                s.sequence_us(100) < s.sequence_unpipelined_us(100),
                "{level}: prefetch overlap must save time"
            );
        }
    }

    #[test]
    fn compute_bound_at_every_level() {
        // With these kernels the gates+hidden chain dominates preprocess,
        // so prefetching fully hides the embedding generation — the point
        // of §III-C.
        for level in OptimizationLevel::ALL {
            assert_eq!(
                PipelineSchedule::for_level(level).bottleneck,
                Bottleneck::Compute,
                "{level}"
            );
        }
    }

    #[test]
    fn simulation_matches_closed_form() {
        for level in OptimizationLevel::ALL {
            let s = PipelineSchedule::for_level(level);
            for items in [1usize, 2, 10, 100] {
                let sim = s.simulated_makespan_us(items);
                // Closed form: fill + n·steady is exact when compute-bound.
                let closed = s.sequence_us(items);
                assert!(
                    (sim - closed).abs() < 1e-9,
                    "{level} n={items}: sim {sim} vs closed {closed}"
                );
            }
        }
    }

    #[test]
    fn prefetch_overlaps_compute() {
        let s = fixed();
        let events = s.simulate(5);
        // preprocess(1) must start before gates(0) ends.
        let pre1 = events
            .iter()
            .find(|e| e.kernel == "preprocess" && e.item == 1)
            .expect("pre1");
        let gates0 = events
            .iter()
            .find(|e| e.kernel == "gates" && e.item == 0)
            .expect("gates0");
        assert!(pre1.start_us < gates0.end_us + s.breakdown.hidden_us);
    }

    #[test]
    fn recurrence_dependencies_respected() {
        let s = fixed();
        let events = s.simulate(20);
        let find = |kernel: &str, item: usize| {
            *events
                .iter()
                .find(|e| e.kernel == kernel && e.item == item)
                .expect("event")
        };
        for t in 0..20 {
            let pre = find("preprocess", t);
            let gates = find("gates", t);
            let hidden = find("hidden", t);
            assert!(gates.start_us >= pre.end_us - 1e-12, "gates wait for x_t");
            assert!(
                hidden.start_us >= gates.end_us - 1e-12,
                "hidden waits for the gates"
            );
            if t > 0 {
                let prev_hidden = find("hidden", t - 1);
                assert!(
                    gates.start_us >= prev_hidden.end_us - 1e-12,
                    "gates wait for h_(t-1)"
                );
            }
        }
    }

    #[test]
    fn event_count_and_ordering() {
        let events = fixed().simulate(7);
        assert_eq!(events.len(), 21);
        for pair in events.windows(2) {
            assert!(pair[0].start_us <= pair[1].start_us);
        }
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn zero_items_rejected() {
        let _ = fixed().sequence_us(0);
    }

    #[test]
    fn lane_plan_sorts_descending_and_buckets_within_2x() {
        let lengths = [5usize, 100, 7, 98, 3, 55, 120, 1];
        let plan = LaneSchedule::plan(&lengths, 2);
        // Every index appears exactly once.
        let mut seen: Vec<usize> = plan
            .buckets
            .iter()
            .flat_map(|b| b.indices.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..lengths.len()).collect::<Vec<_>>());
        assert_eq!(plan.total_work(), lengths.iter().sum::<usize>());
        for b in &plan.buckets {
            // Descending within a bucket…
            for pair in b.indices.windows(2) {
                assert!(lengths[pair[0]] >= lengths[pair[1]]);
            }
            assert_eq!(b.work, b.indices.iter().map(|&i| lengths[i]).sum::<usize>());
            // …and a cut only happens at a whole lane row, so any bucket
            // holding a full row respects the 2× rule for the rows it cut
            // away from.
            assert!(b.max_len >= b.min_len);
        }
        // Buckets themselves are in descending length order.
        for pair in plan.buckets.windows(2) {
            assert!(pair[0].min_len >= pair[1].max_len || 2 * pair[1].max_len < pair[0].max_len);
        }
    }

    #[test]
    fn lane_plan_keeps_uniform_batch_in_one_bucket() {
        let lengths = vec![50usize; 64];
        let plan = LaneSchedule::plan(&lengths, 16);
        assert_eq!(plan.buckets.len(), 1);
        assert_eq!(plan.buckets[0].work, 64 * 50);
    }

    #[test]
    fn lane_plan_never_cuts_mid_row() {
        // 3 long + 1 much shorter with width 4: the short one must join
        // the long bucket to complete the lane row.
        let lengths = [100usize, 100, 100, 2];
        let plan = LaneSchedule::plan(&lengths, 4);
        assert_eq!(plan.buckets.len(), 1);
        // With width 2 the third long item leaves a half-full row, so the
        // short item still joins to complete it rather than cut mid-row.
        let plan2 = LaneSchedule::plan(&lengths, 2);
        assert_eq!(plan2.buckets.len(), 1);
        // Drop one long item: the row boundary now falls after two, and
        // 2*2 < 100 cuts a new bucket for the short tail.
        let plan3 = LaneSchedule::plan(&[100usize, 100, 2], 2);
        assert_eq!(plan3.buckets.len(), 2);
        assert_eq!(plan3.buckets[1].indices, vec![2]);
    }

    #[test]
    fn lane_shards_cover_all_and_balance() {
        let lengths = [100usize, 3, 98, 5, 55, 1, 120, 7, 60, 2];
        let plan = LaneSchedule::plan(&lengths, 2);
        for shards in [1usize, 2, 3, 8] {
            let parts = plan.shards(shards);
            assert!(parts.len() <= shards);
            let mut seen: Vec<usize> = parts.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(
                seen,
                (0..lengths.len()).collect::<Vec<_>>(),
                "{shards} shards"
            );
        }
    }
}
