//! Multi-device scaling.
//!
//! §II: the SmartSSD "represents a scalable solution that overcomes
//! traditional constraints related to space, power, and cost, allowing
//! for the installation of multiple devices within a single node".
//! [`CsdFleet`] models that deployment: `N` devices, each running the
//! same programmed model, with sequences partitioned across them — the
//! background-scanning workload (§I) at rack scale.
//!
//! A device whose recovery budget is exhausted (see
//! [`crate::host::RecoveryPolicy`]) does not abort the scan: the fleet
//! quarantines it, redistributes its shard across the healthy devices,
//! and re-admits it after a cooldown. A verdict is only lost if *every*
//! device fails on the same sequence.

#![deny(clippy::unwrap_used)]

use csd_device::{FaultPlan, Nanos, RuntimeError};
use csd_nn::ModelWeights;
use serde::{Deserialize, Serialize};

use crate::engine::Classification;
use crate::host::{HostError, HostProgram, RecoveryPolicy, RecoveryStats};
use crate::opt::OptimizationLevel;

/// The outcome of a fleet scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScan {
    /// Per-sequence classifications, in input order.
    pub classifications: Vec<Classification>,
    /// Simulated wall time: the slowest device's elapsed time (devices run
    /// concurrently).
    pub elapsed: Nanos,
    /// Per-device elapsed times.
    pub per_device: Vec<Nanos>,
}

impl FleetScan {
    /// Number of sequences flagged positive.
    pub fn positives(&self) -> usize {
        self.classifications
            .iter()
            .filter(|c| c.is_positive)
            .count()
    }
}

/// Fleet-level fault-handling knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetPolicy {
    /// Scans a quarantined device sits out before re-admission.
    pub cooldown_scans: u64,
}

impl Default for FleetPolicy {
    fn default() -> Self {
        Self { cooldown_scans: 2 }
    }
}

/// Fleet-level fault tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FleetStats {
    /// Scans performed.
    pub scans: u64,
    /// Sequence attempts that came back with a device error.
    pub faults: u64,
    /// Devices quarantined (counting repeats).
    pub quarantines: u64,
    /// Devices re-admitted after cooldown.
    pub readmissions: u64,
    /// Sequences that had to move to another device mid-scan.
    pub redistributed: u64,
}

/// One fleet slot: a device plus its quarantine state.
#[derive(Debug)]
struct Slot {
    host: HostProgram,
    /// `Some(scan)` — sits out until fleet scan counter reaches `scan`.
    quarantined_until: Option<u64>,
}

/// A node with several SmartSSDs programmed with the same model.
#[derive(Debug)]
pub struct CsdFleet {
    slots: Vec<Slot>,
    policy: FleetPolicy,
    stats: FleetStats,
}

impl CsdFleet {
    /// Boots `n` devices with `weights` at `level`.
    ///
    /// # Errors
    ///
    /// Returns the first device-boot error.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(
        n: usize,
        weights: &ModelWeights,
        level: OptimizationLevel,
    ) -> Result<Self, HostError> {
        assert!(n > 0, "a fleet needs at least one device");
        let slots = (0..n)
            .map(|_| {
                HostProgram::new(weights, level).map(|host| Slot {
                    host,
                    quarantined_until: None,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            slots,
            policy: FleetPolicy::default(),
            stats: FleetStats::default(),
        })
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `false`: fleets are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Replaces the fleet-level fault policy.
    pub fn set_policy(&mut self, policy: FleetPolicy) {
        self.policy = policy;
    }

    /// Applies a recovery policy to every device.
    pub fn set_recovery(&mut self, policy: RecoveryPolicy) {
        for slot in &mut self.slots {
            slot.host.set_recovery(policy);
        }
    }

    /// Arms a fault schedule on device `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn arm_faults(&mut self, idx: usize, plan: FaultPlan) {
        self.slots[idx].host.arm_faults(plan);
    }

    /// Disarms fault injection on device `idx`; returns the retired plan.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn disarm_faults(&mut self, idx: usize) -> Option<FaultPlan> {
        self.slots[idx].host.disarm_faults()
    }

    /// Recovery tallies of device `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn device_stats(&self, idx: usize) -> RecoveryStats {
        self.slots[idx].host.recovery_stats()
    }

    /// Fleet-level fault tallies.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Indices of currently-quarantined devices.
    pub fn quarantined(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.quarantined_until.is_some())
            .map(|(i, _)| i)
            .collect()
    }

    /// Scans `sequences`, partitioning them round-robin across healthy
    /// devices. Devices run concurrently; each serializes its own share.
    ///
    /// A device that exhausts its recovery budget on a sequence is
    /// quarantined for [`FleetPolicy::cooldown_scans`] scans and the
    /// sequence moves to the next healthy device, so one flaky SmartSSD
    /// delays its shard instead of sinking the scan.
    ///
    /// # Errors
    ///
    /// Returns the last device error only when a sequence failed on
    /// *every* device.
    ///
    /// # Panics
    ///
    /// Panics if `sequences` is empty or any sequence is empty.
    pub fn scan(&mut self, sequences: &[Vec<usize>]) -> Result<FleetScan, RuntimeError> {
        assert!(!sequences.is_empty(), "nothing to scan");
        self.stats.scans += 1;
        let scan_no = self.stats.scans;
        // Cooldown expiry: devices whose sentence is served rejoin.
        for slot in &mut self.slots {
            if slot.quarantined_until.is_some_and(|until| scan_no >= until) {
                slot.quarantined_until = None;
                self.stats.readmissions += 1;
            }
        }
        let n = self.slots.len();
        let mut classifications = vec![None; sequences.len()];
        let mut per_device = vec![Nanos::ZERO; n];
        for (i, seq) in sequences.iter().enumerate() {
            // Fault-free this is exactly the old `i % n` round-robin;
            // quarantined devices are skipped, and a mid-sequence
            // failure walks to the next candidate.
            let mut last_err = None;
            for offset in 0..n {
                let d = (i + offset) % n;
                if self.slots[d].quarantined_until.is_some() {
                    continue;
                }
                if offset > 0 {
                    self.stats.redistributed += 1;
                }
                match self.slots[d].host.classify_from_ssd(seq) {
                    Ok(run) => {
                        per_device[d] += run.elapsed;
                        classifications[i] = Some(run.classification);
                        last_err = None;
                        break;
                    }
                    Err(e) => {
                        self.stats.faults += 1;
                        self.stats.quarantines += 1;
                        self.slots[d].quarantined_until =
                            Some(scan_no + self.policy.cooldown_scans);
                        last_err = Some(e);
                    }
                }
            }
            if let Some(e) = last_err {
                return Err(e);
            }
            if classifications[i].is_none() {
                // Every device was already quarantined: force the
                // least-recently-benched one back early rather than
                // dropping the verdict.
                let d = self
                    .slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.quarantined_until.unwrap_or(0))
                    .map(|(idx, _)| idx)
                    .unwrap_or(i % n);
                self.slots[d].quarantined_until = None;
                self.stats.readmissions += 1;
                let run = self.slots[d].host.classify_from_ssd(seq)?;
                per_device[d] += run.elapsed;
                classifications[i] = Some(run.classification);
            }
        }
        let elapsed = per_device.iter().copied().fold(Nanos::ZERO, Nanos::max);
        let mut out = Vec::with_capacity(sequences.len());
        for c in classifications {
            match c {
                Some(c) => out.push(c),
                // Unreachable: every arm above either fills the slot or
                // returns early — but never drop a verdict silently.
                None => return Err(RuntimeError::BadHandle),
            }
        }
        Ok(FleetScan {
            classifications: out,
            elapsed,
            per_device,
        })
    }

    /// Pushes retrained weights to every device (the fleet-wide CTI
    /// update).
    ///
    /// # Errors
    ///
    /// Returns the first device error; devices updated before the failure
    /// keep the new model (callers should retry until `Ok`).
    pub fn update_weights(&mut self, weights: &ModelWeights) -> Result<(), RuntimeError> {
        for slot in &mut self.slots {
            slot.host.update_weights(weights)?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use csd_device::FaultConfig;
    use csd_nn::{ModelConfig, SequenceClassifier};

    fn weights() -> ModelWeights {
        ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::paper(), 12))
    }

    fn sequences(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|k| (0..100).map(|i| (i * 7 + k * 13) % 278).collect())
            .collect()
    }

    /// A fault plan that makes every classification attempt fail.
    fn always_failing() -> FaultPlan {
        let mut cfg = FaultConfig::none();
        cfg.corruption = 1.0;
        FaultPlan::new(1, cfg)
    }

    #[test]
    fn fleet_matches_single_device_results() {
        let w = weights();
        let seqs = sequences(8);
        let mut one = CsdFleet::new(1, &w, OptimizationLevel::FixedPoint).expect("boot");
        let mut four = CsdFleet::new(4, &w, OptimizationLevel::FixedPoint).expect("boot");
        let a = one.scan(&seqs).expect("scan");
        let b = four.scan(&seqs).expect("scan");
        assert_eq!(a.classifications, b.classifications);
    }

    #[test]
    fn scaling_reduces_wall_time() {
        let w = weights();
        let seqs = sequences(12);
        let elapsed = |n: usize| {
            CsdFleet::new(n, &w, OptimizationLevel::FixedPoint)
                .expect("boot")
                .scan(&seqs)
                .expect("scan")
                .elapsed
        };
        let t1 = elapsed(1);
        let t4 = elapsed(4);
        assert!(t4 < t1, "4 devices {t4} vs 1 device {t1}");
        // Near-linear: within 2× of ideal (per-run P2P latency amortizes
        // imperfectly).
        assert!(t4.as_nanos() * 2 >= t1.as_nanos() / 4);
    }

    #[test]
    fn round_robin_balances_load() {
        let w = weights();
        let mut fleet = CsdFleet::new(3, &w, OptimizationLevel::FixedPoint).expect("boot");
        let scan = fleet.scan(&sequences(9)).expect("scan");
        // Each device served 3 equal sequences: times match.
        assert_eq!(scan.per_device.len(), 3);
        let first = scan.per_device[0];
        for &t in &scan.per_device {
            assert_eq!(t, first);
        }
    }

    #[test]
    fn fleet_wide_cti_update() {
        let w = weights();
        let retrained =
            ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::paper(), 13));
        let seqs = sequences(4);
        let mut fleet = CsdFleet::new(2, &w, OptimizationLevel::FixedPoint).expect("boot");
        let before = fleet.scan(&seqs).expect("scan");
        fleet.update_weights(&retrained).expect("update");
        let after = fleet.scan(&seqs).expect("scan");
        assert_ne!(before.classifications, after.classifications);
    }

    #[test]
    fn positives_counter() {
        let w = weights();
        let mut fleet = CsdFleet::new(2, &w, OptimizationLevel::FixedPoint).expect("boot");
        let scan = fleet.scan(&sequences(6)).expect("scan");
        let manual = scan
            .classifications
            .iter()
            .filter(|c| c.is_positive)
            .count();
        assert_eq!(scan.positives(), manual);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_fleet_rejected() {
        let _ = CsdFleet::new(0, &weights(), OptimizationLevel::Vanilla);
    }

    #[test]
    fn dead_device_is_quarantined_and_its_shard_redistributed() {
        let w = weights();
        let seqs = sequences(9);
        let mut healthy = CsdFleet::new(3, &w, OptimizationLevel::FixedPoint).expect("boot");
        let reference = healthy.scan(&seqs).expect("scan");

        let mut fleet = CsdFleet::new(3, &w, OptimizationLevel::FixedPoint).expect("boot");
        fleet.set_recovery(RecoveryPolicy {
            max_retries: 1,
            ..RecoveryPolicy::retry_only()
        });
        fleet.arm_faults(1, always_failing());
        let scan = fleet.scan(&seqs).expect("fleet survives one dead device");
        // No verdict lost, none changed.
        assert_eq!(scan.classifications, reference.classifications);
        assert_eq!(fleet.quarantined(), vec![1]);
        let stats = fleet.stats();
        assert_eq!(stats.quarantines, 1);
        assert!(stats.redistributed >= 1, "the shard moved");
        // Device 1 served nothing after its first failed sequence.
        assert!(scan.per_device[1] < scan.per_device[0]);
    }

    #[test]
    fn quarantine_cooldown_readmits_a_recovered_device() {
        let w = weights();
        let seqs = sequences(6);
        let mut fleet = CsdFleet::new(3, &w, OptimizationLevel::FixedPoint).expect("boot");
        fleet.set_policy(FleetPolicy { cooldown_scans: 2 });
        fleet.set_recovery(RecoveryPolicy {
            max_retries: 1,
            ..RecoveryPolicy::retry_only()
        });
        fleet.arm_faults(2, always_failing());
        fleet.scan(&seqs).expect("scan 1");
        assert_eq!(fleet.quarantined(), vec![2]);
        // The flake clears while the device sits out.
        fleet.disarm_faults(2);
        fleet.scan(&seqs).expect("scan 2: still benched");
        assert_eq!(fleet.quarantined(), vec![2]);
        fleet.scan(&seqs).expect("scan 3: cooldown over");
        assert!(fleet.quarantined().is_empty(), "re-admitted");
        assert_eq!(fleet.stats().readmissions, 1);
        // And it serves traffic again.
        let scan = fleet.scan(&seqs).expect("scan 4");
        assert!(scan.per_device[2] > Nanos::ZERO);
    }

    #[test]
    fn all_devices_dead_surfaces_the_error() {
        let w = weights();
        let mut fleet = CsdFleet::new(2, &w, OptimizationLevel::FixedPoint).expect("boot");
        fleet.set_recovery(RecoveryPolicy {
            max_retries: 0,
            ..RecoveryPolicy::retry_only()
        });
        fleet.arm_faults(0, always_failing());
        fleet.arm_faults(1, always_failing());
        let err = fleet.scan(&sequences(2)).expect_err("nothing healthy");
        assert!(matches!(err, RuntimeError::TransferCorrupted { .. }));
    }

    #[test]
    fn flaky_device_delays_but_never_changes_verdicts() {
        let w = weights();
        let seqs = sequences(12);
        let mut healthy = CsdFleet::new(4, &w, OptimizationLevel::FixedPoint).expect("boot");
        let reference = healthy.scan(&seqs).expect("scan");

        let mut fleet = CsdFleet::new(4, &w, OptimizationLevel::FixedPoint).expect("boot");
        fleet.set_recovery(RecoveryPolicy {
            max_retries: 16,
            ..RecoveryPolicy::default()
        });
        let mut cfg = FaultConfig::none();
        cfg.corruption = 0.002;
        fleet.arm_faults(0, FaultPlan::new(17, cfg));
        fleet.arm_faults(3, FaultPlan::new(99, cfg));
        let scan = fleet.scan(&seqs).expect("recovers");
        assert_eq!(scan.classifications, reference.classifications);
    }
}
