//! Multi-device scaling.
//!
//! §II: the SmartSSD "represents a scalable solution that overcomes
//! traditional constraints related to space, power, and cost, allowing
//! for the installation of multiple devices within a single node".
//! [`CsdFleet`] models that deployment: `N` devices, each running the
//! same programmed model, with sequences partitioned across them — the
//! background-scanning workload (§I) at rack scale.

use csd_device::{Nanos, RuntimeError};
use csd_nn::ModelWeights;
use serde::{Deserialize, Serialize};

use crate::engine::Classification;
use crate::host::HostProgram;
use crate::opt::OptimizationLevel;

/// The outcome of a fleet scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScan {
    /// Per-sequence classifications, in input order.
    pub classifications: Vec<Classification>,
    /// Simulated wall time: the slowest device's elapsed time (devices run
    /// concurrently).
    pub elapsed: Nanos,
    /// Per-device elapsed times.
    pub per_device: Vec<Nanos>,
}

impl FleetScan {
    /// Number of sequences flagged positive.
    pub fn positives(&self) -> usize {
        self.classifications
            .iter()
            .filter(|c| c.is_positive)
            .count()
    }
}

/// A node with several SmartSSDs programmed with the same model.
#[derive(Debug)]
pub struct CsdFleet {
    devices: Vec<HostProgram>,
}

impl CsdFleet {
    /// Boots `n` devices with `weights` at `level`.
    ///
    /// # Errors
    ///
    /// Returns the first device-boot error.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(
        n: usize,
        weights: &ModelWeights,
        level: OptimizationLevel,
    ) -> Result<Self, RuntimeError> {
        assert!(n > 0, "a fleet needs at least one device");
        let devices = (0..n)
            .map(|_| HostProgram::new(weights, level))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { devices })
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `false`: fleets are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Scans `sequences`, partitioning them round-robin across devices.
    /// Devices run concurrently; each serializes its own share.
    ///
    /// # Errors
    ///
    /// Returns the first device error.
    ///
    /// # Panics
    ///
    /// Panics if `sequences` is empty or any sequence is empty.
    pub fn scan(&mut self, sequences: &[Vec<usize>]) -> Result<FleetScan, RuntimeError> {
        assert!(!sequences.is_empty(), "nothing to scan");
        let n = self.devices.len();
        let mut classifications = vec![None; sequences.len()];
        let mut per_device = vec![Nanos::ZERO; n];
        for (i, seq) in sequences.iter().enumerate() {
            let d = i % n;
            let run = self.devices[d].classify_from_ssd(seq)?;
            per_device[d] += run.elapsed;
            classifications[i] = Some(run.classification);
        }
        let elapsed = per_device.iter().copied().fold(Nanos::ZERO, Nanos::max);
        Ok(FleetScan {
            classifications: classifications
                .into_iter()
                .map(|c| c.expect("every sequence scanned"))
                .collect(),
            elapsed,
            per_device,
        })
    }

    /// Pushes retrained weights to every device (the fleet-wide CTI
    /// update).
    ///
    /// # Errors
    ///
    /// Returns the first device error; devices updated before the failure
    /// keep the new model (callers should retry until `Ok`).
    pub fn update_weights(&mut self, weights: &ModelWeights) -> Result<(), RuntimeError> {
        for d in &mut self.devices {
            d.update_weights(weights)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_nn::{ModelConfig, SequenceClassifier};

    fn weights() -> ModelWeights {
        ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::paper(), 12))
    }

    fn sequences(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|k| (0..100).map(|i| (i * 7 + k * 13) % 278).collect())
            .collect()
    }

    #[test]
    fn fleet_matches_single_device_results() {
        let w = weights();
        let seqs = sequences(8);
        let mut one = CsdFleet::new(1, &w, OptimizationLevel::FixedPoint).expect("boot");
        let mut four = CsdFleet::new(4, &w, OptimizationLevel::FixedPoint).expect("boot");
        let a = one.scan(&seqs).expect("scan");
        let b = four.scan(&seqs).expect("scan");
        assert_eq!(a.classifications, b.classifications);
    }

    #[test]
    fn scaling_reduces_wall_time() {
        let w = weights();
        let seqs = sequences(12);
        let elapsed = |n: usize| {
            CsdFleet::new(n, &w, OptimizationLevel::FixedPoint)
                .expect("boot")
                .scan(&seqs)
                .expect("scan")
                .elapsed
        };
        let t1 = elapsed(1);
        let t4 = elapsed(4);
        assert!(t4 < t1, "4 devices {t4} vs 1 device {t1}");
        // Near-linear: within 2× of ideal (per-run P2P latency amortizes
        // imperfectly).
        assert!(t4.as_nanos() * 2 >= t1.as_nanos() / 4);
    }

    #[test]
    fn round_robin_balances_load() {
        let w = weights();
        let mut fleet = CsdFleet::new(3, &w, OptimizationLevel::FixedPoint).expect("boot");
        let scan = fleet.scan(&sequences(9)).expect("scan");
        // Each device served 3 equal sequences: times match.
        assert_eq!(scan.per_device.len(), 3);
        let first = scan.per_device[0];
        for &t in &scan.per_device {
            assert_eq!(t, first);
        }
    }

    #[test]
    fn fleet_wide_cti_update() {
        let w = weights();
        let retrained =
            ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::paper(), 13));
        let seqs = sequences(4);
        let mut fleet = CsdFleet::new(2, &w, OptimizationLevel::FixedPoint).expect("boot");
        let before = fleet.scan(&seqs).expect("scan");
        fleet.update_weights(&retrained).expect("update");
        let after = fleet.scan(&seqs).expect("scan");
        assert_ne!(before.classifications, after.classifications);
    }

    #[test]
    fn positives_counter() {
        let w = weights();
        let mut fleet = CsdFleet::new(2, &w, OptimizationLevel::FixedPoint).expect("boot");
        let scan = fleet.scan(&sequences(6)).expect("scan");
        let manual = scan
            .classifications
            .iter()
            .filter(|c| c.is_positive)
            .count();
        assert_eq!(scan.positives(), manual);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_fleet_rejected() {
        let _ = CsdFleet::new(0, &weights(), OptimizationLevel::Vanilla);
    }
}
