//! The host program against the simulated SmartSSD.
//!
//! §III-A: "the host program that is responsible for general control flow,
//! initiating data transfers, and managing the interaction with the FPGA
//! ingests this text file amid initializing the FPGA." [`HostProgram`]
//! performs exactly those steps on the [`csd_device`] runtime: parse the
//! weight file, quantize, allocate device buffers on the two DDR banks,
//! migrate the parameters, load sequence data from the SSD peer-to-peer,
//! and drive the per-item kernel schedule — returning both the
//! classification (computed bit-faithfully by the engine) and the
//! simulated device time.

use csd_device::{BufferHandle, DeviceRuntime, KernelHandle, Nanos, RuntimeError, SmartSsd};
use csd_nn::ModelWeights;

use crate::bitstream::{link, Xclbin};
use crate::engine::{Classification, CsdInferenceEngine};
use crate::kernels::GateKind;
use crate::opt::OptimizationLevel;

/// The result of one device-timed sequence classification.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRun {
    /// The classification (identical to the engine's).
    pub classification: Classification,
    /// Simulated device time from enqueue to final-kernel completion.
    pub elapsed: Nanos,
    /// Bytes loaded from NAND peer-to-peer for this run.
    pub p2p_bytes: u64,
}

/// The host program: one programmed FPGA session.
#[derive(Debug)]
pub struct HostProgram {
    runtime: DeviceRuntime,
    engine: CsdInferenceEngine,
    weight_buf: BufferHandle,
    seq_buf: BufferHandle,
    k_pre: KernelHandle,
    k_gates: [KernelHandle; 4],
    k_hidden: KernelHandle,
    model_version: u64,
}

impl HostProgram {
    /// Parses the paper's weight text file and initializes the device.
    ///
    /// # Errors
    ///
    /// Returns the parse error message for a malformed file, or a runtime
    /// error description if device setup fails.
    pub fn from_weight_file(text: &str, level: OptimizationLevel) -> Result<Self, String> {
        let weights = ModelWeights::from_text(text).map_err(|e| e.to_string())?;
        Self::new(&weights, level).map_err(|e| e.to_string())
    }

    /// Initializes the device from already-parsed weights: links the
    /// five-kernel design for the u200 testbed (the `v++` step) and
    /// programs the resulting image.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if buffer allocation fails.
    ///
    /// # Panics
    ///
    /// Panics if the design fails to link — impossible on the u200
    /// floorplan this constructor targets; use [`crate::bitstream::link`]
    /// plus [`Self::program`] for custom devices.
    pub fn new(weights: &ModelWeights, level: OptimizationLevel) -> Result<Self, RuntimeError> {
        let engine = CsdInferenceEngine::new(weights, level);
        let dims = engine.weights().dims();
        let device = SmartSsd::new_u200_testbed();
        let image = link(level, &dims, device.fpga())
            .expect("the five-kernel design links on the u200 testbed");
        Self::program_engine(device, image, engine)
    }

    /// Programs a pre-linked [`Xclbin`] image with the given weights.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if buffer allocation fails, or
    /// [`RuntimeError::ShapeMismatch`] when the weights' dimensions do not
    /// match the image's compiled loop bounds.
    pub fn program(weights: &ModelWeights, image: Xclbin) -> Result<Self, RuntimeError> {
        let engine = CsdInferenceEngine::new(weights, image.level);
        if engine.weights().dims() != image.dims {
            return Err(RuntimeError::ShapeMismatch);
        }
        // Pick the SmartSSD flavour whose fabric matches the image.
        let device = if image.device == csd_hls::DeviceProfile::kintex_ku15p() {
            SmartSsd::new_smartssd()
        } else {
            SmartSsd::new_u200_testbed()
        };
        Self::program_engine(device, image, engine)
    }

    fn program_engine(
        device: SmartSsd,
        image: Xclbin,
        engine: CsdInferenceEngine,
    ) -> Result<Self, RuntimeError> {
        let mut runtime = DeviceRuntime::new(device);

        // Weights on bank 0, sequence data on bank 1 (two-bank policy).
        let weight_buf = runtime.alloc_buffer(0, engine.weights().device_bytes())?;
        let seq_buf = runtime.alloc_buffer(1, 4096)?;
        runtime.migrate_to_device(weight_buf)?;

        // Register the kernel instances with their per-item durations
        // straight from the linked image.
        let micros = |name: &str| Nanos::from_micros(image.per_item_us(name));
        let k_pre = runtime.register_kernel("kernel_preprocess", micros("kernel_preprocess"));
        let k_gates = GateKind::ALL.map(|kind| {
            let name = format!("kernel_gates[{kind:?}]");
            let d = micros(&name);
            runtime.register_kernel(name, d)
        });
        let k_hidden =
            runtime.register_kernel("kernel_hidden_state", micros("kernel_hidden_state"));

        Ok(Self {
            runtime,
            engine,
            weight_buf,
            seq_buf,
            k_pre,
            k_gates,
            k_hidden,
            model_version: 1,
        })
    }

    /// The currently-deployed model version (1 after boot; bumped by
    /// every [`Self::update_weights`]).
    pub fn model_version(&self) -> u64 {
        self.model_version
    }

    /// Hot-swaps the deployed model with retrained weights — the §III-A
    /// operational loop: "it is advisable to update the FPGA-based model
    /// with a version that has been retrained on new ransomware strains
    /// once they are uncovered in Cyber Threat Intelligence (CTI) feeds".
    /// The kernel bitstream is compiled once; only the parameter buffers
    /// move, so the update is a single weight migration.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ShapeMismatch`] when the new weights do not
    /// match the compiled kernel dimensions (the FPGA structure "remains
    /// fixed regardless of changes in the number of parameters" — to
    /// change shape, rebuild the [`HostProgram`]), or a migration error.
    pub fn update_weights(&mut self, weights: &ModelWeights) -> Result<Nanos, RuntimeError> {
        let new_engine = CsdInferenceEngine::new(weights, self.engine.level());
        if new_engine.weights().dims() != self.engine.weights().dims() {
            return Err(RuntimeError::ShapeMismatch);
        }
        let done = self.runtime.migrate_to_device(self.weight_buf)?;
        self.engine = new_engine;
        self.model_version += 1;
        Ok(done)
    }

    /// The functional engine backing this session.
    pub fn engine(&self) -> &CsdInferenceEngine {
        &self.engine
    }

    /// Engages the mitigation: freezes SSD writes so "subsequent
    /// encryption by the malware" (§IV) cannot land — the action a
    /// [`crate::monitor::StreamMonitor`] alert triggers.
    pub fn quarantine(&mut self) {
        self.runtime.freeze_writes();
    }

    /// Releases the quarantine after remediation.
    pub fn release_quarantine(&mut self) {
        self.runtime.thaw_writes();
    }

    /// A write attempt against the protected storage (e.g. the ransomware
    /// sealing another encrypted file); returns `None` when the quarantine
    /// rejected it.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn attempt_victim_write(&mut self, bytes: u64) -> Option<Nanos> {
        self.runtime.attempt_host_write(bytes)
    }

    /// Classifies a sequence stored on the SSD: loads it P2P into FPGA
    /// DRAM, drives the per-item kernel schedule, and returns the result
    /// with simulated timing.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if an enqueue fails.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn classify_from_ssd(&mut self, seq: &[usize]) -> Result<DeviceRun, RuntimeError> {
        assert!(!seq.is_empty(), "empty sequence");
        let start = self.runtime.now();
        let before_p2p = self.runtime.summary().p2p_bytes;
        let bytes = (seq.len() * std::mem::size_of::<u64>()) as u64;
        self.runtime.p2p_load(self.seq_buf, bytes)?;
        for _item in seq {
            // Parameters were migrated once at boot and live in on-chip
            // buffers; per item, only the sequence data is re-read.
            // Kernels overlap across items (§III-C's pipeline): each
            // circuit serializes with itself, so the steady-state item
            // rate is set by the slowest kernel.
            self.runtime.enqueue(self.k_pre, &[self.seq_buf])?;
            for k in self.k_gates {
                self.runtime.enqueue(k, &[])?;
            }
            self.runtime.enqueue(self.k_hidden, &[])?;
        }
        let end = self.runtime.wait_all();
        let classification = self.engine.classify(seq);
        Ok(DeviceRun {
            classification,
            elapsed: end - start,
            p2p_bytes: self.runtime.summary().p2p_bytes - before_p2p,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_nn::{ModelConfig, SequenceClassifier};

    fn weights() -> ModelWeights {
        ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::paper(), 4))
    }

    fn seq() -> Vec<usize> {
        (0..100).map(|i| (7 * i) % 278).collect()
    }

    #[test]
    fn weight_file_roundtrip_boots_the_device() {
        let text = weights().to_text();
        let mut host =
            HostProgram::from_weight_file(&text, OptimizationLevel::FixedPoint).expect("boot");
        let run = host.classify_from_ssd(&seq()).expect("run");
        assert!(run.elapsed > Nanos::ZERO);
        assert!((0.0..=1.0).contains(&run.classification.probability));
    }

    #[test]
    fn bad_weight_file_is_rejected() {
        let err = HostProgram::from_weight_file("garbage", OptimizationLevel::Vanilla)
            .expect_err("must fail");
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn classification_matches_pure_engine() {
        let w = weights();
        let mut host = HostProgram::new(&w, OptimizationLevel::FixedPoint).expect("boot");
        let engine = CsdInferenceEngine::new(&w, OptimizationLevel::FixedPoint);
        let s = seq();
        let run = host.classify_from_ssd(&s).expect("run");
        assert_eq!(run.classification, engine.classify(&s));
    }

    #[test]
    fn sequence_data_travels_p2p() {
        let mut host = HostProgram::new(&weights(), OptimizationLevel::FixedPoint).expect("boot");
        let run = host.classify_from_ssd(&seq()).expect("run");
        assert_eq!(run.p2p_bytes, 100 * 8);
    }

    #[test]
    fn optimized_level_is_faster_on_device() {
        let w = weights();
        let s = seq();
        let mut vanilla = HostProgram::new(&w, OptimizationLevel::Vanilla).expect("boot");
        let mut fixed = HostProgram::new(&w, OptimizationLevel::FixedPoint).expect("boot");
        let tv = vanilla.classify_from_ssd(&s).expect("run").elapsed;
        let tf = fixed.classify_from_ssd(&s).expect("run").elapsed;
        assert!(tf < tv, "fixed {tf} vs vanilla {tv}");
    }

    #[test]
    fn quarantine_blocks_encryption_writes() {
        let mut host = HostProgram::new(&weights(), OptimizationLevel::FixedPoint).expect("boot");
        assert!(host.attempt_victim_write(16 * 1024).is_some());
        host.quarantine();
        assert!(host.attempt_victim_write(16 * 1024).is_none());
        assert!(host.attempt_victim_write(4096).is_none());
        host.release_quarantine();
        assert!(host.attempt_victim_write(4096).is_some());
    }

    #[test]
    fn program_rejects_mismatched_dimensions() {
        let image = crate::bitstream::link(
            OptimizationLevel::FixedPoint,
            &crate::kernels::LstmDims::paper(),
            &csd_hls::DeviceProfile::alveo_u200(),
        )
        .expect("links");
        let wrong = ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::tiny(30), 2));
        assert_eq!(
            HostProgram::program(&wrong, image).unwrap_err(),
            RuntimeError::ShapeMismatch
        );
    }

    #[test]
    fn smartssd_image_runs_slower_than_u200() {
        // The deployment fabric (KU15P) is smaller, so the same design
        // clamps harder and each item takes longer on-device.
        let w = weights();
        let dims = crate::kernels::LstmDims::paper();
        let s = seq();
        let elapsed_on = |device: csd_hls::DeviceProfile| {
            let image = crate::bitstream::link(OptimizationLevel::FixedPoint, &dims, &device)
                .expect("links");
            let mut host = HostProgram::program(&w, image).expect("program");
            host.classify_from_ssd(&s).expect("run").elapsed
        };
        let smart = elapsed_on(csd_hls::DeviceProfile::kintex_ku15p());
        let u200 = elapsed_on(csd_hls::DeviceProfile::alveo_u200());
        assert!(smart >= u200, "{smart} vs {u200}");
    }

    #[test]
    fn cti_weight_update_swaps_the_model() {
        let old = weights();
        let retrained =
            ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::paper(), 99));
        let mut host = HostProgram::new(&old, OptimizationLevel::FixedPoint).expect("boot");
        assert_eq!(host.model_version(), 1);
        let s = seq();
        let before = host.engine().classify(&s);
        host.update_weights(&retrained).expect("update");
        assert_eq!(host.model_version(), 2);
        let after = host.engine().classify(&s);
        assert_ne!(before, after, "new weights must change behaviour");
        // And matches a fresh engine on the retrained weights.
        let fresh = CsdInferenceEngine::new(&retrained, OptimizationLevel::FixedPoint);
        assert_eq!(after, fresh.classify(&s));
    }

    #[test]
    fn update_rejects_shape_changes() {
        let mut host = HostProgram::new(&weights(), OptimizationLevel::FixedPoint).expect("boot");
        let other_shape =
            ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::tiny(50), 1));
        let err = host.update_weights(&other_shape).unwrap_err();
        assert_eq!(err, RuntimeError::ShapeMismatch);
        assert_eq!(host.model_version(), 1, "failed update must not bump");
    }

    #[test]
    fn successive_runs_accumulate_time() {
        let mut host = HostProgram::new(&weights(), OptimizationLevel::FixedPoint).expect("boot");
        let a = host.classify_from_ssd(&seq()).expect("run").elapsed;
        let b = host.classify_from_ssd(&seq()).expect("run").elapsed;
        // Same work each run (modulo resource-timeline carryover).
        assert!(b.as_nanos() <= 2 * a.as_nanos());
    }
}
