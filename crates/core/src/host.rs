//! The host program against the simulated SmartSSD.
//!
//! §III-A: "the host program that is responsible for general control flow,
//! initiating data transfers, and managing the interaction with the FPGA
//! ingests this text file amid initializing the FPGA." [`HostProgram`]
//! performs exactly those steps on the [`csd_device`] runtime: parse the
//! weight file, quantize, allocate device buffers on the two DDR banks,
//! migrate the parameters, load sequence data from the SSD peer-to-peer,
//! and drive the per-item kernel schedule — returning both the
//! classification (computed bit-faithfully by the engine) and the
//! simulated device time.
//!
//! With a fault plan armed on the device (see [`csd_device::fault`]),
//! every step can fail; [`HostProgram`] recovers per its
//! [`RecoveryPolicy`]: bounded retry with exponential backoff, waiting
//! out brownouts, and a full bitstream reload ([reprogram]) after
//! repeated failures — so a flaky device delays verdicts but never
//! loses or changes one.
//!
//! [reprogram]: RecoveryPolicy::reprogram_after

#![deny(clippy::unwrap_used)]

use std::fmt;

use csd_device::{
    BufferHandle, DeviceRuntime, FaultCounters, FaultPlan, KernelHandle, Nanos, RuntimeError,
    SmartSsd,
};
use csd_nn::{ModelWeights, WeightsError};
use serde::{Deserialize, Serialize};

use crate::bitstream::{link, LinkError, Xclbin};
use crate::engine::{Classification, CsdInferenceEngine};
use crate::kernels::GateKind;
use crate::opt::OptimizationLevel;

/// Anything that can go wrong while booting or driving a host session,
/// with the layer that failed preserved for callers to match on.
#[derive(Debug, Clone, PartialEq)]
pub enum HostError {
    /// The weight text file failed to parse.
    Weights(WeightsError),
    /// The five-kernel design did not fit the target fabric.
    Link(LinkError),
    /// The device runtime rejected an operation.
    Device(RuntimeError),
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::Weights(e) => write!(f, "weight file rejected: {e}"),
            HostError::Link(e) => write!(f, "design failed to link: {e}"),
            HostError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for HostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HostError::Weights(e) => Some(e),
            HostError::Link(e) => Some(e),
            HostError::Device(e) => Some(e),
        }
    }
}

impl From<WeightsError> for HostError {
    fn from(e: WeightsError) -> Self {
        HostError::Weights(e)
    }
}

impl From<LinkError> for HostError {
    fn from(e: LinkError) -> Self {
        HostError::Link(e)
    }
}

impl From<RuntimeError> for HostError {
    fn from(e: RuntimeError) -> Self {
        HostError::Device(e)
    }
}

/// How a [`HostProgram`] responds to device faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Retries per classification before giving up and surfacing the
    /// error (the fleet layer then quarantines the device).
    pub max_retries: u32,
    /// Base backoff between retries; doubles per consecutive failure.
    pub backoff: Nanos,
    /// Consecutive failures that trigger a bitstream reload. Set to
    /// `u32::MAX` for a retry-only policy (the hung-kernel worst case
    /// then drains at the stall's own pace).
    pub reprogram_after: u32,
    /// Per-run kernel watchdog deadline (`None` disables it — a hung
    /// kernel then just makes the run slow instead of erroring).
    pub watchdog: Option<Nanos>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            backoff: Nanos::from_micros(50.0),
            reprogram_after: 2,
            watchdog: Some(Nanos::from_micros(10_000.0)),
        }
    }
}

impl RecoveryPolicy {
    /// Retry-with-backoff only; never reloads the bitstream.
    pub fn retry_only() -> Self {
        Self {
            reprogram_after: u32::MAX,
            ..Self::default()
        }
    }
}

/// Running recovery tallies for one host session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Device faults observed (all classes).
    pub faults: u64,
    /// Retries performed.
    pub retries: u64,
    /// Bitstream reloads performed.
    pub reprograms: u64,
    /// Kernel watchdog deadline trips.
    pub watchdog_trips: u64,
    /// Brownout windows waited out.
    pub brownout_waits: u64,
    /// CRC-on-DMA transfer rejections.
    pub crc_rejects: u64,
    /// SSD page-read failures.
    pub page_read_failures: u64,
}

impl RecoveryStats {
    fn note(&mut self, e: &RuntimeError) {
        self.faults += 1;
        match e {
            RuntimeError::TransferCorrupted { .. } => self.crc_rejects += 1,
            RuntimeError::KernelTimeout { .. } => self.watchdog_trips += 1,
            RuntimeError::PageReadFailed => self.page_read_failures += 1,
            RuntimeError::DeviceBrownout { .. } => self.brownout_waits += 1,
            _ => {}
        }
    }
}

/// Simulated cost of tearing the session down and reloading the
/// bitstream (partial reconfiguration of a KU15P-class fabric runs in
/// the hundreds of milliseconds).
const REPROGRAM_COST: Nanos = Nanos(400_000_000);

/// The result of one device-timed sequence classification.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRun {
    /// The classification (identical to the engine's).
    pub classification: Classification,
    /// Simulated device time from enqueue to final-kernel completion,
    /// including any retries, backoff, and reprogramming.
    pub elapsed: Nanos,
    /// Bytes loaded from NAND peer-to-peer for this run.
    pub p2p_bytes: u64,
    /// Retries it took to land this verdict (0 = clean first attempt).
    pub retries: u32,
}

/// The host program: one programmed FPGA session.
#[derive(Debug)]
pub struct HostProgram {
    runtime: DeviceRuntime,
    engine: CsdInferenceEngine,
    /// The linked image, kept so a bitstream reload can re-register the
    /// kernels with the same per-item timings.
    image: Xclbin,
    weight_buf: BufferHandle,
    seq_buf: BufferHandle,
    k_pre: KernelHandle,
    k_gates: [KernelHandle; 4],
    k_hidden: KernelHandle,
    model_version: u64,
    policy: RecoveryPolicy,
    stats: RecoveryStats,
    /// P2P bytes from sessions torn down by [`Self::reprogram`], so
    /// per-run accounting stays monotone across bitstream reloads.
    p2p_offset: u64,
}

impl HostProgram {
    /// Parses the paper's weight text file and initializes the device.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::Weights`] for a malformed file,
    /// [`HostError::Link`] if the design does not fit, or
    /// [`HostError::Device`] if device setup fails.
    pub fn from_weight_file(text: &str, level: OptimizationLevel) -> Result<Self, HostError> {
        let weights = ModelWeights::from_text(text)?;
        Self::new(&weights, level)
    }

    /// Initializes the device from already-parsed weights: links the
    /// five-kernel design for the u200 testbed (the `v++` step) and
    /// programs the resulting image.
    ///
    /// # Errors
    ///
    /// Returns [`HostError::Link`] if the design does not fit the u200
    /// fabric, or [`HostError::Device`] if buffer allocation fails.
    pub fn new(weights: &ModelWeights, level: OptimizationLevel) -> Result<Self, HostError> {
        let engine = CsdInferenceEngine::new(weights, level);
        let dims = engine.weights().dims();
        let device = SmartSsd::new_u200_testbed();
        let image = link(level, &dims, device.fpga())?;
        Ok(Self::program_engine(device, image, engine)?)
    }

    /// Programs a pre-linked [`Xclbin`] image with the given weights.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if buffer allocation fails, or
    /// [`RuntimeError::ShapeMismatch`] when the weights' dimensions do not
    /// match the image's compiled loop bounds.
    pub fn program(weights: &ModelWeights, image: Xclbin) -> Result<Self, RuntimeError> {
        let engine = CsdInferenceEngine::new(weights, image.level);
        if engine.weights().dims() != image.dims {
            return Err(RuntimeError::ShapeMismatch);
        }
        // Pick the SmartSSD flavour whose fabric matches the image.
        let device = if image.device == csd_hls::DeviceProfile::kintex_ku15p() {
            SmartSsd::new_smartssd()
        } else {
            SmartSsd::new_u200_testbed()
        };
        Self::program_engine(device, image, engine)
    }

    fn program_engine(
        device: SmartSsd,
        image: Xclbin,
        engine: CsdInferenceEngine,
    ) -> Result<Self, RuntimeError> {
        let policy = RecoveryPolicy::default();
        let mut runtime = DeviceRuntime::new(device);
        runtime.set_watchdog(policy.watchdog);
        let (weight_buf, seq_buf, k_pre, k_gates, k_hidden) =
            Self::set_up_session(&mut runtime, &image, &engine)?;
        Ok(Self {
            runtime,
            engine,
            image,
            weight_buf,
            seq_buf,
            k_pre,
            k_gates,
            k_hidden,
            model_version: 1,
            policy,
            stats: RecoveryStats::default(),
            p2p_offset: 0,
        })
    }

    /// Allocates the two-bank buffer layout, migrates the weights, and
    /// registers the five kernel circuits — shared between first boot
    /// and every bitstream reload.
    #[allow(clippy::type_complexity)]
    fn set_up_session(
        runtime: &mut DeviceRuntime,
        image: &Xclbin,
        engine: &CsdInferenceEngine,
    ) -> Result<
        (
            BufferHandle,
            BufferHandle,
            KernelHandle,
            [KernelHandle; 4],
            KernelHandle,
        ),
        RuntimeError,
    > {
        // Weights on bank 0, sequence data on bank 1 (two-bank policy).
        let weight_buf = runtime.alloc_buffer(0, engine.weights().device_bytes())?;
        let seq_buf = runtime.alloc_buffer(1, 4096)?;
        runtime.migrate_to_device(weight_buf)?;

        // Register the kernel instances with their per-item durations
        // straight from the linked image.
        let micros = |name: &str| Nanos::from_micros(image.per_item_us(name));
        let k_pre = runtime.register_kernel("kernel_preprocess", micros("kernel_preprocess"));
        let k_gates = GateKind::ALL.map(|kind| {
            let name = format!("kernel_gates[{kind:?}]");
            let d = micros(&name);
            runtime.register_kernel(name, d)
        });
        let k_hidden =
            runtime.register_kernel("kernel_hidden_state", micros("kernel_hidden_state"));
        Ok((weight_buf, seq_buf, k_pre, k_gates, k_hidden))
    }

    /// Replaces the default [`RecoveryPolicy`] (builder style).
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.set_recovery(policy);
        self
    }

    /// Replaces the recovery policy in place.
    pub fn set_recovery(&mut self, policy: RecoveryPolicy) {
        self.policy = policy;
        self.runtime.set_watchdog(policy.watchdog);
    }

    /// The active recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Recovery tallies accumulated by this session.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Arms a deterministic fault schedule on the underlying device.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.runtime.device_mut().arm_faults(plan);
    }

    /// Disarms fault injection; returns the retired plan if one was armed.
    pub fn disarm_faults(&mut self) -> Option<FaultPlan> {
        self.runtime.device_mut().disarm_faults()
    }

    /// Faults the device has injected so far.
    pub fn fault_counters(&self) -> FaultCounters {
        self.runtime.device().fault_counters()
    }

    /// Tears the session down and reloads the bitstream: the device
    /// (armed fault plan and all) survives, every circuit is freed —
    /// including ones hung by a stalled run — and the weights are
    /// re-migrated. Costs ~400 ms of simulated time.
    ///
    /// # Errors
    ///
    /// Returns the last [`RuntimeError`] if re-migrating the weights
    /// keeps failing past the retry budget; the session is left
    /// consistent and a later retry may still succeed.
    pub fn reprogram(&mut self) -> Result<(), RuntimeError> {
        self.stats.reprograms += 1;
        self.p2p_offset += self.runtime.summary().p2p_bytes;
        let old = std::mem::replace(
            &mut self.runtime,
            DeviceRuntime::new(SmartSsd::new_u200_testbed()),
        );
        let (device, elapsed) = old.release();
        let mut runtime = DeviceRuntime::new_at(device, elapsed + REPROGRAM_COST);
        runtime.set_watchdog(self.policy.watchdog);
        let mut attempt = 0u32;
        let result = loop {
            match Self::set_up_session(&mut runtime, &self.image, &self.engine) {
                Ok(handles) => break Ok(handles),
                Err(e) => {
                    self.stats.note(&e);
                    if attempt >= self.policy.max_retries {
                        break Err(e);
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                    if let RuntimeError::DeviceBrownout { until } = e {
                        runtime.advance_to(until);
                    } else {
                        runtime.advance(self.backoff_for(attempt));
                    }
                }
            }
        };
        match result {
            Ok((weight_buf, seq_buf, k_pre, k_gates, k_hidden)) => {
                self.runtime = runtime;
                self.weight_buf = weight_buf;
                self.seq_buf = seq_buf;
                self.k_pre = k_pre;
                self.k_gates = k_gates;
                self.k_hidden = k_hidden;
                Ok(())
            }
            Err(e) => {
                // Keep the real device so its clock and fault counters
                // stay truthful; the caller sees the error and can
                // quarantine or retry.
                self.runtime = runtime;
                Err(e)
            }
        }
    }

    /// Exponential backoff for the `attempt`-th retry (1-based).
    fn backoff_for(&self, attempt: u32) -> Nanos {
        let shift = attempt.saturating_sub(1).min(16);
        Nanos(self.policy.backoff.as_nanos().saturating_mul(1u64 << shift))
    }

    /// The currently-deployed model version (1 after boot; bumped by
    /// every [`Self::update_weights`]).
    pub fn model_version(&self) -> u64 {
        self.model_version
    }

    /// Hot-swaps the deployed model with retrained weights — the §III-A
    /// operational loop: "it is advisable to update the FPGA-based model
    /// with a version that has been retrained on new ransomware strains
    /// once they are uncovered in Cyber Threat Intelligence (CTI) feeds".
    /// The kernel bitstream is compiled once; only the parameter buffers
    /// move, so the update is a single weight migration.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ShapeMismatch`] when the new weights do not
    /// match the compiled kernel dimensions (the FPGA structure "remains
    /// fixed regardless of changes in the number of parameters" — to
    /// change shape, rebuild the [`HostProgram`]), or a migration error.
    pub fn update_weights(&mut self, weights: &ModelWeights) -> Result<Nanos, RuntimeError> {
        let new_engine = CsdInferenceEngine::new(weights, self.engine.level());
        if new_engine.weights().dims() != self.engine.weights().dims() {
            return Err(RuntimeError::ShapeMismatch);
        }
        let done = self.runtime.migrate_to_device(self.weight_buf)?;
        self.engine = new_engine;
        self.model_version += 1;
        Ok(done)
    }

    /// The functional engine backing this session.
    pub fn engine(&self) -> &CsdInferenceEngine {
        &self.engine
    }

    /// Engages the mitigation: freezes SSD writes so "subsequent
    /// encryption by the malware" (§IV) cannot land — the action a
    /// [`crate::monitor::StreamMonitor`] alert triggers.
    pub fn quarantine(&mut self) {
        self.runtime.freeze_writes();
    }

    /// Releases the quarantine after remediation.
    pub fn release_quarantine(&mut self) {
        self.runtime.thaw_writes();
    }

    /// A write attempt against the protected storage (e.g. the ransomware
    /// sealing another encrypted file); returns `None` when the quarantine
    /// rejected it.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn attempt_victim_write(&mut self, bytes: u64) -> Option<Nanos> {
        self.runtime.attempt_host_write(bytes)
    }

    /// Classifies a sequence stored on the SSD: loads it P2P into FPGA
    /// DRAM, drives the per-item kernel schedule, and returns the result
    /// with simulated timing.
    ///
    /// Under an armed fault plan, failures are absorbed per the
    /// [`RecoveryPolicy`]: bounded retry with exponential backoff,
    /// waiting out brownouts, and a bitstream reload after
    /// [`RecoveryPolicy::reprogram_after`] consecutive failures. The
    /// verdict itself is never affected — a faulted run produces no
    /// verdict at all until an attempt completes cleanly, and the
    /// classification is computed bit-faithfully by the engine.
    ///
    /// # Errors
    ///
    /// Returns the last [`RuntimeError`] once the retry budget
    /// ([`RecoveryPolicy::max_retries`]) is exhausted.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn classify_from_ssd(&mut self, seq: &[usize]) -> Result<DeviceRun, RuntimeError> {
        assert!(!seq.is_empty(), "empty sequence");
        let start = self.runtime.now();
        let before_p2p = self.p2p_offset + self.runtime.summary().p2p_bytes;
        let mut retries = 0u32;
        let mut consecutive = 0u32;
        let end = loop {
            match self.attempt_run(seq) {
                Ok(end) => break end,
                Err(e) => {
                    self.stats.note(&e);
                    if retries >= self.policy.max_retries {
                        return Err(e);
                    }
                    retries += 1;
                    consecutive += 1;
                    self.stats.retries += 1;
                    if let RuntimeError::DeviceBrownout { until } = e {
                        self.runtime.advance_to(until);
                    } else {
                        self.runtime.advance(self.backoff_for(consecutive));
                    }
                    if consecutive >= self.policy.reprogram_after {
                        self.reprogram()?;
                        consecutive = 0;
                    }
                }
            }
        };
        let classification = self.engine.classify(seq);
        Ok(DeviceRun {
            classification,
            elapsed: end - start,
            p2p_bytes: self.p2p_offset + self.runtime.summary().p2p_bytes - before_p2p,
            retries,
        })
    }

    /// One fault-vulnerable pass of the P2P load + kernel schedule.
    fn attempt_run(&mut self, seq: &[usize]) -> Result<Nanos, RuntimeError> {
        let bytes = (seq.len() * std::mem::size_of::<u64>()) as u64;
        self.runtime.p2p_load(self.seq_buf, bytes)?;
        for _item in seq {
            // Parameters were migrated once at boot and live in on-chip
            // buffers; per item, only the sequence data is re-read.
            // Kernels overlap across items (§III-C's pipeline): each
            // circuit serializes with itself, so the steady-state item
            // rate is set by the slowest kernel.
            self.runtime.enqueue(self.k_pre, &[self.seq_buf])?;
            for k in self.k_gates {
                self.runtime.enqueue(k, &[])?;
            }
            self.runtime.enqueue(self.k_hidden, &[])?;
        }
        Ok(self.runtime.wait_all())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use csd_device::FaultConfig;
    use csd_nn::{ModelConfig, SequenceClassifier};

    fn weights() -> ModelWeights {
        ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::paper(), 4))
    }

    fn seq() -> Vec<usize> {
        (0..100).map(|i| (7 * i) % 278).collect()
    }

    #[test]
    fn weight_file_roundtrip_boots_the_device() {
        let text = weights().to_text();
        let mut host =
            HostProgram::from_weight_file(&text, OptimizationLevel::FixedPoint).expect("boot");
        let run = host.classify_from_ssd(&seq()).expect("run");
        assert!(run.elapsed > Nanos::ZERO);
        assert!((0.0..=1.0).contains(&run.classification.probability));
    }

    #[test]
    fn bad_weight_file_is_rejected_with_typed_error() {
        let err = HostProgram::from_weight_file("garbage", OptimizationLevel::Vanilla)
            .expect_err("must fail");
        assert!(
            matches!(err, HostError::Weights(WeightsError::BadMagic)),
            "{err:?}"
        );
        assert!(err.to_string().contains("magic"), "{err}");
        use std::error::Error as _;
        assert!(err.source().is_some(), "layered error keeps its source");
    }

    #[test]
    fn classification_matches_pure_engine() {
        let w = weights();
        let mut host = HostProgram::new(&w, OptimizationLevel::FixedPoint).expect("boot");
        let engine = CsdInferenceEngine::new(&w, OptimizationLevel::FixedPoint);
        let s = seq();
        let run = host.classify_from_ssd(&s).expect("run");
        assert_eq!(run.classification, engine.classify(&s));
    }

    #[test]
    fn sequence_data_travels_p2p() {
        let mut host = HostProgram::new(&weights(), OptimizationLevel::FixedPoint).expect("boot");
        let run = host.classify_from_ssd(&seq()).expect("run");
        assert_eq!(run.p2p_bytes, 100 * 8);
    }

    #[test]
    fn optimized_level_is_faster_on_device() {
        let w = weights();
        let s = seq();
        let mut vanilla = HostProgram::new(&w, OptimizationLevel::Vanilla).expect("boot");
        let mut fixed = HostProgram::new(&w, OptimizationLevel::FixedPoint).expect("boot");
        let tv = vanilla.classify_from_ssd(&s).expect("run").elapsed;
        let tf = fixed.classify_from_ssd(&s).expect("run").elapsed;
        assert!(tf < tv, "fixed {tf} vs vanilla {tv}");
    }

    #[test]
    fn quarantine_blocks_encryption_writes() {
        let mut host = HostProgram::new(&weights(), OptimizationLevel::FixedPoint).expect("boot");
        assert!(host.attempt_victim_write(16 * 1024).is_some());
        host.quarantine();
        assert!(host.attempt_victim_write(16 * 1024).is_none());
        assert!(host.attempt_victim_write(4096).is_none());
        host.release_quarantine();
        assert!(host.attempt_victim_write(4096).is_some());
    }

    #[test]
    fn program_rejects_mismatched_dimensions() {
        let image = crate::bitstream::link(
            OptimizationLevel::FixedPoint,
            &crate::kernels::LstmDims::paper(),
            &csd_hls::DeviceProfile::alveo_u200(),
        )
        .expect("links");
        let wrong = ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::tiny(30), 2));
        assert_eq!(
            HostProgram::program(&wrong, image).unwrap_err(),
            RuntimeError::ShapeMismatch
        );
    }

    #[test]
    fn smartssd_image_runs_slower_than_u200() {
        // The deployment fabric (KU15P) is smaller, so the same design
        // clamps harder and each item takes longer on-device.
        let w = weights();
        let dims = crate::kernels::LstmDims::paper();
        let s = seq();
        let elapsed_on = |device: csd_hls::DeviceProfile| {
            let image = crate::bitstream::link(OptimizationLevel::FixedPoint, &dims, &device)
                .expect("links");
            let mut host = HostProgram::program(&w, image).expect("program");
            host.classify_from_ssd(&s).expect("run").elapsed
        };
        let smart = elapsed_on(csd_hls::DeviceProfile::kintex_ku15p());
        let u200 = elapsed_on(csd_hls::DeviceProfile::alveo_u200());
        assert!(smart >= u200, "{smart} vs {u200}");
    }

    #[test]
    fn cti_weight_update_swaps_the_model() {
        let old = weights();
        let retrained =
            ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::paper(), 99));
        let mut host = HostProgram::new(&old, OptimizationLevel::FixedPoint).expect("boot");
        assert_eq!(host.model_version(), 1);
        let s = seq();
        let before = host.engine().classify(&s);
        host.update_weights(&retrained).expect("update");
        assert_eq!(host.model_version(), 2);
        let after = host.engine().classify(&s);
        assert_ne!(before, after, "new weights must change behaviour");
        // And matches a fresh engine on the retrained weights.
        let fresh = CsdInferenceEngine::new(&retrained, OptimizationLevel::FixedPoint);
        assert_eq!(after, fresh.classify(&s));
    }

    #[test]
    fn update_rejects_shape_changes() {
        let mut host = HostProgram::new(&weights(), OptimizationLevel::FixedPoint).expect("boot");
        let other_shape =
            ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::tiny(50), 1));
        let err = host.update_weights(&other_shape).unwrap_err();
        assert_eq!(err, RuntimeError::ShapeMismatch);
        assert_eq!(host.model_version(), 1, "failed update must not bump");
    }

    fn corruption_only(rate: f64) -> FaultConfig {
        let mut cfg = FaultConfig::none();
        cfg.corruption = rate;
        cfg
    }

    #[test]
    fn low_rate_corruption_is_absorbed_by_retries() {
        let w = weights();
        let s = seq();
        let engine = CsdInferenceEngine::new(&w, OptimizationLevel::FixedPoint);
        let mut host = HostProgram::new(&w, OptimizationLevel::FixedPoint)
            .expect("boot")
            .with_recovery(RecoveryPolicy {
                max_retries: 16,
                ..RecoveryPolicy::default()
            });
        host.arm_faults(FaultPlan::new(11, corruption_only(0.002)));
        let mut faulted_runs = 0;
        for _ in 0..8 {
            let run = host.classify_from_ssd(&s).expect("recovers");
            // The verdict is bit-identical to the fault-free engine no
            // matter how many attempts it took.
            assert_eq!(run.classification, engine.classify(&s));
            if run.retries > 0 {
                faulted_runs += 1;
            }
        }
        assert!(faulted_runs > 0, "rate 0.002 over 8 runs must fault");
        let stats = host.recovery_stats();
        assert!(stats.faults > 0 && stats.retries > 0);
        assert_eq!(stats.crc_rejects, stats.faults, "only corruption armed");
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_the_error() {
        let mut host = HostProgram::new(&weights(), OptimizationLevel::FixedPoint)
            .expect("boot")
            .with_recovery(RecoveryPolicy {
                max_retries: 2,
                ..RecoveryPolicy::retry_only()
            });
        host.arm_faults(FaultPlan::new(5, corruption_only(1.0)));
        let err = host
            .classify_from_ssd(&seq())
            .expect_err("budget exhausted");
        assert!(matches!(err, RuntimeError::TransferCorrupted { .. }));
        let stats = host.recovery_stats();
        assert_eq!(stats.retries, 2, "exactly the budget");
        assert_eq!(stats.faults, 3, "initial attempt + two retries");
        assert_eq!(stats.reprograms, 0, "retry-only policy never reloads");
        // The device recovers the moment the fault clears.
        host.disarm_faults();
        assert!(host.classify_from_ssd(&seq()).is_ok());
    }

    #[test]
    fn watchdog_plus_reprogram_frees_a_hung_circuit() {
        let mut cfg = FaultConfig::none();
        cfg.stall = 1.0;
        cfg.stall_duration = Nanos::from_micros(2_000_000.0); // 2 s hang
        let mut host = HostProgram::new(&weights(), OptimizationLevel::FixedPoint)
            .expect("boot")
            .with_recovery(RecoveryPolicy {
                max_retries: 1,
                reprogram_after: 1,
                ..RecoveryPolicy::default()
            });
        host.arm_faults(FaultPlan::new(9, cfg));
        let err = host.classify_from_ssd(&seq()).expect_err("still flaky");
        assert!(matches!(err, RuntimeError::KernelTimeout { .. }), "{err:?}");
        let stats = host.recovery_stats();
        assert!(stats.watchdog_trips >= 1);
        assert!(stats.reprograms >= 1, "policy reloads after 1 failure");
        // Clear the fault, reload once more to free the hung circuit:
        // the run completes in device-time, not hang-time.
        host.disarm_faults();
        host.reprogram().expect("clean reload");
        let run = host.classify_from_ssd(&seq()).expect("clean run");
        assert!(
            run.elapsed < Nanos::from_micros(1_000_000.0),
            "no residual hang: {}",
            run.elapsed
        );
    }

    #[test]
    fn brownout_is_waited_out_not_fatal() {
        let mut cfg = FaultConfig::none();
        // Per-operation probability: one classify issues ~600 faultable
        // operations, so even 3e-4 browns out most attempts once.
        cfg.brownout = 0.0003;
        cfg.brownout_window = Nanos::from_micros(500.0);
        let w = weights();
        let s = seq();
        let engine = CsdInferenceEngine::new(&w, OptimizationLevel::FixedPoint);
        let mut host = HostProgram::new(&w, OptimizationLevel::FixedPoint)
            .expect("boot")
            .with_recovery(RecoveryPolicy {
                max_retries: 16,
                ..RecoveryPolicy::default()
            });
        host.arm_faults(FaultPlan::new(3, cfg));
        for _ in 0..4 {
            let run = host.classify_from_ssd(&s).expect("waits out brownouts");
            assert_eq!(run.classification, engine.classify(&s));
        }
        assert!(
            host.recovery_stats().brownout_waits > 0,
            "brownouts did fire"
        );
        assert!(host.fault_counters().brownouts > 0);
    }

    #[test]
    fn successive_runs_accumulate_time() {
        let mut host = HostProgram::new(&weights(), OptimizationLevel::FixedPoint).expect("boot");
        let a = host.classify_from_ssd(&seq()).expect("run").elapsed;
        let b = host.classify_from_ssd(&seq()).expect("run").elapsed;
        // Same work each run (modulo resource-timeline carryover).
        assert!(b.as_nanos() <= 2 * a.as_nanos());
    }
}
