//! A persistent worker pool shared by the engine's parallel paths.
//!
//! The previous engine spawned fresh OS threads per timestep (gate CUs)
//! and per batch call via scoped threads. Thread creation costs dwarf a
//! 32-element gate matvec, so the hot paths now submit work to one
//! process-wide pool of long-lived workers ([`WorkerPool::global`]),
//! mirroring how the physical CUs are instantiated once at bitstream
//! programming and then fed per-timestep inputs.
//!
//! [`WorkerPool::scatter`] is the only submission primitive the engine
//! needs: run a batch of jobs, return results in submission order. While
//! waiting, the submitting thread drains pending pool jobs itself, so
//! nested scatters (a batch worker fanning out gate CUs) cannot deadlock
//! even when every worker is busy.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    pending: VecDeque<Job>,
    closed: bool,
}

impl Queue {
    fn push(&self, job: Job) {
        let mut state = self.jobs.lock().expect("pool queue poisoned");
        state.pending.push_back(job);
        drop(state);
        self.available.notify_one();
    }

    /// Blocks until a job is available (workers) or the pool closes.
    fn pop_blocking(&self) -> Option<Job> {
        let mut state = self.jobs.lock().expect("pool queue poisoned");
        loop {
            if let Some(job) = state.pending.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("pool queue poisoned");
        }
    }

    /// Takes a job only if one is immediately available (helpers).
    fn try_pop(&self) -> Option<Job> {
        self.jobs
            .lock()
            .expect("pool queue poisoned")
            .pending
            .pop_front()
    }

    fn close(&self) {
        self.jobs.lock().expect("pool queue poisoned").closed = true;
        self.available.notify_all();
    }
}

/// A fixed-size pool of long-lived worker threads.
///
/// Most callers want the process-wide [`WorkerPool::global`]; constructing
/// private pools is supported for tests. Workers survive job panics: a
/// panicking [`scatter`](Self::scatter) job forwards its payload to the
/// submitting thread, which re-raises it.
pub struct WorkerPool {
    queue: Arc<Queue>,
    threads: usize,
}

impl WorkerPool {
    /// Builds a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(Queue {
            jobs: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        });
        for worker in 0..threads {
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name(format!("csd-pool-{worker}"))
                .spawn(move || {
                    while let Some(job) = queue.pop_blocking() {
                        // Payloads are routed to submitters via scatter's
                        // result channel; the worker itself never unwinds.
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                })
                .expect("spawn pool worker");
        }
        Self { queue, threads }
    }

    /// The single process-wide pool, sized to the machine's available
    /// parallelism and created on first use.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            WorkerPool::new(std::thread::available_parallelism().map_or(4, |n| n.get()))
        })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job on the pool and returns their results in submission
    /// order. The calling thread helps drain the pool while waiting, so
    /// scatters may nest arbitrarily without deadlocking.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first observed panicking job.
    pub fn scatter<R, I>(&self, jobs: I) -> Vec<R>
    where
        R: Send + 'static,
        I: IntoIterator<Item = Box<dyn FnOnce() -> R + Send + 'static>>,
    {
        let (result_tx, result_rx) = channel();
        let mut submitted = 0usize;
        for (index, job) in jobs.into_iter().enumerate() {
            let tx = result_tx.clone();
            self.queue.push(Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                // The submitter may already be unwinding a panic from an
                // earlier job; a dead channel is fine then.
                let _ = tx.send((index, outcome));
            }));
            submitted += 1;
        }
        drop(result_tx);

        let mut slots: Vec<Option<R>> = (0..submitted).map(|_| None).collect();
        let mut received = 0usize;
        while received < submitted {
            match result_rx.recv_timeout(Duration::from_millis(1)) {
                Ok((index, Ok(value))) => {
                    slots[index] = Some(value);
                    received += 1;
                }
                Ok((_, Err(payload))) => resume_unwind(payload),
                Err(RecvTimeoutError::Timeout) => {
                    // Help: run one pending pool job (possibly our own).
                    if let Some(job) = self.queue.try_pop() {
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("result senders outlive their jobs")
                }
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index reported"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.queue.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_preserves_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let results = pool.scatter(jobs);
        assert_eq!(results, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scatter_does_not_deadlock() {
        // One worker, two levels of scatter: only possible because the
        // submitting thread drains the queue while waiting.
        let pool = WorkerPool::new(1);
        let outer: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..3usize)
            .map(|i| {
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
                        .map(|j| Box::new(move || i * 10 + j) as Box<dyn FnOnce() -> usize + Send>)
                        .collect();
                    WorkerPool::global().scatter(inner).into_iter().sum()
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let sums = pool.scatter(outer);
        assert_eq!(sums, vec![6, 46, 86]);
    }

    #[test]
    fn workers_survive_panicking_jobs() {
        let pool = WorkerPool::new(2);
        let boom: Vec<Box<dyn FnOnce() + Send>> =
            vec![Box::new(|| panic!("job failure")) as Box<dyn FnOnce() + Send>];
        let outcome = catch_unwind(AssertUnwindSafe(|| pool.scatter(boom)));
        assert!(outcome.is_err(), "panic should reach the submitter");
        // The pool still works afterwards.
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 7u32) as Box<dyn FnOnce() -> u32 + Send>];
        assert_eq!(pool.scatter(jobs), vec![7]);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(WorkerPool::global().threads() >= 1);
    }

    #[test]
    fn empty_scatter_returns_empty() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(pool.scatter(jobs).is_empty());
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let pool = WorkerPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..50)
            .map(|_| {
                Box::new(|| {
                    COUNTER.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.scatter(jobs);
        assert_eq!(COUNTER.load(Ordering::SeqCst), 50);
    }
}
