//! A persistent worker pool shared by the engine's parallel paths.
//!
//! The previous engine spawned fresh OS threads per timestep (gate CUs)
//! and per batch call via scoped threads. Thread creation costs dwarf a
//! 32-element gate matvec, so the hot paths now submit work to one
//! process-wide pool of long-lived workers ([`WorkerPool::global`]),
//! mirroring how the physical CUs are instantiated once at bitstream
//! programming and then fed per-timestep inputs.
//!
//! [`WorkerPool::scatter`] is the basic submission primitive: run a batch
//! of `'static` jobs, return results in submission order. While waiting,
//! the submitting thread drains pending pool jobs itself, so nested
//! scatters (a batch worker fanning out gate CUs) cannot deadlock even
//! when every worker is busy. [`WorkerPool::scatter_scoped`] relaxes the
//! `'static` bound so jobs can borrow from the caller's stack — the lane
//! engine paths shard borrowed slices across workers without cloning the
//! engine or copying sequences.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// A job panicked on the pool.
///
/// [`WorkerPool::try_scatter`] and
/// [`WorkerPool::try_scatter_scoped`] surface this instead of
/// re-raising the panic, so callers can treat a poisoned job like any
/// other fallible operation. Only the *first* observed panic is
/// reported; every submitted job still runs to completion first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A submitted job panicked; its siblings were unaffected.
    JobPanicked {
        /// Submission index of the panicking job.
        index: usize,
        /// The panic payload, stringified where possible.
        message: String,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::JobPanicked { index, message } => {
                write!(f, "pool job {index} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Renders a panic payload for [`PoolError::JobPanicked`].
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A poisoned pool lock only means some thread panicked mid-operation;
/// the queue's invariants (a VecDeque and a bool) survive unwinding, so
/// keep going instead of cascading the panic to every other user.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

struct Queue {
    jobs: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    pending: VecDeque<Job>,
    closed: bool,
}

impl Queue {
    fn push(&self, job: Job) {
        let mut state = relock(self.jobs.lock());
        state.pending.push_back(job);
        drop(state);
        self.available.notify_one();
    }

    /// Blocks until a job is available (workers) or the pool closes.
    fn pop_blocking(&self) -> Option<Job> {
        let mut state = relock(self.jobs.lock());
        loop {
            if let Some(job) = state.pending.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = relock(self.available.wait(state));
        }
    }

    /// Takes a job only if one is immediately available (helpers).
    fn try_pop(&self) -> Option<Job> {
        relock(self.jobs.lock()).pending.pop_front()
    }

    fn close(&self) {
        relock(self.jobs.lock()).closed = true;
        self.available.notify_all();
    }
}

/// A fixed-size pool of long-lived worker threads.
///
/// Most callers want the process-wide [`WorkerPool::global`]; constructing
/// private pools is supported for tests. A panicking job poisons only
/// itself: the submitter sees it as a [`PoolError`] (or a re-raised
/// panic from the infallible wrappers), sibling jobs run to completion,
/// and a worker thread killed by an escaped panic is respawned on the
/// next submission.
pub struct WorkerPool {
    queue: Arc<Queue>,
    threads: usize,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkerPool {
    /// Builds a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(Queue {
            jobs: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|worker| Self::spawn_worker(Arc::clone(&queue), worker))
            .collect();
        Self {
            queue,
            threads,
            workers: Mutex::new(workers),
        }
    }

    fn spawn_worker(queue: Arc<Queue>, worker: usize) -> std::thread::JoinHandle<()> {
        std::thread::Builder::new()
            .name(format!("csd-pool-{worker}"))
            .spawn(move || {
                while let Some(job) = queue.pop_blocking() {
                    // Scatter wrappers catch job panics and route them to
                    // the submitter; a panic that still escapes (e.g. a
                    // payload whose Drop panics) kills this thread, and
                    // `ensure_workers` replaces it on the next submission.
                    job();
                }
            })
            .expect("spawn pool worker")
    }

    /// Respawns any worker thread that died to an escaped panic.
    fn ensure_workers(&self) {
        let mut workers = relock(self.workers.lock());
        for (idx, slot) in workers.iter_mut().enumerate() {
            if slot.is_finished() {
                *slot = Self::spawn_worker(Arc::clone(&self.queue), idx);
            }
        }
    }

    /// Test-only: pushes a raw job with no panic-catching wrapper, so a
    /// panicking job kills its worker thread (the respawn path's prey).
    #[cfg(test)]
    fn push_raw(&self, job: Job) {
        self.queue.push(job);
    }

    /// Number of worker threads currently alive.
    pub fn alive_workers(&self) -> usize {
        relock(self.workers.lock())
            .iter()
            .filter(|w| !w.is_finished())
            .count()
    }

    /// Starts configuring a pool. Equivalent to `WorkerPool::new` but
    /// reads defaults (including the `CSD_POOL_THREADS` environment
    /// override) when a knob is left unset.
    pub fn builder() -> WorkerPoolBuilder {
        WorkerPoolBuilder { threads: None }
    }

    /// The single process-wide pool, created on first use. Sized from the
    /// `CSD_POOL_THREADS` environment variable when set to a positive
    /// integer, otherwise from the machine's available parallelism.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::builder().build())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job on the pool and returns their results in submission
    /// order. The calling thread helps drain the pool while waiting, so
    /// scatters may nest arbitrarily without deadlocking.
    ///
    /// # Panics
    ///
    /// Panics with the first observed job panic's message. Use
    /// [`try_scatter`](Self::try_scatter) to handle it as an error.
    pub fn scatter<R, I>(&self, jobs: I) -> Vec<R>
    where
        R: Send + 'static,
        I: IntoIterator<Item = Box<dyn FnOnce() -> R + Send + 'static>>,
    {
        match self.try_scatter(jobs) {
            Ok(results) => results,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`scatter`](Self::scatter): a panicking job becomes a
    /// [`PoolError::JobPanicked`] instead of unwinding the caller.
    /// Every submitted job runs to completion either way; one poisoned
    /// job cannot take its siblings (or the pool) down with it.
    ///
    /// # Errors
    ///
    /// Returns the first observed job panic.
    pub fn try_scatter<R, I>(&self, jobs: I) -> Result<Vec<R>, PoolError>
    where
        R: Send + 'static,
        I: IntoIterator<Item = Box<dyn FnOnce() -> R + Send + 'static>>,
    {
        self.ensure_workers();
        let (result_tx, result_rx) = channel();
        let mut submitted = 0usize;
        for (index, job) in jobs.into_iter().enumerate() {
            let tx = result_tx.clone();
            self.queue.push(Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                // The submitter may have bailed already; a dead channel
                // is fine then.
                let _ = tx.send((index, outcome));
            }));
            submitted += 1;
        }
        drop(result_tx);
        self.collect(submitted, &result_rx)
    }

    /// Drains `submitted` results off `result_rx`, helping run pool jobs
    /// while waiting. Shared by both scatter flavours.
    fn collect<R>(
        &self,
        submitted: usize,
        result_rx: &std::sync::mpsc::Receiver<(usize, std::thread::Result<R>)>,
    ) -> Result<Vec<R>, PoolError> {
        let mut slots: Vec<Option<R>> = (0..submitted).map(|_| None).collect();
        let mut received = 0usize;
        let mut first_error: Option<PoolError> = None;
        while received < submitted {
            match result_rx.recv_timeout(Duration::from_millis(1)) {
                Ok((index, Ok(value))) => {
                    slots[index] = Some(value);
                    received += 1;
                }
                Ok((index, Err(payload))) => {
                    received += 1;
                    if first_error.is_none() {
                        first_error = Some(PoolError::JobPanicked {
                            index,
                            message: payload_message(payload.as_ref()),
                        });
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Help: run one pending pool job (possibly our own).
                    if let Some(job) = self.queue.try_pop() {
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("result senders outlive their jobs")
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("every index reported"))
            .collect())
    }

    /// Like [`scatter`](Self::scatter), but jobs may borrow from the
    /// caller's stack frame (`'env`): run every job on the pool and return
    /// their results in submission order. The calling thread helps drain
    /// the pool while waiting, so scoped scatters nest with plain ones
    /// without deadlocking.
    ///
    /// This is what lets the batch paths hand workers *references* to the
    /// engine and the input sequences instead of cloning an `Arc` handle
    /// and copying every sequence per chunk.
    ///
    /// # Panics
    ///
    /// Panics with the first observed job panic's message — but only
    /// after every submitted job has finished running, so borrowed data is
    /// never observed by a worker past this call's lifetime. Use
    /// [`try_scatter_scoped`](Self::try_scatter_scoped) to handle it as
    /// an error.
    pub fn scatter_scoped<'env, R: Send + 'env>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> R + Send + 'env>>,
    ) -> Vec<R> {
        match self.try_scatter_scoped(jobs) {
            Ok(results) => results,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`scatter_scoped`](Self::scatter_scoped): a panicking
    /// job becomes a [`PoolError::JobPanicked`]. The scope barrier is
    /// unchanged — every job finishes before this returns, on the error
    /// path too.
    ///
    /// # Errors
    ///
    /// Returns the first observed job panic.
    #[allow(unsafe_code)] // one lifetime transmute, justified below.
    pub fn try_scatter_scoped<'env, R: Send + 'env>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> R + Send + 'env>>,
    ) -> Result<Vec<R>, PoolError> {
        self.ensure_workers();
        let submitted = jobs.len();
        let done: Arc<(Mutex<usize>, Condvar)> = Arc::new((Mutex::new(0), Condvar::new()));
        let (result_tx, result_rx) = channel();
        // Declared after `result_rx` so it drops (and therefore waits for
        // every outstanding job) *before* the receiver frees any buffered
        // `R` values during an unwind.
        let guard = ScopeGuard {
            done: Arc::clone(&done),
            submitted,
            queue: Arc::clone(&self.queue),
        };
        for (index, job) in jobs.into_iter().enumerate() {
            let tx = result_tx.clone();
            let done = Arc::clone(&done);
            let wrapper: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                // The submitter may already be unwinding; a dead channel
                // is fine then.
                let _ = tx.send((index, outcome));
                // Drop every capture that can reference `'env` *before*
                // signalling completion: once the counter says "done" the
                // submitting frame may return and invalidate the borrows.
                drop(tx);
                let (count, cvar) = &*done;
                *relock(count.lock()) += 1;
                cvar.notify_all();
            });
            // SAFETY: the queue's `Job` type requires `'static`, but this
            // wrapper only borrows data from the current stack frame
            // (`'env`). `guard` (declared above, dropped on every exit
            // path of this function including unwinds) blocks until the
            // completion counter reaches `submitted`, and each wrapper
            // increments that counter strictly after its last use of any
            // `'env` capture. Therefore no borrowed data is accessed
            // after this function returns, which is the invariant the
            // `'static` bound exists to enforce.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(
                    wrapper,
                )
            };
            self.queue.push(job);
        }
        drop(result_tx);

        let result = self.collect(submitted, &result_rx);
        drop(guard);
        result
    }
}

/// Blocks in `Drop` until every job of one `scatter_scoped` call has
/// signalled completion — the linchpin of that method's safety argument.
/// Runs on both the normal and the unwinding exit path.
struct ScopeGuard {
    done: Arc<(Mutex<usize>, Condvar)>,
    submitted: usize,
    queue: Arc<Queue>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let (count, cvar) = &*self.done;
        loop {
            let finished = relock(count.lock());
            if *finished >= self.submitted {
                return;
            }
            // Keep helping while we wait so a pool saturated with nested
            // scatters cannot deadlock against this barrier.
            let (finished, _) = cvar
                .wait_timeout(finished, Duration::from_millis(1))
                .unwrap_or_else(PoisonError::into_inner);
            if *finished >= self.submitted {
                return;
            }
            drop(finished);
            if let Some(job) = self.queue.try_pop() {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
        }
    }
}

/// Configuration for a [`WorkerPool`]; obtained via [`WorkerPool::builder`].
pub struct WorkerPoolBuilder {
    threads: Option<usize>,
}

impl WorkerPoolBuilder {
    /// Sets the worker count explicitly (clamped to at least one),
    /// overriding both the environment variable and the machine default.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Builds the pool. When no thread count was set, reads
    /// `CSD_POOL_THREADS` (positive integer) and falls back to the
    /// machine's available parallelism.
    pub fn build(self) -> WorkerPool {
        let threads = self
            .threads
            .or_else(|| crate::env::positive_usize("CSD_POOL_THREADS"))
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
        WorkerPool::new(threads)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.queue.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_preserves_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let results = pool.scatter(jobs);
        assert_eq!(results, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scatter_does_not_deadlock() {
        // One worker, two levels of scatter: only possible because the
        // submitting thread drains the queue while waiting.
        let pool = WorkerPool::new(1);
        let outer: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..3usize)
            .map(|i| {
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
                        .map(|j| Box::new(move || i * 10 + j) as Box<dyn FnOnce() -> usize + Send>)
                        .collect();
                    WorkerPool::global().scatter(inner).into_iter().sum()
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let sums = pool.scatter(outer);
        assert_eq!(sums, vec![6, 46, 86]);
    }

    #[test]
    fn workers_survive_panicking_jobs() {
        let pool = WorkerPool::new(2);
        let boom: Vec<Box<dyn FnOnce() + Send>> =
            vec![Box::new(|| panic!("job failure")) as Box<dyn FnOnce() + Send>];
        let outcome = catch_unwind(AssertUnwindSafe(|| pool.scatter(boom)));
        assert!(outcome.is_err(), "panic should reach the submitter");
        // The pool still works afterwards.
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 7u32) as Box<dyn FnOnce() -> u32 + Send>];
        assert_eq!(pool.scatter(jobs), vec![7]);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(WorkerPool::global().threads() >= 1);
    }

    #[test]
    fn empty_scatter_returns_empty() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(pool.scatter(jobs).is_empty());
    }

    #[test]
    fn scatter_scoped_borrows_from_the_stack() {
        let pool = WorkerPool::new(4);
        let data: Vec<usize> = (0..128).collect();
        let chunks: Vec<&[usize]> = data.chunks(16).collect();
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = chunks
            .iter()
            .map(|chunk| Box::new(move || chunk.iter().sum::<usize>()) as _)
            .collect();
        let sums = pool.scatter_scoped(jobs);
        let expected: Vec<usize> = chunks.iter().map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn scatter_scoped_preserves_order_and_nests() {
        let pool = WorkerPool::new(1);
        let base = [1usize, 2, 3];
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = (0..6usize)
            .map(|i| {
                let base = &base;
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() -> usize + Send + '_>> =
                        base.iter().map(|&b| Box::new(move || b * i) as _).collect();
                    WorkerPool::global().scatter_scoped(inner).into_iter().sum()
                }) as _
            })
            .collect();
        let results = pool.scatter_scoped(jobs);
        assert_eq!(results, (0..6usize).map(|i| 6 * i).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_scoped_waits_out_all_jobs_on_panic() {
        let pool = WorkerPool::new(2);
        let flags: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = flags
            .iter()
            .enumerate()
            .map(|(i, flag)| {
                Box::new(move || {
                    flag.store(1, Ordering::SeqCst);
                    if i == 0 {
                        panic!("scoped job failure");
                    }
                    i
                }) as _
            })
            .collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| pool.scatter_scoped(jobs)));
        assert!(outcome.is_err(), "panic should reach the submitter");
        // The scope barrier ran every job to completion before the panic
        // escaped, so every borrowed flag was touched exactly while valid.
        for flag in &flags {
            assert_eq!(flag.load(Ordering::SeqCst), 1);
        }
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 11u32) as Box<dyn FnOnce() -> u32 + Send>];
        assert_eq!(pool.scatter(jobs), vec![11]);
    }

    #[test]
    fn try_scatter_reports_the_panicking_job_without_unwinding() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("job {i} failure");
                    }
                    i * 2
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = pool.try_scatter(jobs).expect_err("job 3 panicked");
        let PoolError::JobPanicked { index, message } = err;
        assert_eq!(index, 3);
        assert!(message.contains("job 3 failure"), "{message}");
        // Siblings ran, the pool is intact.
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 9u32) as Box<dyn FnOnce() -> u32 + Send>];
        assert_eq!(pool.try_scatter(jobs), Ok(vec![9]));
    }

    #[test]
    fn try_scatter_scoped_runs_every_job_before_reporting() {
        let pool = WorkerPool::new(2);
        let flags: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = flags
            .iter()
            .enumerate()
            .map(|(i, flag)| {
                Box::new(move || {
                    flag.store(1, Ordering::SeqCst);
                    assert!(i != 0, "scoped job failure");
                    i
                }) as _
            })
            .collect();
        let err = pool.try_scatter_scoped(jobs).expect_err("job 0 panicked");
        assert!(matches!(err, PoolError::JobPanicked { index: 0, .. }));
        for flag in &flags {
            assert_eq!(flag.load(Ordering::SeqCst), 1, "barrier ran every job");
        }
    }

    #[test]
    fn dead_worker_is_respawned_on_next_submission() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.alive_workers(), 2);
        // A raw job has no catch wrapper: its panic kills the worker.
        pool.push_raw(Box::new(|| panic!("worker killer")));
        for _ in 0..500 {
            if pool.alive_workers() < 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(pool.alive_workers() < 2, "the raw panic killed a worker");
        // The next scatter respawns it and still completes.
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8u32)
            .map(|i| Box::new(move || i * 3) as Box<dyn FnOnce() -> u32 + Send>)
            .collect();
        assert_eq!(
            pool.scatter(jobs),
            (0..8u32).map(|i| i * 3).collect::<Vec<_>>()
        );
        assert_eq!(pool.alive_workers(), 2, "full strength restored");
    }

    #[test]
    fn builder_sets_thread_count() {
        let pool = WorkerPool::builder().threads(3).build();
        assert_eq!(pool.threads(), 3);
        // Explicit zero still yields a working single-thread pool.
        let pool = WorkerPool::builder().threads(0).build();
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let pool = WorkerPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..50)
            .map(|_| {
                Box::new(|| {
                    COUNTER.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.scatter(jobs);
        assert_eq!(COUNTER.load(Ordering::SeqCst), 50);
    }
}
