//! A persistent worker pool shared by the engine's parallel paths.
//!
//! The previous engine spawned fresh OS threads per timestep (gate CUs)
//! and per batch call via scoped threads. Thread creation costs dwarf a
//! 32-element gate matvec, so the hot paths now submit work to one
//! process-wide pool of long-lived workers ([`WorkerPool::global`]),
//! mirroring how the physical CUs are instantiated once at bitstream
//! programming and then fed per-timestep inputs.
//!
//! [`WorkerPool::scatter`] is the basic submission primitive: run a batch
//! of `'static` jobs, return results in submission order. While waiting,
//! the submitting thread drains pending pool jobs itself, so nested
//! scatters (a batch worker fanning out gate CUs) cannot deadlock even
//! when every worker is busy. [`WorkerPool::scatter_scoped`] relaxes the
//! `'static` bound so jobs can borrow from the caller's stack — the lane
//! engine paths shard borrowed slices across workers without cloning the
//! engine or copying sequences.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    pending: VecDeque<Job>,
    closed: bool,
}

impl Queue {
    fn push(&self, job: Job) {
        let mut state = self.jobs.lock().expect("pool queue poisoned");
        state.pending.push_back(job);
        drop(state);
        self.available.notify_one();
    }

    /// Blocks until a job is available (workers) or the pool closes.
    fn pop_blocking(&self) -> Option<Job> {
        let mut state = self.jobs.lock().expect("pool queue poisoned");
        loop {
            if let Some(job) = state.pending.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("pool queue poisoned");
        }
    }

    /// Takes a job only if one is immediately available (helpers).
    fn try_pop(&self) -> Option<Job> {
        self.jobs
            .lock()
            .expect("pool queue poisoned")
            .pending
            .pop_front()
    }

    fn close(&self) {
        self.jobs.lock().expect("pool queue poisoned").closed = true;
        self.available.notify_all();
    }
}

/// A fixed-size pool of long-lived worker threads.
///
/// Most callers want the process-wide [`WorkerPool::global`]; constructing
/// private pools is supported for tests. Workers survive job panics: a
/// panicking [`scatter`](Self::scatter) job forwards its payload to the
/// submitting thread, which re-raises it.
pub struct WorkerPool {
    queue: Arc<Queue>,
    threads: usize,
}

impl WorkerPool {
    /// Builds a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(Queue {
            jobs: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        });
        for worker in 0..threads {
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name(format!("csd-pool-{worker}"))
                .spawn(move || {
                    while let Some(job) = queue.pop_blocking() {
                        // Payloads are routed to submitters via scatter's
                        // result channel; the worker itself never unwinds.
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                })
                .expect("spawn pool worker");
        }
        Self { queue, threads }
    }

    /// Starts configuring a pool. Equivalent to `WorkerPool::new` but
    /// reads defaults (including the `CSD_POOL_THREADS` environment
    /// override) when a knob is left unset.
    pub fn builder() -> WorkerPoolBuilder {
        WorkerPoolBuilder { threads: None }
    }

    /// The single process-wide pool, created on first use. Sized from the
    /// `CSD_POOL_THREADS` environment variable when set to a positive
    /// integer, otherwise from the machine's available parallelism.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::builder().build())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job on the pool and returns their results in submission
    /// order. The calling thread helps drain the pool while waiting, so
    /// scatters may nest arbitrarily without deadlocking.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first observed panicking job.
    pub fn scatter<R, I>(&self, jobs: I) -> Vec<R>
    where
        R: Send + 'static,
        I: IntoIterator<Item = Box<dyn FnOnce() -> R + Send + 'static>>,
    {
        let (result_tx, result_rx) = channel();
        let mut submitted = 0usize;
        for (index, job) in jobs.into_iter().enumerate() {
            let tx = result_tx.clone();
            self.queue.push(Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                // The submitter may already be unwinding a panic from an
                // earlier job; a dead channel is fine then.
                let _ = tx.send((index, outcome));
            }));
            submitted += 1;
        }
        drop(result_tx);

        let mut slots: Vec<Option<R>> = (0..submitted).map(|_| None).collect();
        let mut received = 0usize;
        while received < submitted {
            match result_rx.recv_timeout(Duration::from_millis(1)) {
                Ok((index, Ok(value))) => {
                    slots[index] = Some(value);
                    received += 1;
                }
                Ok((_, Err(payload))) => resume_unwind(payload),
                Err(RecvTimeoutError::Timeout) => {
                    // Help: run one pending pool job (possibly our own).
                    if let Some(job) = self.queue.try_pop() {
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("result senders outlive their jobs")
                }
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index reported"))
            .collect()
    }

    /// Like [`scatter`](Self::scatter), but jobs may borrow from the
    /// caller's stack frame (`'env`): run every job on the pool and return
    /// their results in submission order. The calling thread helps drain
    /// the pool while waiting, so scoped scatters nest with plain ones
    /// without deadlocking.
    ///
    /// This is what lets the batch paths hand workers *references* to the
    /// engine and the input sequences instead of cloning an `Arc` handle
    /// and copying every sequence per chunk.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first observed panicking job — but only
    /// after every submitted job has finished running, so borrowed data is
    /// never observed by a worker past this call's lifetime.
    #[allow(unsafe_code)] // one lifetime transmute, justified below.
    pub fn scatter_scoped<'env, R: Send + 'env>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> R + Send + 'env>>,
    ) -> Vec<R> {
        let submitted = jobs.len();
        let done: Arc<(Mutex<usize>, Condvar)> = Arc::new((Mutex::new(0), Condvar::new()));
        let (result_tx, result_rx) = channel();
        // Declared after `result_rx` so it drops (and therefore waits for
        // every outstanding job) *before* the receiver frees any buffered
        // `R` values during an unwind.
        let guard = ScopeGuard {
            done: Arc::clone(&done),
            submitted,
            queue: Arc::clone(&self.queue),
        };
        for (index, job) in jobs.into_iter().enumerate() {
            let tx = result_tx.clone();
            let done = Arc::clone(&done);
            let wrapper: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                // The submitter may already be unwinding; a dead channel
                // is fine then.
                let _ = tx.send((index, outcome));
                // Drop every capture that can reference `'env` *before*
                // signalling completion: once the counter says "done" the
                // submitting frame may return and invalidate the borrows.
                drop(tx);
                let (count, cvar) = &*done;
                *count.lock().expect("scoped counter poisoned") += 1;
                cvar.notify_all();
            });
            // SAFETY: the queue's `Job` type requires `'static`, but this
            // wrapper only borrows data from the current stack frame
            // (`'env`). `guard` (declared above, dropped on every exit
            // path of this function including unwinds) blocks until the
            // completion counter reaches `submitted`, and each wrapper
            // increments that counter strictly after its last use of any
            // `'env` capture. Therefore no borrowed data is accessed
            // after this function returns, which is the invariant the
            // `'static` bound exists to enforce.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(
                    wrapper,
                )
            };
            self.queue.push(job);
        }
        drop(result_tx);

        let mut slots: Vec<Option<R>> = (0..submitted).map(|_| None).collect();
        let mut received = 0usize;
        while received < submitted {
            match result_rx.recv_timeout(Duration::from_millis(1)) {
                Ok((index, Ok(value))) => {
                    slots[index] = Some(value);
                    received += 1;
                }
                Ok((_, Err(payload))) => resume_unwind(payload),
                Err(RecvTimeoutError::Timeout) => {
                    // Help: run one pending pool job (possibly our own).
                    if let Some(job) = self.queue.try_pop() {
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("result senders outlive their jobs")
                }
            }
        }
        drop(guard);
        slots
            .into_iter()
            .map(|slot| slot.expect("every index reported"))
            .collect()
    }
}

/// Blocks in `Drop` until every job of one `scatter_scoped` call has
/// signalled completion — the linchpin of that method's safety argument.
/// Runs on both the normal and the unwinding exit path.
struct ScopeGuard {
    done: Arc<(Mutex<usize>, Condvar)>,
    submitted: usize,
    queue: Arc<Queue>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let (count, cvar) = &*self.done;
        loop {
            let finished = count.lock().expect("scoped counter poisoned");
            if *finished >= self.submitted {
                return;
            }
            // Keep helping while we wait so a pool saturated with nested
            // scatters cannot deadlock against this barrier.
            let (finished, _) = cvar
                .wait_timeout(finished, Duration::from_millis(1))
                .expect("scoped counter poisoned");
            if *finished >= self.submitted {
                return;
            }
            drop(finished);
            if let Some(job) = self.queue.try_pop() {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
        }
    }
}

/// Configuration for a [`WorkerPool`]; obtained via [`WorkerPool::builder`].
pub struct WorkerPoolBuilder {
    threads: Option<usize>,
}

impl WorkerPoolBuilder {
    /// Sets the worker count explicitly (clamped to at least one),
    /// overriding both the environment variable and the machine default.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Builds the pool. When no thread count was set, reads
    /// `CSD_POOL_THREADS` (positive integer) and falls back to the
    /// machine's available parallelism.
    pub fn build(self) -> WorkerPool {
        let threads = self
            .threads
            .or_else(|| crate::env::positive_usize("CSD_POOL_THREADS"))
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
        WorkerPool::new(threads)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.queue.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_preserves_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let results = pool.scatter(jobs);
        assert_eq!(results, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scatter_does_not_deadlock() {
        // One worker, two levels of scatter: only possible because the
        // submitting thread drains the queue while waiting.
        let pool = WorkerPool::new(1);
        let outer: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..3usize)
            .map(|i| {
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
                        .map(|j| Box::new(move || i * 10 + j) as Box<dyn FnOnce() -> usize + Send>)
                        .collect();
                    WorkerPool::global().scatter(inner).into_iter().sum()
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let sums = pool.scatter(outer);
        assert_eq!(sums, vec![6, 46, 86]);
    }

    #[test]
    fn workers_survive_panicking_jobs() {
        let pool = WorkerPool::new(2);
        let boom: Vec<Box<dyn FnOnce() + Send>> =
            vec![Box::new(|| panic!("job failure")) as Box<dyn FnOnce() + Send>];
        let outcome = catch_unwind(AssertUnwindSafe(|| pool.scatter(boom)));
        assert!(outcome.is_err(), "panic should reach the submitter");
        // The pool still works afterwards.
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 7u32) as Box<dyn FnOnce() -> u32 + Send>];
        assert_eq!(pool.scatter(jobs), vec![7]);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(WorkerPool::global().threads() >= 1);
    }

    #[test]
    fn empty_scatter_returns_empty() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(pool.scatter(jobs).is_empty());
    }

    #[test]
    fn scatter_scoped_borrows_from_the_stack() {
        let pool = WorkerPool::new(4);
        let data: Vec<usize> = (0..128).collect();
        let chunks: Vec<&[usize]> = data.chunks(16).collect();
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = chunks
            .iter()
            .map(|chunk| Box::new(move || chunk.iter().sum::<usize>()) as _)
            .collect();
        let sums = pool.scatter_scoped(jobs);
        let expected: Vec<usize> = chunks.iter().map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn scatter_scoped_preserves_order_and_nests() {
        let pool = WorkerPool::new(1);
        let base = [1usize, 2, 3];
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = (0..6usize)
            .map(|i| {
                let base = &base;
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() -> usize + Send + '_>> =
                        base.iter().map(|&b| Box::new(move || b * i) as _).collect();
                    WorkerPool::global().scatter_scoped(inner).into_iter().sum()
                }) as _
            })
            .collect();
        let results = pool.scatter_scoped(jobs);
        assert_eq!(results, (0..6usize).map(|i| 6 * i).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_scoped_waits_out_all_jobs_on_panic() {
        let pool = WorkerPool::new(2);
        let flags: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = flags
            .iter()
            .enumerate()
            .map(|(i, flag)| {
                Box::new(move || {
                    flag.store(1, Ordering::SeqCst);
                    if i == 0 {
                        panic!("scoped job failure");
                    }
                    i
                }) as _
            })
            .collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| pool.scatter_scoped(jobs)));
        assert!(outcome.is_err(), "panic should reach the submitter");
        // The scope barrier ran every job to completion before the panic
        // escaped, so every borrowed flag was touched exactly while valid.
        for flag in &flags {
            assert_eq!(flag.load(Ordering::SeqCst), 1);
        }
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 11u32) as Box<dyn FnOnce() -> u32 + Send>];
        assert_eq!(pool.scatter(jobs), vec![11]);
    }

    #[test]
    fn builder_sets_thread_count() {
        let pool = WorkerPool::builder().threads(3).build();
        assert_eq!(pool.threads(), 3);
        // Explicit zero still yields a working single-thread pool.
        let pool = WorkerPool::builder().threads(0).build();
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let pool = WorkerPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..50)
            .map(|_| {
                Box::new(|| {
                    COUNTER.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.scatter(jobs);
        assert_eq!(COUNTER.load(Ordering::SeqCst), 50);
    }
}
