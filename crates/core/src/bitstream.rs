//! The `v++` link step: from kernel sources to a device image.
//!
//! §IV: "v++ was utilized to compile the kernel objects into .xo files and
//! to link these objects with the target platform when generating the FPGA
//! binary (i.e., the .xclbin file)". [`link`] plays that role for the
//! simulated flow: it schedules every kernel of the five-kernel design
//! against its floorplan budget, verifies the whole design fits the target
//! device, and produces an [`Xclbin`] — the artifact the
//! [`HostProgram`](crate::host::HostProgram) programs the FPGA with.
//!
//! Because the design is "compiled once and can be updated at the
//! operator's discretion" (§III-A), the [`Xclbin`] captures *structure*
//! (timings, resources, dimensions) and never parameter values.

use csd_hls::{Clock, DeviceProfile, KernelEstimate, ResourceEstimate};
use serde::{Deserialize, Serialize};

use crate::kernels::{gates, hidden, preprocess, GateKind, LstmDims};
use crate::opt::OptimizationLevel;
use crate::timing::kernel_budget;

/// Linking failures.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkError {
    /// The composed design exceeds the device's capacity.
    DoesNotFit {
        /// Resources the design needs.
        needed: ResourceEstimate,
        /// Resources the device offers.
        available: ResourceEstimate,
    },
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::DoesNotFit { needed, available } => {
                write!(f, "design needs {needed} but the device offers {available}")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// One compiled kernel inside the image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelImage {
    /// Kernel instance name (e.g. `kernel_gates[Forget]`).
    pub name: String,
    /// Scheduling/resource results from the HLS flow.
    pub estimate: KernelEstimate,
}

/// The linked FPGA binary: structure only, no parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Xclbin {
    /// Target device.
    pub device: DeviceProfile,
    /// Kernel clock.
    pub clock: Clock,
    /// Optimization level the kernels were built at.
    pub level: OptimizationLevel,
    /// Model dimensions baked into the loop bounds.
    pub dims: LstmDims,
    /// The six kernel instances (preprocess, four gate CUs, hidden).
    pub kernels: Vec<KernelImage>,
}

impl Xclbin {
    /// Looks a kernel up by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelImage> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Total fabric resources across all kernel instances.
    pub fn total_resources(&self) -> ResourceEstimate {
        self.kernels
            .iter()
            .fold(ResourceEstimate::zero(), |acc, k| {
                acc + k.estimate.resources
            })
    }

    /// Utilization of the scarcest device resource (1.0 = full).
    pub fn utilization(&self) -> f64 {
        self.total_resources().utilization(&self.device.capacity)
    }

    /// The per-item time of a kernel in µs, using the steady-state
    /// interval for row-pipelined fixed-point gate CUs and the fill
    /// latency otherwise (see `timing::breakdown`).
    ///
    /// # Panics
    ///
    /// Panics if `name` is not in the image.
    pub fn per_item_us(&self, name: &str) -> f64 {
        let k = self
            .kernel(name)
            .unwrap_or_else(|| panic!("kernel {name} not in image"));
        let cycles = if self.level.is_fixed_point() && name.starts_with("kernel_gates") {
            k.estimate.timing.interval_cycles
        } else {
            k.estimate.timing.fill_cycles
        };
        self.clock.micros(cycles)
    }

    /// Serializes the image metadata to JSON.
    ///
    /// # Panics
    ///
    /// Never panics for a well-formed image.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("xclbin serialize")
    }
}

/// Links the five-kernel design for `device` at `level`.
///
/// # Errors
///
/// Returns [`LinkError::DoesNotFit`] when the scheduled design exceeds the
/// device capacity (each kernel is budget-clamped first, so this fires
/// only for devices smaller than the floorplan assumes).
pub fn link(
    level: OptimizationLevel,
    dims: &LstmDims,
    device: &DeviceProfile,
) -> Result<Xclbin, LinkError> {
    let clock = Clock::default_kernel_clock();
    let small = kernel_budget(device, 10);
    let gate_budget = kernel_budget(device, 20);
    let mut kernels = Vec::with_capacity(6);
    kernels.push(KernelImage {
        name: "kernel_preprocess".to_string(),
        estimate: preprocess::spec(level, dims).estimate(&small),
    });
    for kind in GateKind::ALL {
        kernels.push(KernelImage {
            name: format!("kernel_gates[{kind:?}]"),
            estimate: gates::spec(kind, level, dims).estimate(&gate_budget),
        });
    }
    kernels.push(KernelImage {
        name: "kernel_hidden_state".to_string(),
        estimate: hidden::spec(level, dims).estimate(&small),
    });

    let image = Xclbin {
        device: device.clone(),
        clock,
        level,
        dims: *dims,
        kernels,
    };
    let needed = image.total_resources();
    if !needed.fits_within(&device.capacity) {
        return Err(LinkError::DoesNotFit {
            needed,
            available: device.capacity,
        });
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_links_on_the_u200() {
        let image = link(
            OptimizationLevel::FixedPoint,
            &LstmDims::paper(),
            &DeviceProfile::alveo_u200(),
        )
        .expect("links");
        assert_eq!(image.kernels.len(), 6);
        assert!(image.utilization() <= 1.0);
        assert!(image.kernel("kernel_preprocess").is_some());
        assert!(image.kernel("kernel_gates[Forget]").is_some());
    }

    #[test]
    fn design_also_fits_the_smartssd_fabric() {
        // The SmartSSD's KU15P is ~3.5× smaller than the u200; the design
        // still links (the per-kernel budgets clamp unrolling), it is just
        // slower.
        let dims = LstmDims::paper();
        let smart = link(
            OptimizationLevel::FixedPoint,
            &dims,
            &DeviceProfile::kintex_ku15p(),
        )
        .expect("links on KU15P");
        let u200 = link(
            OptimizationLevel::FixedPoint,
            &dims,
            &DeviceProfile::alveo_u200(),
        )
        .expect("links on u200");
        let smart_gates = smart.per_item_us("kernel_gates[Input]");
        let u200_gates = u200.per_item_us("kernel_gates[Input]");
        assert!(
            smart_gates >= u200_gates,
            "smaller fabric cannot be faster: {smart_gates} vs {u200_gates}"
        );
    }

    #[test]
    fn tiny_device_fails_to_link() {
        let tiny = DeviceProfile {
            name: "toy".to_string(),
            capacity: ResourceEstimate {
                dsp: 8,
                lut: 2_000,
                ff: 4_000,
                bram: 4,
            },
            ddr_banks: 1,
        };
        let err = link(OptimizationLevel::FixedPoint, &LstmDims::paper(), &tiny)
            .expect_err("must not fit");
        let LinkError::DoesNotFit { needed, available } = err.clone();
        assert!(!needed.fits_within(&available));
        assert!(err.to_string().contains("device offers"));
    }

    #[test]
    fn image_timings_match_the_breakdown() {
        let dims = LstmDims::paper();
        for level in OptimizationLevel::ALL {
            let image = link(level, &dims, &DeviceProfile::alveo_u200()).expect("links");
            let b = crate::timing::breakdown(level, &dims);
            assert!((image.per_item_us("kernel_preprocess") - b.preprocess_us).abs() < 1e-9);
            assert!((image.per_item_us("kernel_hidden_state") - b.hidden_us).abs() < 1e-9);
            let worst_gate = GateKind::ALL
                .iter()
                .map(|k| image.per_item_us(&format!("kernel_gates[{k:?}]")))
                .fold(0.0f64, f64::max);
            assert!((worst_gate - b.gates_us).abs() < 1e-9, "{level}");
        }
    }

    #[test]
    fn json_roundtrip() {
        let image = link(
            OptimizationLevel::IiOptimized,
            &LstmDims::paper(),
            &DeviceProfile::alveo_u200(),
        )
        .expect("links");
        let parsed: Xclbin = serde_json::from_str(&image.to_json()).expect("parse");
        assert_eq!(parsed, image);
    }
}
