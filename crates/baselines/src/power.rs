//! Baseline device power attribution for the energy comparison.
//!
//! The paper motivates CSDs partly on energy ("decreases energy
//! consumption under heavy workloads", §I) but reports no figures. These
//! constants let the `exp_energy` extension quantify energy *per
//! inference item* as `device power × per-item time`, the attribution
//! convention used in most accelerator papers.

use serde::{Deserialize, Serialize};

/// Power draw attributed to a baseline device while serving the
/// inference workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DevicePower {
    /// Human-readable device name.
    pub name: &'static str,
    /// Watts drawn while the workload runs.
    pub busy_w: f64,
}

impl DevicePower {
    /// Intel Xeon Silver 4114 (the paper's host CPU): 85 W TDP; a
    /// single-stream inference loop keeps the package near TDP because
    /// the framework spins across cores.
    pub fn xeon_silver_4114() -> Self {
        Self {
            name: "Intel Xeon Silver 4114",
            busy_w: 85.0,
        }
    }

    /// NVIDIA A100 (PCIe, 250 W TGP): a tiny sequential model leaves the
    /// SMs mostly idle, so we attribute a measured-typical ~120 W rather
    /// than the full TGP — a deliberately *favourable* assumption for the
    /// GPU baseline.
    pub fn a100_light_load() -> Self {
        Self {
            name: "NVIDIA A100 (light load)",
            busy_w: 120.0,
        }
    }

    /// Energy in microjoules for a task taking `micros` µs.
    ///
    /// # Panics
    ///
    /// Panics on a negative duration.
    pub fn energy_uj(&self, micros: f64) -> f64 {
        assert!(micros >= 0.0, "negative duration");
        self.busy_w * micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_with_time() {
        let cpu = DevicePower::xeon_silver_4114();
        assert_eq!(cpu.energy_uj(0.0), 0.0);
        assert!((cpu.energy_uj(10.0) - 850.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_attribution_is_below_tgp() {
        let gpu = DevicePower::a100_light_load();
        assert!(gpu.busy_w < 250.0);
        assert!(gpu.busy_w > DevicePower::xeon_silver_4114().busy_w);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_duration_rejected() {
        let _ = DevicePower::a100_light_load().energy_uj(-1.0);
    }
}
