//! CPU and GPU baselines for the paper's hardware comparison (Table I).
//!
//! The paper compares its FPGA inference against "an Intel Xeon CPU with 13
//! GB of RAM \[and\] an NVIDIA A100 GPU with 40 GB of video RAM", reporting
//! per-item forward-pass times of 991.58 µs (CPU) and 741.35 µs (GPU) with
//! very wide 95% intervals (§IV, Table I). Neither device is available
//! here, and more fundamentally the *mechanism* behind those numbers is not
//! raw FLOPs — a 7.5K-parameter LSTM step is ~21 KFLOPs, nanoseconds on
//! either device — but **per-operation framework dispatch and kernel-launch
//! overhead**, which dominates tiny sequential models driven one timestep
//! at a time.
//!
//! This crate therefore models the baselines at that level:
//!
//! - [`cpu`] — a framework-dispatch model: per-op scheduling overhead ×
//!   ops per LSTM step, with log-normal jitter (OS scheduling, cache state).
//! - [`gpu`] — a kernel-launch model: CUDA launch + synchronization +
//!   PCIe transfer costs per step, same jitter family.
//! - [`native`] — *real* wall-clock measurement of this repository's own
//!   f64 LSTM forward pass on the host CPU, as a sanity floor showing the
//!   arithmetic itself is microseconds-scale.
//! - [`stats`] — mean / σ / 95% interval, matching the paper's convention
//!   (their interval is mean ± 1.96σ of the *distribution*, not the
//!   standard error — its width says so).
//!
//! Calibration targets (documented in DESIGN.md §5 and EXPERIMENTS.md):
//! CPU mean ≈ 991.6 µs, σ ≈ 395 µs; GPU mean ≈ 741.4 µs, σ ≈ 177 µs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod gpu;
pub mod native;
pub mod power;
pub mod stats;

pub use cpu::CpuExecutionModel;
pub use gpu::GpuExecutionModel;
pub use native::measure_native_forward;
pub use power::DevicePower;
pub use stats::Summary;
