//! The framework-dispatch CPU execution model.
//!
//! On a Xeon running a deep-learning framework, one LSTM timestep of a
//! 7.5K-parameter model executes ~17 framework operations (embedding
//! lookup, four `W·[h,x]+b` matmuls with bias adds, gate activations,
//! state elementwise ops, bookkeeping). Each op pays graph-executor
//! dispatch — type checking, shape inference, memory planning, kernel
//! selection — that dwarfs its arithmetic at this scale. The model is:
//!
//! `t_item = base + ops_per_step × per_op_dispatch`, jittered log-normally
//! (scheduler preemption, cache/TLB state, frequency scaling), calibrated
//! so the distribution matches the paper's Table I row
//! (mean 991.58 µs, 95% interval 217.47–1765.69 ⇒ σ ≈ 395 µs).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::stats::Summary;

/// Per-item forward-pass time model for a framework-driven CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuExecutionModel {
    /// Fixed per-item overhead (session entry, input staging) in µs.
    pub base_us: f64,
    /// Framework ops dispatched per LSTM timestep.
    pub ops_per_step: u32,
    /// Mean dispatch cost per op in µs.
    pub per_op_dispatch_us: f64,
    /// Log-normal jitter parameter σ (0 = deterministic).
    pub jitter_sigma: f64,
}

impl CpuExecutionModel {
    /// The Table I calibration: Intel Xeon running an eager-mode framework.
    ///
    /// `515 + 17 × 28.03 ≈ 991.6 µs`; `jitter_sigma = 0.385` gives a
    /// distribution σ ≈ 395 µs.
    pub fn xeon_framework() -> Self {
        Self {
            base_us: 515.0,
            ops_per_step: 17,
            per_op_dispatch_us: 28.03,
            jitter_sigma: 0.385,
        }
    }

    /// A fused-kernel calibration: the same Xeon once the four gate
    /// matmuls are stacked into one `4H×Z` matvec and the elementwise
    /// work is fused, as the engine's software hot path does. Dispatch
    /// count drops from ~17 ops per timestep to ~6 (lookup, one biased
    /// matmul, two activation sweeps, state update, bookkeeping); the
    /// per-op cost and jitter regime are unchanged because they are
    /// properties of the framework, not the graph.
    pub fn xeon_fused() -> Self {
        Self {
            ops_per_step: 6,
            ..Self::xeon_framework()
        }
    }

    /// The deterministic mean per-item time in µs.
    pub fn mean_us(&self) -> f64 {
        self.base_us + self.ops_per_step as f64 * self.per_op_dispatch_us
    }

    /// Samples one per-item measurement in µs.
    ///
    /// Uses a mean-preserving log-normal: `mean × exp(σZ − σ²/2)`.
    pub fn sample_us(&self, rng: &mut ChaCha8Rng) -> f64 {
        let z = standard_normal(rng);
        self.mean_us() * (self.jitter_sigma * z - self.jitter_sigma.powi(2) / 2.0).exp()
    }

    /// Runs `n` simulated measurements and summarizes them.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn measure(&self, n: usize, seed: u64) -> Summary {
        assert!(n > 0, "need at least one measurement");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n).map(|_| self.sample_us(&mut rng)).collect();
        Summary::from_samples(&samples)
    }
}

impl Default for CpuExecutionModel {
    fn default() -> Self {
        Self::xeon_framework()
    }
}

/// Box–Muller standard normal from a seeded RNG.
pub(crate) fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_matches_table1() {
        let m = CpuExecutionModel::xeon_framework();
        assert!((m.mean_us() - 991.58).abs() < 1.0, "{}", m.mean_us());
    }

    #[test]
    fn measured_distribution_matches_paper_shape() {
        let m = CpuExecutionModel::xeon_framework();
        let s = m.measure(20_000, 42);
        // Mean within 2% of Table I.
        assert!((s.mean - 991.58).abs() / 991.58 < 0.02, "{s}");
        // σ in the right regime (paper ⇒ ~395 µs).
        assert!(s.std > 300.0 && s.std < 500.0, "{s}");
        // Interval brackets resemble Table I's 217–1766.
        assert!(s.ci_low < 350.0);
        assert!(s.ci_high > 1_500.0);
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let m = CpuExecutionModel {
            jitter_sigma: 0.0,
            ..CpuExecutionModel::xeon_framework()
        };
        let s = m.measure(100, 7);
        assert!(s.std < 1e-9);
        assert!((s.mean - m.mean_us()).abs() < 1e-9);
    }

    #[test]
    fn fused_dispatch_is_cheaper_but_not_free() {
        let fused = CpuExecutionModel::xeon_fused();
        let eager = CpuExecutionModel::xeon_framework();
        assert!(fused.mean_us() < eager.mean_us());
        // Fusion removes dispatch, not the fixed session overhead.
        assert!(fused.mean_us() > eager.base_us);
    }

    #[test]
    fn samples_are_positive() {
        let m = CpuExecutionModel::xeon_framework();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!(m.sample_us(&mut rng) > 0.0);
        }
    }

    #[test]
    fn measurement_is_seed_deterministic() {
        let m = CpuExecutionModel::xeon_framework();
        assert_eq!(m.measure(50, 9), m.measure(50, 9));
        assert_ne!(m.measure(50, 9).mean, m.measure(50, 10).mean);
    }
}
