//! Real wall-clock measurement of the native Rust forward pass.
//!
//! The execution models in [`crate::cpu`]/[`crate::gpu`] simulate
//! *framework-driven* baselines. This module measures the actual f64
//! forward pass of this repository's own LSTM on the host CPU — no
//! framework, no dispatch overhead — demonstrating the paper's underlying
//! point: the arithmetic of a 7.5K-parameter step costs microseconds or
//! less, so framework overhead is what the CSD offload eliminates.

use std::time::Instant;

use csd_nn::SequenceClassifier;

use crate::stats::Summary;

/// Measures the per-item (per-sequence-element) forward-pass time of
/// `model` over `sequence`, repeated `iters` times, in µs.
///
/// Returns wall-clock statistics of `total_forward_time / sequence_len`
/// per iteration. Results depend on the machine running the benchmark;
/// they serve as a floor, not a reproduction target.
///
/// # Panics
///
/// Panics if `iters == 0`, the sequence is empty, or a token is out of
/// vocabulary.
pub fn measure_native_forward(
    model: &SequenceClassifier,
    sequence: &[usize],
    iters: usize,
) -> Summary {
    assert!(iters > 0, "need at least one iteration");
    assert!(!sequence.is_empty(), "empty sequence");
    // Warm-up pass so lazy allocations and caches don't pollute sample 0.
    let mut sink = model.predict_proba(sequence);
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        sink += model.predict_proba(sequence);
        let elapsed = start.elapsed();
        samples.push(elapsed.as_secs_f64() * 1e6 / sequence.len() as f64);
    }
    // Keep the result observable so the optimizer cannot elide the loop.
    assert!(sink.is_finite());
    Summary::from_samples(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_nn::ModelConfig;

    #[test]
    fn native_forward_is_fast_and_positive() {
        let model = SequenceClassifier::new(ModelConfig::paper(), 3);
        let seq: Vec<usize> = (0..100).map(|i| i % 278).collect();
        let s = measure_native_forward(&model, &seq, 10);
        assert!(s.mean > 0.0);
        // Plain Rust per-item time sits far below the framework baselines
        // even in debug builds.
        assert!(s.mean < 991.0, "native mean {} µs", s.mean);
        assert_eq!(s.n, 10);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_rejected() {
        let model = SequenceClassifier::new(ModelConfig::tiny(4), 0);
        let _ = measure_native_forward(&model, &[], 1);
    }
}
