//! Summary statistics in the paper's reporting convention.

use serde::{Deserialize, Serialize};

/// Mean, standard deviation, and the 95% interval of a sample.
///
/// The paper's Table I intervals are symmetric about the mean with width
/// ≈ ±1.96σ of the *sample distribution* (991.58 ∓ 774.11 for σ ≈ 395),
/// i.e. a normal-approximation tolerance interval rather than a standard
/// error of the mean; [`Summary::from_samples`] reproduces that convention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample mean (µs in this crate's usage).
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std: f64,
    /// Lower edge of the 95% interval, clamped at 0.
    pub ci_low: f64,
    /// Upper edge of the 95% interval.
    pub ci_high: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "no samples");
        assert!(samples.iter().all(|s| s.is_finite()), "non-finite sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std = if n > 1 {
            (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        Self {
            mean,
            std,
            ci_low: (mean - 1.96 * std).max(0.0),
            ci_high: mean + 1.96 * std,
            n,
        }
    }

    /// The interval half-width (`1.96σ`).
    pub fn half_width(&self) -> f64 {
        1.96 * self.std
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.5} µs (95% CI {:.5} – {:.5}, n = {})",
            self.mean, self.ci_low, self.ci_high, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample() {
        let s = Summary::from_samples(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!((s.ci_low, s.ci_high), (5.0, 5.0));
    }

    #[test]
    fn hand_computed() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert!((s.ci_high - (2.0 + 1.96)).abs() < 1e-12);
        assert!((s.ci_low - 0.04).abs() < 1e-12);
    }

    #[test]
    fn ci_clamped_at_zero() {
        let s = Summary::from_samples(&[1.0, 10.0]);
        assert_eq!(s.ci_low, 0.0);
    }

    #[test]
    fn single_sample_degenerates() {
        let s = Summary::from_samples(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn paper_interval_convention_matches_table1() {
        // Reconstruct the paper's CPU row: mean 991.57750, CI half-width
        // 774.11 ⇒ σ ≈ 394.95. A synthetic sample with that σ reproduces
        // the interval.
        let sigma: f64 = 774.11173 / 1.96;
        assert!((sigma - 394.955).abs() < 0.01);
    }

    #[test]
    fn display_contains_ci() {
        let s = Summary::from_samples(&[1.0, 2.0]);
        assert!(s.to_string().contains("95% CI"));
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_rejected() {
        let _ = Summary::from_samples(&[]);
    }
}
