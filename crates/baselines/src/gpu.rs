//! The kernel-launch GPU execution model.
//!
//! An A100 finishes the arithmetic of one 7.5K-parameter LSTM step in well
//! under a microsecond — but a framework driving the step eagerly pays, per
//! timestep: a dozen-plus CUDA kernel launches (gates, elementwise state
//! math, activation kernels), stream synchronization to read back the
//! hidden state, and PCIe traffic for the per-item input. These overheads
//! are why the paper's GPU row (741.35 µs) is only modestly better than its
//! CPU row, and why the sequential dependency of LSTMs (each step needs
//! `h_{t−1}`) prevents batching them away — the paper's §III-A argument
//! for why "GPUs ... may struggle with the sequential processing
//! requirements of LSTMs".

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::cpu::standard_normal;
use crate::stats::Summary;

/// Per-item forward-pass time model for a framework-driven GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuExecutionModel {
    /// CUDA kernel launches per LSTM timestep.
    pub launches_per_step: u32,
    /// Mean cost per launch (driver + runtime) in µs.
    pub launch_overhead_us: f64,
    /// Host↔device transfer + synchronization cost per item in µs.
    pub transfer_sync_us: f64,
    /// Log-normal jitter parameter σ.
    pub jitter_sigma: f64,
}

impl GpuExecutionModel {
    /// The Table I calibration: NVIDIA A100 under an eager framework.
    ///
    /// `14 × 8.0 + 629.4 ≈ 741.4 µs`; `jitter_sigma = 0.236` gives
    /// σ ≈ 177 µs (the paper's interval 394.45–1088.25 ⇒ ±346.9).
    pub fn a100_framework() -> Self {
        Self {
            launches_per_step: 14,
            launch_overhead_us: 8.0,
            transfer_sync_us: 629.35,
            jitter_sigma: 0.236,
        }
    }

    /// The deterministic mean per-item time in µs.
    pub fn mean_us(&self) -> f64 {
        self.launches_per_step as f64 * self.launch_overhead_us + self.transfer_sync_us
    }

    /// Samples one per-item measurement in µs (mean-preserving log-normal).
    pub fn sample_us(&self, rng: &mut ChaCha8Rng) -> f64 {
        let z = standard_normal(rng);
        self.mean_us() * (self.jitter_sigma * z - self.jitter_sigma.powi(2) / 2.0).exp()
    }

    /// Runs `n` simulated measurements and summarizes them.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn measure(&self, n: usize, seed: u64) -> Summary {
        assert!(n > 0, "need at least one measurement");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n).map(|_| self.sample_us(&mut rng)).collect();
        Summary::from_samples(&samples)
    }
}

impl Default for GpuExecutionModel {
    fn default() -> Self {
        Self::a100_framework()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuExecutionModel;

    #[test]
    fn mean_matches_table1() {
        let m = GpuExecutionModel::a100_framework();
        assert!((m.mean_us() - 741.35).abs() < 1.0, "{}", m.mean_us());
    }

    #[test]
    fn gpu_beats_cpu_but_not_by_much() {
        // Table I's qualitative story: GPU < CPU, same order of magnitude.
        let gpu = GpuExecutionModel::a100_framework().mean_us();
        let cpu = CpuExecutionModel::xeon_framework().mean_us();
        assert!(gpu < cpu);
        assert!(cpu / gpu < 2.0);
    }

    #[test]
    fn measured_distribution_matches_paper_shape() {
        let m = GpuExecutionModel::a100_framework();
        let s = m.measure(20_000, 11);
        assert!((s.mean - 741.35).abs() / 741.35 < 0.02, "{s}");
        assert!(s.std > 140.0 && s.std < 220.0, "{s}");
        // Paper interval: 394–1088.
        assert!(s.ci_low > 250.0 && s.ci_low < 500.0, "{s}");
        assert!(s.ci_high > 1_000.0 && s.ci_high < 1_250.0, "{s}");
    }

    #[test]
    fn gpu_jitter_is_tighter_than_cpu() {
        // A dedicated accelerator shows less run-to-run variance than a
        // multiplexed CPU — visible in the paper's interval widths.
        let g = GpuExecutionModel::a100_framework().measure(5_000, 1);
        let c = CpuExecutionModel::xeon_framework().measure(5_000, 1);
        assert!(g.std / g.mean < c.std / c.mean);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = GpuExecutionModel::a100_framework();
        assert_eq!(m.measure(64, 5), m.measure(64, 5));
    }
}
