//! Property-based tests for the baseline execution models and statistics.

use csd_baselines::{CpuExecutionModel, DevicePower, GpuExecutionModel, Summary};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    /// Summary invariants: mean within [min, max], CI brackets the mean,
    /// ci_low never negative.
    #[test]
    fn summary_invariants(samples in prop::collection::vec(0.01f64..10_000.0, 1..200)) {
        let s = Summary::from_samples(&samples);
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(s.mean >= min - 1e-9 && s.mean <= max + 1e-9);
        prop_assert!(s.ci_low <= s.mean && s.mean <= s.ci_high);
        prop_assert!(s.ci_low >= 0.0);
        prop_assert!((s.half_width() - 1.96 * s.std).abs() < 1e-12);
        prop_assert_eq!(s.n, samples.len());
    }

    /// The CPU model's sample mean converges to its configured mean, and
    /// every sample is positive, for any seed.
    #[test]
    fn cpu_model_mean_preserving(seed in any::<u64>()) {
        let m = CpuExecutionModel::xeon_framework();
        let s = m.measure(4_000, seed);
        prop_assert!((s.mean - m.mean_us()).abs() / m.mean_us() < 0.05, "{s}");
        prop_assert!(s.ci_low >= 0.0);
    }

    /// GPU model likewise, and it stays below the CPU in expectation.
    #[test]
    fn gpu_model_mean_preserving(seed in any::<u64>()) {
        let g = GpuExecutionModel::a100_framework();
        let s = g.measure(4_000, seed);
        prop_assert!((s.mean - g.mean_us()).abs() / g.mean_us() < 0.05, "{s}");
        prop_assert!(s.mean < CpuExecutionModel::xeon_framework().mean_us());
    }

    /// Individual samples are always finite and positive.
    #[test]
    fn samples_positive(seed in any::<u64>(), n in 1usize..200) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cpu = CpuExecutionModel::xeon_framework();
        let gpu = GpuExecutionModel::a100_framework();
        for _ in 0..n {
            let c = cpu.sample_us(&mut rng);
            let g = gpu.sample_us(&mut rng);
            prop_assert!(c.is_finite() && c > 0.0);
            prop_assert!(g.is_finite() && g > 0.0);
        }
    }

    /// Energy attribution is linear and nonnegative.
    #[test]
    fn energy_linear(us in 0.0f64..100_000.0) {
        for p in [DevicePower::xeon_silver_4114(), DevicePower::a100_light_load()] {
            let e = p.energy_uj(us);
            prop_assert!(e >= 0.0);
            prop_assert!((p.energy_uj(2.0 * us) - 2.0 * e).abs() < 1e-6 * (1.0 + e));
        }
    }
}
