//! Property-based tests for the training substrate: the invariants of the
//! LSTM forward pass, BPTT correctness on random configurations, and the
//! export format.

use csd_nn::{
    bce_loss, bce_loss_grad, Activation, LstmCell, LstmLayer, ModelConfig, ModelWeights,
    SequenceClassifier,
};
use csd_tensor::Vector;
use proptest::prelude::*;

fn arb_inputs(dim: usize, len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-2.0f64..2.0, dim..=dim), 1..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// |h_t| < 1 always: h = σ(·) ∗ g(C) with σ < 1 and |g| < 1.
    #[test]
    fn hidden_state_strictly_bounded(
        seed in any::<u64>(),
        xs in arb_inputs(3, 30),
        tanh in any::<bool>(),
    ) {
        let act = if tanh { Activation::Tanh } else { Activation::Softsign };
        let cell = LstmCell::new(3, 5, act, seed);
        let layer = LstmLayer::new(cell);
        let inputs: Vec<Vector<f64>> = xs.iter().map(|v| Vector::from(v.clone())).collect();
        let (state, _) = layer.forward(&inputs);
        prop_assert!(state.h.iter().all(|&v| v.abs() < 1.0));
    }

    /// |C_t| grows at most linearly in t.
    #[test]
    fn cell_state_linear_growth(seed in any::<u64>(), xs in arb_inputs(2, 40)) {
        let cell = LstmCell::new(2, 4, Activation::Softsign, seed);
        let layer = LstmLayer::new(cell);
        let inputs: Vec<Vector<f64>> = xs.iter().map(|v| Vector::from(v.clone())).collect();
        let (state, _) = layer.forward(&inputs);
        let t = inputs.len() as f64;
        prop_assert!(state.c.iter().all(|&v| v.abs() <= t + 1e-9));
    }

    /// BPTT gradients match the numerical gradient on a random coordinate
    /// of a random cell — the strongest single invariant in the crate.
    #[test]
    fn bptt_gradcheck_random_coordinate(
        seed in any::<u64>(),
        xs in arb_inputs(3, 8),
        gate in 0usize..4,
        coord in any::<(u8, u8)>(),
    ) {
        let cell = LstmCell::new(3, 4, Activation::Softsign, seed);
        let layer = LstmLayer::new(cell.clone());
        let inputs: Vec<Vector<f64>> = xs.iter().map(|v| Vector::from(v.clone())).collect();
        let (_, caches) = layer.forward(&inputs);
        let mut grads = cell.zero_grads();
        layer.backward(&caches, &Vector::from(vec![1.0; 4]), &mut grads);

        let (r, c) = (coord.0 as usize % 4, coord.1 as usize % 7);
        let eps = 1e-6;
        let loss = |cell: &LstmCell| {
            let (s, _) = LstmLayer::new(cell.clone()).forward(&inputs);
            s.h.iter().sum::<f64>()
        };
        let mut up = cell.clone();
        // Access via the export path: perturb through a model round-trip is
        // overkill here; rebuild with modified weight via ModelWeights is
        // heavyweight, so use the crate-internal accessor indirectly:
        // flatten through a tiny model is not available for a bare cell —
        // instead perturb by constructing and applying a one-hot gradient.
        let mut onehot = cell.zero_grads();
        *onehot.w[gate].get_mut(r, c) = -1.0; // apply_gradients subtracts
        up.apply_gradients(&onehot, eps);
        let mut down = cell.clone();
        let mut onehot2 = cell.zero_grads();
        *onehot2.w[gate].get_mut(r, c) = 1.0;
        down.apply_gradients(&onehot2, eps);
        let numeric = (loss(&up) - loss(&down)) / (2.0 * eps);
        prop_assert!(
            (numeric - grads.w[gate].get(r, c)).abs() < 1e-4,
            "gate {gate} ({r},{c}): {numeric} vs {}",
            grads.w[gate].get(r, c)
        );
    }

    /// BCE gradient is the derivative of BCE loss for any logit/target.
    #[test]
    fn bce_grad_is_derivative(z in -30.0f64..30.0, y in 0.0f64..=1.0) {
        let eps = 1e-6;
        let numeric = (bce_loss(z + eps, y) - bce_loss(z - eps, y)) / (2.0 * eps);
        prop_assert!((numeric - bce_loss_grad(z, y)).abs() < 1e-5);
    }

    /// Export → text → import round-trips any random model exactly.
    #[test]
    fn weight_text_roundtrip(seed in any::<u64>()) {
        let model = SequenceClassifier::new(ModelConfig::tiny(11), seed);
        let w = ModelWeights::from_model(&model);
        let parsed = ModelWeights::from_text(&w.to_text()).expect("parse");
        prop_assert_eq!(w, parsed);
    }

    /// flatten → assign round-trips parameters and behaviour.
    #[test]
    fn flatten_assign_roundtrip(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let a = SequenceClassifier::new(ModelConfig::tiny(9), seed_a);
        let mut b = SequenceClassifier::new(ModelConfig::tiny(9), seed_b);
        b.assign_params(&a.flatten_params());
        let seq = [0usize, 4, 8, 2, 6];
        prop_assert_eq!(a.predict_proba(&seq), b.predict_proba(&seq));
    }
}
