//! The fully-connected classification head.
//!
//! The paper's concluding layer holds "32 weights and one bias term"
//! (§IV, Testing environment) and maps the final hidden state `h_T` to a
//! binary ransomware/benign decision inside `kernel_hidden_state`.

use csd_tensor::{Initializer, Vector};
use serde::{Deserialize, Serialize};

use crate::activation::Activation;

/// A single-output dense layer with sigmoid activation:
/// `p = σ(w · h + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    w: Vector<f64>,
    b: f64,
}

impl Dense {
    /// Creates a Xavier-initialized head for `input_dim` features.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim == 0`.
    pub fn new(input_dim: usize, seed: u64) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        Self {
            w: Initializer::XavierUniform.vector(input_dim, seed),
            b: 0.0,
        }
    }

    /// Builds a head from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `w` is empty.
    pub fn from_parts(w: Vector<f64>, b: f64) -> Self {
        assert!(!w.is_empty(), "weights must be non-empty");
        Self { w, b }
    }

    /// The weight vector.
    pub fn weights(&self) -> &Vector<f64> {
        &self.w
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.b
    }

    /// Number of trainable parameters (`input_dim + 1`).
    pub fn num_parameters(&self) -> usize {
        self.w.len() + 1
    }

    /// The pre-activation logit `w · h + b`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn logit(&self, h: &Vector<f64>) -> f64 {
        self.w.dot(h) + self.b
    }

    /// The sigmoid probability `σ(w · h + b)`.
    pub fn forward(&self, h: &Vector<f64>) -> f64 {
        Activation::Sigmoid.apply(self.logit(h))
    }

    /// Backward pass given `d_logit = ∂L/∂(w·h+b)`; accumulates into
    /// `(grad_w, grad_b)` and returns `∂L/∂h`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn backward(
        &self,
        h: &Vector<f64>,
        d_logit: f64,
        grad_w: &mut Vector<f64>,
        grad_b: &mut f64,
    ) -> Vector<f64> {
        assert_eq!(h.len(), self.w.len(), "dimension mismatch");
        for j in 0..h.len() {
            grad_w[j] += d_logit * h[j];
        }
        *grad_b += d_logit;
        self.w.scale(d_logit)
    }

    /// Applies `params -= lr * grads`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply_gradients(&mut self, grad_w: &Vector<f64>, grad_b: f64, lr: f64) {
        self.w = self.w.add(&grad_w.scale(-lr));
        self.b -= lr * grad_b;
    }

    /// Overwrites the parameters (used by weight import).
    pub(crate) fn set_parts(&mut self, w: Vector<f64>, b: f64) {
        self.w = w;
        self.b = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameter_count() {
        assert_eq!(Dense::new(32, 0).num_parameters(), 33);
    }

    #[test]
    fn forward_known_values() {
        let d = Dense::from_parts(Vector::from(vec![1.0, -1.0]), 0.5);
        let h = Vector::from(vec![2.0, 1.5]);
        assert!((d.logit(&h) - 1.0).abs() < 1e-12);
        assert!((d.forward(&h) - 1.0 / (1.0 + (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn backward_matches_numerical() {
        let d = Dense::from_parts(Vector::from(vec![0.3, -0.7, 0.2]), 0.1);
        let h = Vector::from(vec![1.0, 2.0, -0.5]);
        let mut gw = Vector::zeros(3);
        let mut gb = 0.0;
        let d_h = d.backward(&h, 1.0, &mut gw, &mut gb);
        // d(logit)/dw_j = h_j, d(logit)/db = 1, d(logit)/dh_j = w_j.
        assert_eq!(gw.as_slice(), h.as_slice());
        assert_eq!(gb, 1.0);
        assert_eq!(d_h.as_slice(), d.weights().as_slice());
    }

    #[test]
    fn gradient_step_reduces_logit() {
        let mut d = Dense::from_parts(Vector::from(vec![1.0]), 0.0);
        let h = Vector::from(vec![1.0]);
        let before = d.logit(&h);
        let mut gw = Vector::zeros(1);
        let mut gb = 0.0;
        d.backward(&h, 1.0, &mut gw, &mut gb);
        d.apply_gradients(&gw, gb, 0.1);
        assert!(d.logit(&h) < before);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_weights_rejected() {
        let _ = Dense::from_parts(Vector::from(Vec::<f64>::new()), 0.0);
    }
}
