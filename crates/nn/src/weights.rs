//! Weight export/import in the paper's host-program format.
//!
//! §III-A: "the associated weights and biases are extracted and written to a
//! text file. For example, TensorFlow allows one to extract parameters via
//! the `get_weights()` function, which returns three Numpy arrays consisting
//! of the weights W for `x_t`, the W for `h_{t−1}`, and the related b terms".
//!
//! [`ModelWeights`] captures exactly that layout — a TensorFlow-convention
//! `kernel` (`X × 4H`, gate order `i f c o`), `recurrent` (`H × 4H`), and
//! `bias` (`4H`) for the LSTM, plus the embedding table and the
//! fully-connected head — and serializes it to the line-oriented text file
//! the host program ingests (and to JSON).

use std::fmt;
use std::str::FromStr;

use csd_tensor::{Matrix, Vector};
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::dense::Dense;
use crate::embedding::Embedding;
use crate::lstm::LstmCell;
use crate::model::{ModelConfig, SequenceClassifier};

/// Errors produced when parsing a weight file.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightsError {
    /// The file did not start with the expected magic line.
    BadMagic,
    /// A header field was missing or malformed.
    BadHeader(String),
    /// A section had the wrong number of values.
    BadSection {
        /// Section name.
        section: String,
        /// Values expected.
        expected: usize,
        /// Values found.
        found: usize,
    },
    /// A numeric token failed to parse.
    BadNumber(String),
}

impl fmt::Display for WeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightsError::BadMagic => write!(f, "missing csd-weights-v1 magic line"),
            WeightsError::BadHeader(h) => write!(f, "bad header field: {h}"),
            WeightsError::BadSection {
                section,
                expected,
                found,
            } => write!(
                f,
                "section [{section}] expected {expected} values, found {found}"
            ),
            WeightsError::BadNumber(tok) => write!(f, "unparsable number: {tok}"),
        }
    }
}

impl std::error::Error for WeightsError {}

/// The exported parameter set of a trained [`SequenceClassifier`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelWeights {
    /// Architecture the weights belong to.
    pub config: ModelConfig,
    /// Flat row-major `vocab × embed_dim` embedding table.
    pub embedding: Vec<f64>,
    /// TensorFlow-convention kernel: flat row-major `embed_dim × 4·hidden`,
    /// gate column order `i f c o` (the "W for x_t" array).
    pub lstm_kernel: Vec<f64>,
    /// TensorFlow-convention recurrent kernel: flat row-major
    /// `hidden × 4·hidden` (the "W for h_{t−1}" array).
    pub lstm_recurrent: Vec<f64>,
    /// LSTM bias, length `4·hidden`, gate order `i f c o`.
    pub lstm_bias: Vec<f64>,
    /// Fully-connected head weights, length `hidden`.
    pub fc_weights: Vec<f64>,
    /// Fully-connected head bias.
    pub fc_bias: f64,
}

impl ModelWeights {
    /// Extracts the weights of a trained model (the `get_weights()` step).
    pub fn from_model(model: &SequenceClassifier) -> Self {
        let cfg = *model.config();
        let (x, h) = (cfg.embed_dim, cfg.hidden);
        let cell = model.lstm_cell();
        let mut kernel = vec![0.0; x * 4 * h];
        let mut recurrent = vec![0.0; h * 4 * h];
        let mut bias = vec![0.0; 4 * h];
        // Our cell stores W_g as H × (H+X) over [h | x]; TF stores
        // kernel[x, g·H + j] and recurrent[h, g·H + j].
        for g in 0..4 {
            let w = cell.weight(g);
            for j in 0..h {
                for hc in 0..h {
                    recurrent[hc * 4 * h + g * h + j] = w.get(j, hc);
                }
                for xc in 0..x {
                    kernel[xc * 4 * h + g * h + j] = w.get(j, h + xc);
                }
                bias[g * h + j] = cell.bias(g)[j];
            }
        }
        Self {
            config: cfg,
            embedding: model.embedding().table().to_f64_flat(),
            lstm_kernel: kernel,
            lstm_recurrent: recurrent,
            lstm_bias: bias,
            fc_weights: model.head().weights().to_f64_vec(),
            fc_bias: model.head().bias(),
        }
    }

    /// Reconstructs a model from the exported weights (the host-program
    /// ingest step, inverted for testing parity).
    ///
    /// # Panics
    ///
    /// Panics if array lengths disagree with `config`.
    pub fn to_model(&self) -> SequenceClassifier {
        let cfg = self.config;
        let (v, x, h) = (cfg.vocab, cfg.embed_dim, cfg.hidden);
        assert_eq!(self.embedding.len(), v * x, "embedding size mismatch");
        assert_eq!(self.lstm_kernel.len(), x * 4 * h, "kernel size mismatch");
        assert_eq!(
            self.lstm_recurrent.len(),
            h * 4 * h,
            "recurrent size mismatch"
        );
        assert_eq!(self.lstm_bias.len(), 4 * h, "bias size mismatch");
        assert_eq!(self.fc_weights.len(), h, "fc size mismatch");

        let embedding = Embedding::from_table(Matrix::from_f64_flat(v, x, &self.embedding));
        let mut cell = LstmCell::new(x, h, cfg.cell_activation, 0);
        for g in 0..4 {
            let w = cell.weight_mut(g);
            for j in 0..h {
                for hc in 0..h {
                    *w.get_mut(j, hc) = self.lstm_recurrent[hc * 4 * h + g * h + j];
                }
                for xc in 0..x {
                    *w.get_mut(j, h + xc) = self.lstm_kernel[xc * 4 * h + g * h + j];
                }
            }
            for j in 0..h {
                cell.bias_mut(g)[j] = self.lstm_bias[g * h + j];
            }
        }
        let head = Dense::from_parts(Vector::from(self.fc_weights.clone()), self.fc_bias);
        SequenceClassifier::from_parts(cfg, embedding, cell, head)
    }

    /// Total parameter count across all arrays.
    pub fn num_parameters(&self) -> usize {
        self.embedding.len()
            + self.lstm_kernel.len()
            + self.lstm_recurrent.len()
            + self.lstm_bias.len()
            + self.fc_weights.len()
            + 1
    }

    /// Serializes to the line-oriented text format the host program reads.
    pub fn to_text(&self) -> String {
        let act = match self.config.cell_activation {
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Softsign => "softsign",
        };
        let mut out = String::new();
        out.push_str("csd-weights-v1\n");
        out.push_str(&format!("vocab {}\n", self.config.vocab));
        out.push_str(&format!("embed_dim {}\n", self.config.embed_dim));
        out.push_str(&format!("hidden {}\n", self.config.hidden));
        out.push_str(&format!("activation {act}\n"));
        for (name, values) in [
            ("embedding", &self.embedding),
            ("lstm_kernel", &self.lstm_kernel),
            ("lstm_recurrent", &self.lstm_recurrent),
            ("lstm_bias", &self.lstm_bias),
            ("fc_weights", &self.fc_weights),
        ] {
            out.push_str(&format!("[{name}]\n"));
            for chunk in values.chunks(8) {
                let line: Vec<String> = chunk.iter().map(|v| format!("{v:.17e}")).collect();
                out.push_str(&line.join(" "));
                out.push('\n');
            }
        }
        out.push_str("[fc_bias]\n");
        out.push_str(&format!("{:.17e}\n", self.fc_bias));
        out
    }

    /// Parses the text format produced by [`Self::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`WeightsError`] describing the first malformed element.
    pub fn from_text(text: &str) -> Result<Self, WeightsError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        if lines.next().map(str::trim) != Some("csd-weights-v1") {
            return Err(WeightsError::BadMagic);
        }
        let header = |name: &str, line: Option<&str>| -> Result<String, WeightsError> {
            let line = line.ok_or_else(|| WeightsError::BadHeader(name.to_string()))?;
            let mut parts = line.split_whitespace();
            if parts.next() != Some(name) {
                return Err(WeightsError::BadHeader(name.to_string()));
            }
            parts
                .next()
                .map(str::to_string)
                .ok_or_else(|| WeightsError::BadHeader(name.to_string()))
        };
        let vocab = parse_num::<usize>(&header("vocab", lines.next())?)?;
        let embed_dim = parse_num::<usize>(&header("embed_dim", lines.next())?)?;
        let hidden = parse_num::<usize>(&header("hidden", lines.next())?)?;
        let act = match header("activation", lines.next())?.as_str() {
            "sigmoid" => Activation::Sigmoid,
            "tanh" => Activation::Tanh,
            "softsign" => Activation::Softsign,
            other => return Err(WeightsError::BadHeader(format!("activation {other}"))),
        };
        let config = ModelConfig {
            vocab,
            embed_dim,
            hidden,
            cell_activation: act,
        };

        // Collect remaining tokens per section.
        let mut sections: Vec<(String, Vec<f64>)> = Vec::new();
        for line in lines {
            let line = line.trim();
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                sections.push((name.to_string(), Vec::new()));
            } else {
                let Some(last) = sections.last_mut() else {
                    return Err(WeightsError::BadHeader(line.to_string()));
                };
                for tok in line.split_whitespace() {
                    last.1.push(parse_num::<f64>(tok)?);
                }
            }
        }
        let take = |name: &str, expected: usize| -> Result<Vec<f64>, WeightsError> {
            let (_, values) = sections.iter().find(|(n, _)| n == name).ok_or_else(|| {
                WeightsError::BadSection {
                    section: name.to_string(),
                    expected,
                    found: 0,
                }
            })?;
            if values.len() != expected {
                return Err(WeightsError::BadSection {
                    section: name.to_string(),
                    expected,
                    found: values.len(),
                });
            }
            Ok(values.clone())
        };
        let weights = Self {
            config,
            embedding: take("embedding", vocab * embed_dim)?,
            lstm_kernel: take("lstm_kernel", embed_dim * 4 * hidden)?,
            lstm_recurrent: take("lstm_recurrent", hidden * 4 * hidden)?,
            lstm_bias: take("lstm_bias", 4 * hidden)?,
            fc_weights: take("fc_weights", hidden)?,
            fc_bias: take("fc_bias", 1)?[0],
        };
        Ok(weights)
    }

    /// Serializes to JSON.
    ///
    /// # Panics
    ///
    /// Never panics for valid weights (serialization of plain data).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("weights serialize")
    }

    /// Parses the JSON produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error message.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

fn parse_num<T: FromStr>(tok: &str) -> Result<T, WeightsError> {
    tok.parse()
        .map_err(|_| WeightsError::BadNumber(tok.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_ish_model() -> SequenceClassifier {
        // Fresh random model is fine: export/import must preserve it exactly.
        SequenceClassifier::new(ModelConfig::tiny(9), 123)
    }

    #[test]
    fn export_parameter_count_matches_paper_shapes() {
        let model = SequenceClassifier::new(ModelConfig::paper(), 0);
        let w = ModelWeights::from_model(&model);
        assert_eq!(w.embedding.len(), 2_224);
        assert_eq!(w.lstm_kernel.len(), 8 * 128);
        assert_eq!(w.lstm_recurrent.len(), 32 * 128);
        assert_eq!(w.lstm_bias.len(), 128);
        assert_eq!(w.num_parameters(), 7_505);
    }

    #[test]
    fn model_roundtrip_is_exact() {
        let model = trained_ish_model();
        let restored = ModelWeights::from_model(&model).to_model();
        assert_eq!(model.flatten_params(), restored.flatten_params());
        let seq = [0usize, 3, 8, 1, 2];
        assert_eq!(model.predict_proba(&seq), restored.predict_proba(&seq));
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let w = ModelWeights::from_model(&trained_ish_model());
        let text = w.to_text();
        let parsed = ModelWeights::from_text(&text).expect("parse");
        assert_eq!(w, parsed);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let w = ModelWeights::from_model(&trained_ish_model());
        let parsed = ModelWeights::from_json(&w.to_json()).expect("parse");
        assert_eq!(w, parsed);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            ModelWeights::from_text("nonsense"),
            Err(WeightsError::BadMagic)
        );
    }

    #[test]
    fn truncated_section_rejected() {
        let w = ModelWeights::from_model(&trained_ish_model());
        let mut text = w.to_text();
        // Drop the last line (part of [fc_bias]).
        text.truncate(text.trim_end().rfind('\n').expect("multi-line"));
        let err = ModelWeights::from_text(&text).unwrap_err();
        assert!(matches!(err, WeightsError::BadSection { .. }), "{err}");
    }

    #[test]
    fn bad_number_reported() {
        let w = ModelWeights::from_model(&trained_ish_model());
        let text = w
            .to_text()
            .replace("[fc_bias]\n", "[fc_bias]\nnot_a_number ");
        let err = ModelWeights::from_text(&text).unwrap_err();
        assert!(matches!(err, WeightsError::BadNumber(_)), "{err}");
        assert!(err.to_string().contains("not_a_number"));
    }

    #[test]
    fn gate_order_is_tensorflow_ifco() {
        // Poke one recurrent weight and check it lands in the right TF slot.
        let mut model = trained_ish_model();
        let h = model.config().hidden;
        let mut params = model.flatten_params();
        // Our canonical flat order: embedding | W_i | W_f | W_c | W_o | ...
        // W_f starts after embedding + one gate matrix.
        let emb = model.config().vocab * model.config().embed_dim;
        let z = h + model.config().embed_dim;
        let wf_start = emb + h * z;
        params[wf_start] = 0.5; // W_f[0, 0]: forget gate, row j=0, h-col 0.
        model.assign_params(&params);
        let w = ModelWeights::from_model(&model);
        // TF recurrent[h=0, gate=f(1)·H + j=0].
        assert_eq!(w.lstm_recurrent[h], 0.5);
    }
}
