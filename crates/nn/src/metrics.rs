//! Binary-classification metrics as reported in the paper's §IV:
//! accuracy, precision, recall, and F1.

use serde::{Deserialize, Serialize};

/// A 2×2 confusion matrix for the ransomware (positive) / benign (negative)
/// task.
///
/// # Example
///
/// ```rust
/// use csd_nn::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new();
/// cm.record(true, true);   // TP
/// cm.record(false, false); // TN
/// cm.record(false, true);  // FP
/// assert_eq!(cm.total(), 3);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    tp: u64,
    tn: u64,
    fp: u64,
    fn_: u64,
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `(actual, predicted)` outcome.
    pub fn record(&mut self, actual: bool, predicted: bool) {
        match (actual, predicted) {
            (true, true) => self.tp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fp += 1,
            (true, false) => self.fn_ += 1,
        }
    }

    /// Builds a matrix from parallel label/prediction slices.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths differ.
    pub fn from_predictions(actual: &[bool], predicted: &[bool]) -> Self {
        assert_eq!(actual.len(), predicted.len(), "length mismatch");
        let mut cm = Self::new();
        for (&a, &p) in actual.iter().zip(predicted) {
            cm.record(a, p);
        }
        cm
    }

    /// True positives.
    pub fn true_positives(&self) -> u64 {
        self.tp
    }

    /// True negatives.
    pub fn true_negatives(&self) -> u64 {
        self.tn
    }

    /// False positives.
    pub fn false_positives(&self) -> u64 {
        self.fp
    }

    /// False negatives.
    pub fn false_negatives(&self) -> u64 {
        self.fn_
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// `(TP + TN) / total`; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// `TP / (TP + FP)`; 0 when no positive predictions.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// `TP / (TP + FN)`; 0 when no positive labels.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Summarizes into a [`ClassificationReport`].
    pub fn report(&self) -> ClassificationReport {
        ClassificationReport {
            accuracy: self.accuracy(),
            precision: self.precision(),
            recall: self.recall(),
            f1: self.f1(),
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The four headline metrics the paper reports (§IV: 0.9833 / 0.9789 /
/// 0.9890 / 0.9840).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Fraction of correct predictions.
    pub accuracy: f64,
    /// Positive predictive value.
    pub precision: f64,
    /// True-positive rate.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl std::fmt::Display for ClassificationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "accuracy {:.4}, precision {:.4}, recall {:.4}, F1 {:.4}",
            self.accuracy, self.precision, self.recall, self.f1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let cm = ConfusionMatrix::from_predictions(&[true, false, true], &[true, false, true]);
        let r = cm.report();
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.f1, 1.0);
    }

    #[test]
    fn all_wrong_classifier() {
        let cm = ConfusionMatrix::from_predictions(&[true, false], &[false, true]);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.f1(), 0.0);
    }

    #[test]
    fn hand_computed_example() {
        // TP=8, FP=2, FN=1, TN=9.
        let mut cm = ConfusionMatrix::new();
        for _ in 0..8 {
            cm.record(true, true);
        }
        for _ in 0..2 {
            cm.record(false, true);
        }
        cm.record(true, false);
        for _ in 0..9 {
            cm.record(false, false);
        }
        assert!((cm.accuracy() - 17.0 / 20.0).abs() < 1e-12);
        assert!((cm.precision() - 0.8).abs() < 1e-12);
        assert!((cm.recall() - 8.0 / 9.0).abs() < 1e-12);
        let f1 = 2.0 * 0.8 * (8.0 / 9.0) / (0.8 + 8.0 / 9.0);
        assert!((cm.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let cm = ConfusionMatrix::new();
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
    }

    #[test]
    fn report_display() {
        let cm = ConfusionMatrix::from_predictions(&[true], &[true]);
        let s = cm.report().to_string();
        assert!(s.contains("accuracy 1.0000"));
    }

    #[test]
    fn paper_metrics_consistency() {
        // The paper's four numbers must be jointly achievable; find a
        // confusion matrix (scaled to the 29K dataset) that produces them.
        // Test split ~20% of 29K ≈ 5,800 with 46% positive ≈ 2,668 pos.
        let pos = 2668u64;
        let neg = 5800 - pos;
        let recall = 0.9890;
        let precision = 0.9789;
        let tp = (pos as f64 * recall).round() as u64;
        let fn_ = pos - tp;
        let fp = ((tp as f64 / precision) - tp as f64).round() as u64;
        let tn = neg - fp;
        let cm = ConfusionMatrix { tp, tn, fp, fn_ };
        assert!((cm.accuracy() - 0.9833).abs() < 0.002);
        assert!((cm.f1() - 0.9840).abs() < 0.002);
    }
}
