//! Floating-point activations and their derivatives for BPTT.

use serde::{Deserialize, Serialize};

/// Differentiable activation functions used by the offline model.
///
/// The paper trains with the standard `tanh` cell activation but deploys
/// with `softsign` on the FPGA (§III-D). Training directly with `softsign`
/// — supported here — removes that train/deploy mismatch, and the activation
/// ablation quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Logistic sigmoid `1 / (1 + e^{-x})` — the gate activation.
    Sigmoid,
    /// Hyperbolic tangent — the classical cell activation.
    Tanh,
    /// `x / (1 + |x|)` — the paper's FPGA-friendly replacement for `tanh`.
    #[default]
    Softsign,
}

impl Activation {
    /// Evaluates the activation at `x`.
    ///
    /// ```rust
    /// use csd_nn::Activation;
    /// assert_eq!(Activation::Softsign.apply(1.0), 0.5);
    /// assert_eq!(Activation::Sigmoid.apply(0.0), 0.5);
    /// ```
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Softsign => x / (1.0 + x.abs()),
        }
    }

    /// Derivative of the activation *with respect to its input*, expressed
    /// in terms of the input `x`.
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Tanh => 1.0 - x.tanh().powi(2),
            Activation::Softsign => {
                let d = 1.0 + x.abs();
                1.0 / (d * d)
            }
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)`, when that
    /// form exists; used on the cell-state path where only `C_t` is cached.
    ///
    /// For `softsign`, `y = x/(1+|x|)` gives `f'(x) = (1−|y|)²`.
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Softsign => (1.0 - y.abs()).powi(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACTS: [Activation; 3] = [Activation::Sigmoid, Activation::Tanh, Activation::Softsign];

    #[test]
    fn known_values() {
        assert_eq!(Activation::Sigmoid.apply(0.0), 0.5);
        assert_eq!(Activation::Tanh.apply(0.0), 0.0);
        assert_eq!(Activation::Softsign.apply(-1.0), -0.5);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let eps = 1e-6;
        for act in ACTS {
            for i in -20..=20 {
                let x = i as f64 * 0.25;
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn derivative_from_output_consistent() {
        for act in ACTS {
            for i in -20..=20 {
                let x = i as f64 * 0.25;
                let y = act.apply(x);
                assert!(
                    (act.derivative(x) - act.derivative_from_output(y)).abs() < 1e-9,
                    "{act:?} at {x}"
                );
            }
        }
    }

    #[test]
    fn outputs_bounded() {
        for act in ACTS {
            for i in -100..=100 {
                let y = act.apply(i as f64);
                match act {
                    Activation::Sigmoid => assert!((0.0..=1.0).contains(&y)),
                    _ => assert!((-1.0..=1.0).contains(&y)),
                }
            }
        }
    }

    #[test]
    fn default_is_softsign() {
        assert_eq!(Activation::default(), Activation::Softsign);
    }
}
