//! Offline training substrate for the CSD inference stack.
//!
//! The reproduced paper (DSN-S 2024) trains its classifier *offline* — "The
//! LSTM model that will be deployed on the FPGA is first trained offline"
//! (§III-A) — then exports the weights for the host program to load into the
//! FPGA. This crate is that offline half, built from scratch:
//!
//! - [`Embedding`] — the item-embedding front end (vocabulary 278, dim 8 in
//!   the paper ⇒ 2,224 parameters),
//! - [`LstmCell`] / [`LstmLayer`] — a from-scratch LSTM (hidden 32 ⇒ 5,248
//!   parameters) with full backpropagation-through-time,
//! - [`Dense`] — the 32+1-parameter fully-connected classification head,
//! - [`SequenceClassifier`] — the composed 7,472-parameter model,
//! - [`Trainer`] — mini-batch Adam/SGD training with per-epoch convergence
//!   history (regenerates the paper's Fig. 4),
//! - [`ModelWeights`] — the `get_weights()`-style three-array export format
//!   the paper ships to the host program (§III-A),
//! - [`metrics`] — accuracy / precision / recall / F1 as reported in §IV.
//!
//! # Example
//!
//! ```rust
//! use csd_nn::{ModelConfig, SequenceClassifier};
//!
//! // The paper's exact architecture: 278-word vocab, embed 8, hidden 32.
//! // 7,472 parameters for embeddings + LSTM (the count the paper quotes),
//! // plus the 32+1 fully-connected head.
//! let model = SequenceClassifier::new(ModelConfig::paper(), 42);
//! assert_eq!(model.num_parameters(), 7_505);
//! let p = model.predict_proba(&[1, 5, 9]);
//! assert!((0.0..=1.0).contains(&p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod dense;
pub mod embedding;
pub mod gru;
pub mod loss;
pub mod lstm;
pub mod metrics;
pub mod model;
pub mod multiclass;
pub mod optimizer;
pub mod screen;
pub mod trainer;
pub mod weights;

pub use activation::Activation;
pub use dense::Dense;
pub use embedding::Embedding;
pub use gru::{GruCell, GruClassifier};
pub use loss::{bce_loss, bce_loss_grad};
pub use lstm::{LstmCell, LstmLayer, LstmState};
pub use metrics::{ClassificationReport, ConfusionMatrix};
pub use model::{ModelConfig, SequenceClassifier};
pub use multiclass::{FamilyClassifier, SoftmaxHead};
pub use optimizer::{Adam, Optimizer, Sgd};
pub use screen::{ScreenQuantReport, ScreenWeights, SCREEN_SCALE_POW_MAX};
pub use trainer::{evaluate, EpochRecord, TrainOptions, Trainer, TrainingHistory};
pub use weights::{ModelWeights, WeightsError};
