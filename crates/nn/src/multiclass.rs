//! Multiclass (family) classification — an operational extension.
//!
//! The paper's binary verdict triggers mitigation; incident response then
//! wants to know *which* ransomware family it is facing (decryptors,
//! lateral-movement checks, and ransom-note playbooks are family-
//! specific). [`FamilyClassifier`] reuses the same embedding + LSTM
//! backbone with a softmax head over the family set, trained with
//! cross-entropy — demonstrating that the CSD architecture generalizes
//! past binary detection, as the paper's conclusion suggests ("this ML
//! inference strategy offers the potential to enhance an assortment of
//! other data center tasks").

use csd_tensor::{Initializer, Matrix, Vector};
use serde::{Deserialize, Serialize};

use crate::embedding::Embedding;
use crate::lstm::{LstmCell, LstmLayer};
use crate::Activation;

/// A softmax output layer: `p = softmax(W h + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxHead {
    w: Matrix<f64>,
    b: Vector<f64>,
}

impl SoftmaxHead {
    /// Creates a Xavier-initialized `classes × input_dim` head.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(input_dim: usize, classes: usize, seed: u64) -> Self {
        assert!(input_dim > 0 && classes > 0, "dims must be positive");
        Self {
            w: Initializer::XavierUniform.matrix(classes, input_dim, seed),
            b: Vector::zeros(classes),
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.w.rows()
    }

    /// Class probabilities (a stable softmax over the logits).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn forward(&self, h: &Vector<f64>) -> Vector<f64> {
        let logits = self.w.matvec(h).add(&self.b);
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        Vector::from(exps.into_iter().map(|e| e / sum).collect::<Vec<_>>())
    }

    /// Cross-entropy loss for the true `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn loss(&self, h: &Vector<f64>, class: usize) -> f64 {
        assert!(class < self.classes(), "class out of range");
        -(self.forward(h)[class].max(1e-12)).ln()
    }

    /// One SGD step on `(h, class)`; returns `∂L/∂h` for backprop into
    /// the LSTM.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range or dimensions mismatch.
    pub fn train_step(&mut self, h: &Vector<f64>, class: usize, lr: f64) -> Vector<f64> {
        assert!(class < self.classes(), "class out of range");
        let p = self.forward(h);
        // d_logits = p − onehot(class).
        let mut d_logits = p;
        d_logits[class] -= 1.0;
        // d_h = Wᵀ d_logits, captured before the update.
        let d_h = self.w.vecmat(&d_logits);
        for r in 0..self.classes() {
            let d = d_logits[r];
            for c in 0..h.len() {
                *self.w.get_mut(r, c) -= lr * d * h[c];
            }
            self.b[r] -= lr * d;
        }
        d_h
    }
}

/// Embedding → LSTM → softmax over ransomware families.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyClassifier {
    embedding: Embedding,
    lstm: LstmLayer,
    head: SoftmaxHead,
    class_names: Vec<String>,
}

impl FamilyClassifier {
    /// Creates a classifier over `class_names` with the paper's backbone
    /// dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `class_names` is empty or any dimension is zero.
    pub fn new(
        vocab: usize,
        embed_dim: usize,
        hidden: usize,
        class_names: Vec<String>,
        seed: u64,
    ) -> Self {
        assert!(!class_names.is_empty(), "need at least one class");
        Self {
            embedding: Embedding::new(vocab, embed_dim, seed),
            lstm: LstmLayer::new(LstmCell::new(
                embed_dim,
                hidden,
                Activation::Softsign,
                seed.wrapping_add(1),
            )),
            head: SoftmaxHead::new(hidden, class_names.len(), seed.wrapping_add(2)),
            class_names,
        }
    }

    /// The class labels.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Total trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.embedding.num_parameters()
            + self.lstm.cell().num_parameters()
            + self.class_names.len() * (self.lstm.cell().hidden() + 1)
    }

    /// Class probabilities for a sequence.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn predict_proba(&self, seq: &[usize]) -> Vector<f64> {
        self.head.forward(&self.final_hidden(seq))
    }

    /// The most likely class index.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn predict(&self, seq: &[usize]) -> usize {
        let p = self.predict_proba(seq);
        (0..p.len())
            .max_by(|&a, &b| p[a].total_cmp(&p[b]))
            .expect("non-empty class set")
    }

    /// The most likely class name.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn predict_name(&self, seq: &[usize]) -> &str {
        &self.class_names[self.predict(seq)]
    }

    /// One SGD step on `(seq, class)` with full BPTT; returns the loss.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence, out-of-vocabulary token, or class out
    /// of range.
    pub fn train_step(&mut self, seq: &[usize], class: usize, lr: f64) -> f64 {
        assert!(!seq.is_empty(), "empty sequence");
        let xs: Vec<Vector<f64>> = seq.iter().map(|&t| self.embedding.forward(t)).collect();
        let (state, caches) = self.lstm.forward(&xs);
        let loss = self.head.loss(&state.h, class);
        let d_h = self.head.train_step(&state.h, class, lr);
        let mut grads = self.lstm.cell().zero_grads();
        let d_xs = self.lstm.backward(&caches, &d_h, &mut grads);
        self.lstm.cell_mut().apply_gradients(&grads, lr);
        let mut emb_grads = self.embedding.zero_grad();
        for (t, d_x) in d_xs.iter().enumerate() {
            self.embedding.backward(seq[t], d_x, &mut emb_grads);
        }
        self.embedding.apply_gradient(&emb_grads, lr);
        loss
    }

    fn final_hidden(&self, seq: &[usize]) -> Vector<f64> {
        assert!(!seq.is_empty(), "empty sequence");
        let xs: Vec<Vector<f64>> = seq.iter().map(|&t| self.embedding.forward(t)).collect();
        self.lstm.forward(&xs).0.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_is_a_distribution() {
        let head = SoftmaxHead::new(4, 3, 1);
        let p = head.forward(&Vector::from(vec![0.5, -0.2, 0.9, 0.0]));
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn head_gradient_matches_numerical() {
        let head = SoftmaxHead::new(3, 4, 2);
        let h = Vector::from(vec![0.3, -0.4, 0.8]);
        let class = 2;
        // d_h from one (non-updating-by-clone) step.
        let d_h = head.clone().train_step(&h, class, 0.0);
        let eps = 1e-6;
        for k in 0..3 {
            let mut up = h.clone();
            up[k] += eps;
            let mut down = h.clone();
            down[k] -= eps;
            let numeric = (head.loss(&up, class) - head.loss(&down, class)) / (2.0 * eps);
            assert!((numeric - d_h[k]).abs() < 1e-6, "{numeric} vs {}", d_h[k]);
        }
    }

    #[test]
    fn head_sgd_reduces_loss() {
        let mut head = SoftmaxHead::new(4, 5, 3);
        let h = Vector::from(vec![1.0, -0.5, 0.25, 0.75]);
        let before = head.loss(&h, 1);
        for _ in 0..50 {
            head.train_step(&h, 1, 0.5);
        }
        assert!(head.loss(&h, 1) < before);
    }

    #[test]
    fn classifier_learns_three_synthetic_families() {
        // Family k draws its tokens from its own band — trivially
        // separable, which proves the training loop works end to end.
        let names = vec!["A".to_string(), "B".to_string(), "C".to_string()];
        let mut m = FamilyClassifier::new(12, 4, 8, names, 4);
        let seq_for = |family: usize, salt: usize| -> Vec<usize> {
            (0..15).map(|i| family * 4 + (i + salt) % 4).collect()
        };
        for round in 0..120 {
            for family in 0..3 {
                m.train_step(&seq_for(family, round), family, 0.1);
            }
        }
        for family in 0..3 {
            assert_eq!(m.predict(&seq_for(family, 999)), family);
        }
        assert_eq!(m.predict_name(&seq_for(1, 1_000)), "B");
    }

    #[test]
    fn parameter_count() {
        let names: Vec<String> = (0..10).map(|i| format!("f{i}")).collect();
        let m = FamilyClassifier::new(278, 8, 32, names, 0);
        // 2,224 + 5,248 + 10 × 33.
        assert_eq!(m.num_parameters(), 7_802);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn bad_class_rejected() {
        let mut head = SoftmaxHead::new(2, 2, 0);
        let _ = head.train_step(&Vector::from(vec![0.0, 0.0]), 2, 0.1);
    }
}
