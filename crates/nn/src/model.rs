//! The composed sequence classifier: embedding → LSTM → dense head.
//!
//! With the paper's configuration ([`ModelConfig::paper`]) the model holds
//! the paper's 7,472 embedding+LSTM parameters (2,224 + 5,248) plus the
//! fully-connected head's 32 weights and one bias — 7,505 in total.

use csd_tensor::{Matrix, Vector};
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::dense::Dense;
use crate::embedding::Embedding;
use crate::loss::{bce_loss, bce_loss_grad};
use crate::lstm::{LstmCell, LstmGrads, LstmLayer};

/// Architecture hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Vocabulary size `M` (number of distinct sequence items).
    pub vocab: usize,
    /// Embedding dimension `O`.
    pub embed_dim: usize,
    /// LSTM hidden size `H`.
    pub hidden: usize,
    /// Cell activation (`tanh` classically; `softsign` as deployed).
    pub cell_activation: Activation,
}

impl ModelConfig {
    /// The paper's exact architecture (§IV, Testing environment): 278-item
    /// vocabulary, embedding 8, hidden 32, softsign cell activation —
    /// 7,472 embedding+LSTM parameters, 7,505 with the head.
    pub fn paper() -> Self {
        Self {
            vocab: 278,
            embed_dim: 8,
            hidden: 32,
            cell_activation: Activation::Softsign,
        }
    }

    /// A small configuration for fast tests.
    pub fn tiny(vocab: usize) -> Self {
        Self {
            vocab,
            embed_dim: 4,
            hidden: 8,
            cell_activation: Activation::Softsign,
        }
    }
}

/// Gradients for every parameter group of the model.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// Embedding-table gradient.
    pub embedding: Matrix<f64>,
    /// LSTM gate gradients.
    pub lstm: LstmGrads,
    /// Head weight gradient.
    pub fc_w: Vector<f64>,
    /// Head bias gradient.
    pub fc_b: f64,
}

impl Gradients {
    /// Elementwise accumulation `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn accumulate(&mut self, other: &Gradients) {
        self.embedding = self.embedding.add(&other.embedding);
        for g in 0..4 {
            self.lstm.w[g] = self.lstm.w[g].add(&other.lstm.w[g]);
            self.lstm.b[g] = self.lstm.b[g].add(&other.lstm.b[g]);
        }
        self.fc_w = self.fc_w.add(&other.fc_w);
        self.fc_b += other.fc_b;
    }

    /// Scales every gradient by `k` (used for batch averaging).
    pub fn scale(&mut self, k: f64) {
        self.embedding = self.embedding.scale(k);
        for g in 0..4 {
            self.lstm.w[g] = self.lstm.w[g].scale(k);
            self.lstm.b[g] = self.lstm.b[g].scale(k);
        }
        self.fc_w = self.fc_w.scale(k);
        self.fc_b *= k;
    }
}

/// The full classifier: `item → embedding → LSTM → σ(w·h_T + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceClassifier {
    config: ModelConfig,
    embedding: Embedding,
    lstm: LstmLayer,
    head: Dense,
}

impl SequenceClassifier {
    /// Creates a freshly initialized model.
    ///
    /// # Panics
    ///
    /// Panics if any dimension in `config` is zero.
    pub fn new(config: ModelConfig, seed: u64) -> Self {
        let embedding = Embedding::new(config.vocab, config.embed_dim, seed);
        let cell = LstmCell::new(
            config.embed_dim,
            config.hidden,
            config.cell_activation,
            seed.wrapping_add(1),
        );
        let head = Dense::new(config.hidden, seed.wrapping_add(2));
        Self {
            config,
            embedding,
            lstm: LstmLayer::new(cell),
            head,
        }
    }

    /// Builds a model from explicit components (used by weight import).
    ///
    /// # Panics
    ///
    /// Panics when the components' shapes disagree with `config`.
    pub fn from_parts(
        config: ModelConfig,
        embedding: Embedding,
        cell: LstmCell,
        head: Dense,
    ) -> Self {
        assert_eq!(embedding.vocab(), config.vocab, "vocab mismatch");
        assert_eq!(embedding.dim(), config.embed_dim, "embed dim mismatch");
        assert_eq!(cell.input_dim(), config.embed_dim, "cell input mismatch");
        assert_eq!(cell.hidden(), config.hidden, "hidden mismatch");
        assert_eq!(head.weights().len(), config.hidden, "head mismatch");
        Self {
            config,
            embedding,
            lstm: LstmLayer::new(cell),
            head,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The embedding table.
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// The LSTM cell.
    pub fn lstm_cell(&self) -> &LstmCell {
        self.lstm.cell()
    }

    /// The dense head.
    pub fn head(&self) -> &Dense {
        &self.head
    }

    /// Total trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.embedding.num_parameters()
            + self.lstm.cell().num_parameters()
            + self.head.num_parameters()
    }

    /// The final hidden state for a token sequence.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn final_hidden(&self, seq: &[usize]) -> Vector<f64> {
        let xs: Vec<Vector<f64>> = seq.iter().map(|&t| self.embedding.forward(t)).collect();
        self.lstm.forward(&xs).0.h
    }

    /// The classification probability `P(positive | seq)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn predict_proba(&self, seq: &[usize]) -> f64 {
        self.head.forward(&self.final_hidden(seq))
    }

    /// Hard classification at threshold 0.5.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn predict(&self, seq: &[usize]) -> bool {
        self.predict_proba(seq) >= 0.5
    }

    /// Forward + full BPTT for one `(sequence, label)` pair.
    ///
    /// Returns the BCE loss and the gradients of every parameter group.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence, an out-of-vocabulary token, or a label
    /// outside `[0, 1]`.
    pub fn compute_gradients(&self, seq: &[usize], label: f64) -> (f64, Gradients) {
        let xs: Vec<Vector<f64>> = seq.iter().map(|&t| self.embedding.forward(t)).collect();
        let (state, caches) = self.lstm.forward(&xs);
        let logit = self.head.logit(&state.h);
        let loss = bce_loss(logit, label);
        let d_logit = bce_loss_grad(logit, label);

        let mut grads = Gradients {
            embedding: self.embedding.zero_grad(),
            lstm: self.lstm.cell().zero_grads(),
            fc_w: Vector::zeros(self.config.hidden),
            fc_b: 0.0,
        };
        let d_h = self
            .head
            .backward(&state.h, d_logit, &mut grads.fc_w, &mut grads.fc_b);
        let d_xs = self.lstm.backward(&caches, &d_h, &mut grads.lstm);
        for (t, d_x) in d_xs.iter().enumerate() {
            self.embedding.backward(seq[t], d_x, &mut grads.embedding);
        }
        (loss, grads)
    }

    /// Zero gradients with this model's shapes.
    pub fn zero_gradients(&self) -> Gradients {
        Gradients {
            embedding: self.embedding.zero_grad(),
            lstm: self.lstm.cell().zero_grads(),
            fc_w: Vector::zeros(self.config.hidden),
            fc_b: 0.0,
        }
    }

    /// Flattens all parameters into one vector, in the canonical order
    /// `embedding | W_i W_f W_c W_o | b_i b_f b_c b_o | fc_w | fc_b`.
    pub fn flatten_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_parameters());
        out.extend_from_slice(&self.embedding.table().to_f64_flat());
        for g in 0..4 {
            out.extend_from_slice(&self.lstm.cell().weight(g).to_f64_flat());
        }
        for g in 0..4 {
            out.extend(self.lstm.cell().bias(g).iter().copied());
        }
        out.extend(self.head.weights().iter().copied());
        out.push(self.head.bias());
        out
    }

    /// Flattens gradients in the same canonical order as
    /// [`Self::flatten_params`].
    pub fn flatten_grads(&self, grads: &Gradients) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_parameters());
        out.extend_from_slice(&grads.embedding.to_f64_flat());
        for g in 0..4 {
            out.extend_from_slice(&grads.lstm.w[g].to_f64_flat());
        }
        for g in 0..4 {
            out.extend(grads.lstm.b[g].iter().copied());
        }
        out.extend(grads.fc_w.iter().copied());
        out.push(grads.fc_b);
        out
    }

    /// Writes a flat parameter vector back into the model.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_parameters()`.
    pub fn assign_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.num_parameters(), "param count mismatch");
        let mut at = 0;
        let mut take = |n: usize| {
            let s = &params[at..at + n];
            at += n;
            s
        };
        let (v, o, h) = (self.config.vocab, self.config.embed_dim, self.config.hidden);
        let emb = Matrix::from_f64_flat(v, o, take(v * o));
        self.embedding = Embedding::from_table(emb);
        let z = h + o;
        for g in 0..4 {
            *self.lstm.cell_mut().weight_mut(g) = Matrix::from_f64_flat(h, z, take(h * z));
        }
        for g in 0..4 {
            *self.lstm.cell_mut().bias_mut(g) = Vector::from(take(h).to_vec());
        }
        let fc_w = Vector::from(take(h).to_vec());
        let fc_b = take(1)[0];
        self.head.set_parts(fc_w, fc_b);
        debug_assert_eq!(at, params.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_parameter_counts() {
        let m = SequenceClassifier::new(ModelConfig::paper(), 1);
        assert_eq!(m.embedding().num_parameters(), 2_224);
        assert_eq!(m.lstm_cell().num_parameters(), 5_248);
        // The paper's quoted 7,472 covers embeddings + LSTM.
        assert_eq!(
            m.embedding().num_parameters() + m.lstm_cell().num_parameters(),
            7_472
        );
        assert_eq!(m.head().num_parameters(), 33);
        assert_eq!(m.num_parameters(), 7_505);
    }

    #[test]
    fn predictions_are_probabilities() {
        let m = SequenceClassifier::new(ModelConfig::tiny(12), 2);
        for seq in [[0usize, 3, 5].as_slice(), &[11], &[1, 1, 1, 1, 1]] {
            let p = m.predict_proba(seq);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn flatten_assign_roundtrip() {
        let m = SequenceClassifier::new(ModelConfig::tiny(10), 3);
        let params = m.flatten_params();
        assert_eq!(params.len(), m.num_parameters());
        let mut m2 = SequenceClassifier::new(ModelConfig::tiny(10), 99);
        assert_ne!(m2.flatten_params(), params);
        m2.assign_params(&params);
        assert_eq!(m2.flatten_params(), params);
        // Behaviour matches too.
        let seq = [1usize, 4, 7, 2];
        assert_eq!(m.predict_proba(&seq), m2.predict_proba(&seq));
    }

    #[test]
    fn gradient_descent_fits_two_sequences() {
        // The classic overfit-two-examples sanity check for the whole model.
        let mut m = SequenceClassifier::new(ModelConfig::tiny(8), 5);
        let pos = [1usize, 2, 3, 4];
        let neg = [5usize, 6, 7, 0];
        for _ in 0..300 {
            let mut params = m.flatten_params();
            let (_, gp) = m.compute_gradients(&pos, 1.0);
            let (_, gn) = m.compute_gradients(&neg, 0.0);
            let mut acc = gp;
            acc.accumulate(&gn);
            acc.scale(0.5);
            let flat = m.flatten_grads(&acc);
            for (p, g) in params.iter_mut().zip(&flat) {
                *p -= 0.5 * g;
            }
            m.assign_params(&params);
        }
        assert!(m.predict_proba(&pos) > 0.9, "{}", m.predict_proba(&pos));
        assert!(m.predict_proba(&neg) < 0.1, "{}", m.predict_proba(&neg));
    }

    #[test]
    fn whole_model_gradient_matches_numerical() {
        let m = SequenceClassifier::new(ModelConfig::tiny(6), 11);
        let seq = [0usize, 2, 4, 1];
        let label = 1.0;
        let (_, grads) = m.compute_gradients(&seq, label);
        let flat_grads = m.flatten_grads(&grads);
        let params = m.flatten_params();
        let eps = 1e-6;
        // Spot-check a spread of parameter indices across all groups.
        let n = params.len();
        for idx in [0, n / 5, n / 3, n / 2, 2 * n / 3, n - 2, n - 1] {
            let mut m2 = m.clone();
            let mut p2 = params.clone();
            p2[idx] += eps;
            m2.assign_params(&p2);
            let (up, _) = m2.compute_gradients(&seq, label);
            p2[idx] -= 2.0 * eps;
            m2.assign_params(&p2);
            let (down, _) = m2.compute_gradients(&seq, label);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - flat_grads[idx]).abs() < 1e-4,
                "param {idx}: numeric {numeric} vs analytic {}",
                flat_grads[idx]
            );
        }
    }

    #[test]
    fn zero_gradients_shapes() {
        let m = SequenceClassifier::new(ModelConfig::tiny(5), 0);
        let g = m.zero_gradients();
        assert_eq!(m.flatten_grads(&g).len(), m.num_parameters());
        assert!(m.flatten_grads(&g).iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let m = SequenceClassifier::new(ModelConfig::tiny(5), 0);
        let _ = m.predict_proba(&[]);
    }
}
