//! Binary cross-entropy loss for the ransomware/benign classification task.

/// Numerically-stable binary cross-entropy from the *logit*:
/// `L = max(z, 0) − z·y + ln(1 + e^{−|z|})`.
///
/// ```rust
/// use csd_nn::bce_loss;
/// // Perfectly confident correct prediction → loss near 0.
/// assert!(bce_loss(20.0, 1.0) < 1e-8);
/// // Confident wrong prediction → large loss.
/// assert!(bce_loss(20.0, 0.0) > 19.0);
/// ```
///
/// # Panics
///
/// Panics if `target` is not in `[0, 1]`.
pub fn bce_loss(logit: f64, target: f64) -> f64 {
    assert!((0.0..=1.0).contains(&target), "target must be in [0, 1]");
    logit.max(0.0) - logit * target + (1.0 + (-logit.abs()).exp()).ln()
}

/// Gradient of [`bce_loss`] with respect to the logit: `σ(z) − y`.
///
/// # Panics
///
/// Panics if `target` is not in `[0, 1]`.
pub fn bce_loss_grad(logit: f64, target: f64) -> f64 {
    assert!((0.0..=1.0).contains(&target), "target must be in [0, 1]");
    1.0 / (1.0 + (-logit).exp()) - target
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_formula_in_stable_region() {
        for &(z, y) in &[(0.5f64, 1.0), (-1.2, 0.0), (2.0, 1.0), (0.0, 0.5)] {
            let p: f64 = 1.0 / (1.0 + (-z).exp());
            let naive = -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
            assert!((bce_loss(z, y) - naive).abs() < 1e-12, "z={z} y={y}");
        }
    }

    #[test]
    fn stable_for_extreme_logits() {
        assert!(bce_loss(1000.0, 1.0).is_finite());
        assert!(bce_loss(-1000.0, 0.0).is_finite());
        assert!(bce_loss(1000.0, 0.0).is_finite());
    }

    #[test]
    fn grad_matches_finite_difference() {
        let eps = 1e-6;
        for &(z, y) in &[(0.3, 1.0), (-2.0, 0.0), (1.5, 0.0), (0.0, 1.0)] {
            let numeric = (bce_loss(z + eps, y) - bce_loss(z - eps, y)) / (2.0 * eps);
            assert!((numeric - bce_loss_grad(z, y)).abs() < 1e-6);
        }
    }

    #[test]
    fn grad_sign_points_toward_target() {
        assert!(bce_loss_grad(0.0, 1.0) < 0.0); // push logit up
        assert!(bce_loss_grad(0.0, 0.0) > 0.0); // push logit down
    }

    #[test]
    #[should_panic(expected = "target must be in")]
    fn invalid_target_panics() {
        let _ = bce_loss(0.0, 1.5);
    }
}
