//! A GRU cell and classifier — the natural baseline to the paper's LSTM.
//!
//! §III-A argues for an LSTM by its "robust track record" and fixed
//! per-timestep parameter reuse; a Gated Recurrent Unit shares those
//! properties with 25% fewer recurrent parameters (three gates instead of
//! four) and no separate cell state — which would also simplify
//! `kernel_hidden_state` (no `C_t` to keep resident). The model-choice
//! ablation trains both on the detection task.
//!
//! Equations (same `[h_{t−1}, x_t]` convention as the LSTM):
//!
//! ```text
//! z_t = σ(W_z [h_{t−1}, x_t] + b_z)          (update gate)
//! r_t = σ(W_r [h_{t−1}, x_t] + b_r)          (reset gate)
//! h̃_t = g(W_h [r_t ∗ h_{t−1}, x_t] + b_h)    (candidate)
//! h_t = (1 − z_t) ∗ h_{t−1} + z_t ∗ h̃_t
//! ```

use csd_tensor::{Initializer, Matrix, Vector};
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::dense::Dense;
use crate::embedding::Embedding;
use crate::loss::{bce_loss, bce_loss_grad};

/// Gate indices (`z`, `r`, `h̃`).
const GATE_Z: usize = 0;
const GATE_R: usize = 1;
const GATE_H: usize = 2;

/// A single GRU cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GruCell {
    input_dim: usize,
    hidden: usize,
    /// Gate weights, each `hidden × (hidden + input_dim)` over `[h | x]`.
    w: [Matrix<f64>; 3],
    b: [Vector<f64>; 3],
    cell_act: Activation,
}

/// Per-timestep cache for BPTT.
#[derive(Debug, Clone)]
pub struct GruStepCache {
    z_in: Vector<f64>,
    rh_in: Vector<f64>,
    pre: [Vector<f64>; 3],
    gate: [Vector<f64>; 3],
    h_prev: Vector<f64>,
}

/// Gradients with the cell's shapes.
#[derive(Debug, Clone)]
pub struct GruGrads {
    /// Per-gate weight gradients.
    pub w: [Matrix<f64>; 3],
    /// Per-gate bias gradients.
    pub b: [Vector<f64>; 3],
}

impl GruCell {
    /// Creates a Xavier-initialized cell.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or a sigmoid candidate activation.
    pub fn new(input_dim: usize, hidden: usize, cell_act: Activation, seed: u64) -> Self {
        assert!(input_dim > 0 && hidden > 0, "dims must be positive");
        assert!(
            cell_act != Activation::Sigmoid,
            "candidate activation must be tanh or softsign"
        );
        let zdim = hidden + input_dim;
        Self {
            input_dim,
            hidden,
            w: std::array::from_fn(|g| {
                Initializer::XavierUniform.matrix(
                    hidden,
                    zdim,
                    seed.wrapping_mul(3).wrapping_add(g as u64 + 1),
                )
            }),
            b: std::array::from_fn(|_| Vector::zeros(hidden)),
            cell_act,
        }
    }

    /// Hidden size `H`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input size `X`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Trainable parameters: `3 × (H × (H+X) + H)`.
    pub fn num_parameters(&self) -> usize {
        3 * (self.hidden * (self.hidden + self.input_dim) + self.hidden)
    }

    /// One forward step.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn step(&self, x: &Vector<f64>, h_prev: &Vector<f64>) -> (Vector<f64>, GruStepCache) {
        assert_eq!(x.len(), self.input_dim, "input dim mismatch");
        assert_eq!(h_prev.len(), self.hidden, "hidden dim mismatch");
        let z_in = h_prev.concat(x);
        let pre_z = self.w[GATE_Z].matvec(&z_in).add(&self.b[GATE_Z]);
        let pre_r = self.w[GATE_R].matvec(&z_in).add(&self.b[GATE_R]);
        let z = pre_z.map(|v| Activation::Sigmoid.apply(v));
        let r = pre_r.map(|v| Activation::Sigmoid.apply(v));
        let rh_in = r.hadamard(h_prev).concat(x);
        let pre_h = self.w[GATE_H].matvec(&rh_in).add(&self.b[GATE_H]);
        let htilde = pre_h.map(|v| self.cell_act.apply(v));
        let mut h = Vector::zeros(self.hidden);
        for j in 0..self.hidden {
            h[j] = (1.0 - z[j]) * h_prev[j] + z[j] * htilde[j];
        }
        let cache = GruStepCache {
            z_in,
            rh_in,
            pre: [pre_z, pre_r, pre_h],
            gate: [z, r, htilde],
            h_prev: h_prev.clone(),
        };
        (h, cache)
    }

    /// Zero gradients with this cell's shapes.
    pub fn zero_grads(&self) -> GruGrads {
        let zdim = self.hidden + self.input_dim;
        GruGrads {
            w: std::array::from_fn(|_| Matrix::zeros(self.hidden, zdim)),
            b: std::array::from_fn(|_| Vector::zeros(self.hidden)),
        }
    }

    /// One BPTT step: returns `(d_h_prev, d_x)`.
    pub fn step_backward(
        &self,
        cache: &GruStepCache,
        d_h: &Vector<f64>,
        grads: &mut GruGrads,
    ) -> (Vector<f64>, Vector<f64>) {
        let hdim = self.hidden;
        let (z, r, htilde) = (&cache.gate[0], &cache.gate[1], &cache.gate[2]);
        // dz, dh̃ from h = (1−z)h_prev + z·h̃.
        let mut d_pre_z = Vector::zeros(hdim);
        let mut d_pre_h = Vector::zeros(hdim);
        for j in 0..hdim {
            let dz = d_h[j] * (htilde[j] - cache.h_prev[j]);
            d_pre_z[j] = dz * Activation::Sigmoid.derivative_from_output(z[j]);
            let dht = d_h[j] * z[j];
            d_pre_h[j] = dht * self.cell_act.derivative(cache.pre[GATE_H][j]);
        }
        // Through the candidate's input [r∘h_prev, x].
        let d_rh_in = self.w[GATE_H].vecmat(&d_pre_h);
        let mut d_pre_r = Vector::zeros(hdim);
        for j in 0..hdim {
            let dr = d_rh_in[j] * cache.h_prev[j];
            d_pre_r[j] = dr * Activation::Sigmoid.derivative_from_output(r[j]);
        }
        // Weight/bias gradients.
        let acc = |g: usize, d_pre: &Vector<f64>, input: &Vector<f64>, grads: &mut GruGrads| {
            for row in 0..hdim {
                let dv = d_pre[row];
                if dv == 0.0 {
                    continue;
                }
                for c in 0..input.len() {
                    *grads.w[g].get_mut(row, c) += dv * input[c];
                }
                grads.b[g][row] += dv;
            }
        };
        acc(GATE_Z, &d_pre_z, &cache.z_in, grads);
        acc(GATE_R, &d_pre_r, &cache.z_in, grads);
        acc(GATE_H, &d_pre_h, &cache.rh_in, grads);
        // Input gradients.
        let d_zin_z = self.w[GATE_Z].vecmat(&d_pre_z);
        let d_zin_r = self.w[GATE_R].vecmat(&d_pre_r);
        let mut d_h_prev = Vector::zeros(hdim);
        let mut d_x = Vector::zeros(self.input_dim);
        for j in 0..hdim {
            d_h_prev[j] = d_h[j] * (1.0 - z[j])      // the skip path
                + d_rh_in[j] * r[j]                   // through r∘h_prev
                + d_zin_z[j]
                + d_zin_r[j];
        }
        for k in 0..self.input_dim {
            d_x[k] = d_zin_z[hdim + k] + d_zin_r[hdim + k] + d_rh_in[hdim + k];
        }
        (d_h_prev, d_x)
    }
}

/// Embedding → GRU → sigmoid head, mirroring
/// [`SequenceClassifier`](crate::SequenceClassifier) for the model-choice
/// ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GruClassifier {
    embedding: Embedding,
    cell: GruCell,
    head: Dense,
}

impl GruClassifier {
    /// Creates a model with the same hyperparameter surface as the LSTM
    /// classifier.
    pub fn new(vocab: usize, embed_dim: usize, hidden: usize, seed: u64) -> Self {
        Self {
            embedding: Embedding::new(vocab, embed_dim, seed),
            cell: GruCell::new(
                embed_dim,
                hidden,
                Activation::Softsign,
                seed.wrapping_add(1),
            ),
            head: Dense::new(hidden, seed.wrapping_add(2)),
        }
    }

    /// Total trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.embedding.num_parameters() + self.cell.num_parameters() + self.head.num_parameters()
    }

    /// `P(positive | seq)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn predict_proba(&self, seq: &[usize]) -> f64 {
        assert!(!seq.is_empty(), "empty sequence");
        let mut h = Vector::zeros(self.cell.hidden());
        for &t in seq {
            let x = self.embedding.forward(t);
            h = self.cell.step(&x, &h).0;
        }
        self.head.forward(&h)
    }

    /// Hard decision at 0.5.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or out-of-vocabulary token.
    pub fn predict(&self, seq: &[usize]) -> bool {
        self.predict_proba(seq) >= 0.5
    }

    /// One SGD step on a single example; returns the loss. (The ablation
    /// uses plain SGD to keep the comparison free of optimizer state.)
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence, out-of-vocabulary token, or label
    /// outside `[0, 1]`.
    pub fn train_step(&mut self, seq: &[usize], label: f64, lr: f64) -> f64 {
        assert!(!seq.is_empty(), "empty sequence");
        // Forward with caches.
        let mut h = Vector::zeros(self.cell.hidden());
        let mut caches = Vec::with_capacity(seq.len());
        let mut xs = Vec::with_capacity(seq.len());
        for &t in seq {
            let x = self.embedding.forward(t);
            let (next, cache) = self.cell.step(&x, &h);
            h = next;
            caches.push(cache);
            xs.push(t);
        }
        let logit = self.head.logit(&h);
        let loss = bce_loss(logit, label);
        let d_logit = bce_loss_grad(logit, label);

        // Backward.
        let mut grad_w = Vector::zeros(self.cell.hidden());
        let mut grad_b = 0.0;
        let mut d_h = self.head.backward(&h, d_logit, &mut grad_w, &mut grad_b);
        let mut cell_grads = self.cell.zero_grads();
        let mut emb_grads = self.embedding.zero_grad();
        for (cache, &tok) in caches.iter().zip(&xs).rev() {
            let (d_h_prev, d_x) = self.cell.step_backward(cache, &d_h, &mut cell_grads);
            self.embedding.backward(tok, &d_x, &mut emb_grads);
            d_h = d_h_prev;
        }

        // Apply.
        self.head.apply_gradients(&grad_w, grad_b, lr);
        for g in 0..3 {
            self.cell.w[g] = self.cell.w[g].add(&cell_grads.w[g].scale(-lr));
            self.cell.b[g] = self.cell.b[g].add(&cell_grads.b[g].scale(-lr));
        }
        self.embedding.apply_gradient(&emb_grads, lr);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GruCell {
        GruCell::new(3, 4, Activation::Softsign, 5)
    }

    #[test]
    fn parameter_count() {
        // Paper dims: 3 × (32×40 + 32) = 3,936 — 25% below the LSTM's 5,248.
        let cell = GruCell::new(8, 32, Activation::Softsign, 0);
        assert_eq!(cell.num_parameters(), 3_936);
        let lstm = crate::LstmCell::new(8, 32, Activation::Softsign, 0);
        assert!(cell.num_parameters() < lstm.num_parameters());
    }

    #[test]
    fn hidden_state_bounded() {
        // h is a convex combination of h_prev and h̃ ∈ (−1, 1).
        let cell = tiny();
        let mut h = Vector::zeros(4);
        for t in 0..100 {
            let x = Vector::from(vec![(t as f64).cos() * 3.0, 1.0, -1.0]);
            h = cell.step(&x, &h).0;
            assert!(h.iter().all(|&v| v.abs() < 1.0), "t={t}");
        }
    }

    #[test]
    fn bptt_matches_numerical_gradient() {
        let cell = tiny();
        let xs: Vec<Vector<f64>> = (0..5)
            .map(|t| Vector::from(vec![0.2 * t as f64, -0.3, 0.4]))
            .collect();
        let forward = |cell: &GruCell| {
            let mut h = Vector::zeros(4);
            for x in &xs {
                h = cell.step(x, &h).0;
            }
            h.iter().sum::<f64>()
        };
        // Analytic gradients via full BPTT with d_h_final = ones.
        let mut grads = cell.zero_grads();
        let mut h = Vector::zeros(4);
        let mut caches = Vec::new();
        for x in &xs {
            let (next, cache) = cell.step(x, &h);
            h = next;
            caches.push(cache);
        }
        let mut d_h = Vector::from(vec![1.0; 4]);
        for cache in caches.iter().rev() {
            let (d_h_prev, _) = cell.step_backward(cache, &d_h, &mut grads);
            d_h = d_h_prev;
        }
        // Numerical spot checks in every gate.
        let eps = 1e-6;
        for g in 0..3 {
            for &(r, c) in &[(0usize, 0usize), (2, 4), (3, 6), (1, 2)] {
                let mut up = cell.clone();
                *up.w[g].get_mut(r, c) += eps;
                let mut down = cell.clone();
                *down.w[g].get_mut(r, c) -= eps;
                let numeric = (forward(&up) - forward(&down)) / (2.0 * eps);
                let analytic = grads.w[g].get(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "gate {g} ({r},{c}): {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn classifier_overfits_two_examples() {
        let mut m = GruClassifier::new(8, 4, 8, 3);
        let pos = [1usize, 2, 3, 4];
        let neg = [5usize, 6, 7, 0];
        for _ in 0..400 {
            m.train_step(&pos, 1.0, 0.3);
            m.train_step(&neg, 0.0, 0.3);
        }
        assert!(m.predict_proba(&pos) > 0.9, "{}", m.predict_proba(&pos));
        assert!(m.predict_proba(&neg) < 0.1, "{}", m.predict_proba(&neg));
    }

    #[test]
    fn paper_dims_total() {
        let m = GruClassifier::new(278, 8, 32, 1);
        // 2,224 embedding + 3,936 GRU + 33 head.
        assert_eq!(m.num_parameters(), 6_193);
    }

    #[test]
    fn predictions_are_probabilities() {
        let m = GruClassifier::new(12, 4, 6, 7);
        for seq in [[0usize, 1, 2].as_slice(), &[11, 10]] {
            let p = m.predict_proba(seq);
            assert!((0.0..=1.0).contains(&p));
            assert_eq!(m.predict(seq), p >= 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_rejected() {
        let _ = GruClassifier::new(4, 2, 2, 0).predict_proba(&[]);
    }
}
