//! Screen-tier quantization: a low-scale integer copy of the trained
//! LSTM whose every recurrent row provably fits the `i16 × i16 → i32`
//! MAC (`csd_fxp::row_fits_i16_mac`).
//!
//! The deployed engine runs the paper's 10^6 decimal scale, which the
//! narrow-MAC proof honestly declines (`|h| ≤ 1` is raw 10^6 ≫ `i16`).
//! The cascade's *screen* tier re-quantizes the same trained weights at
//! 10^4 (or lower), where the proof holds — and when a row's worst-case
//! accumulator still exceeds the `i32` budget, the row is
//! *retrain-calibrated*: shrunk proportionally into the provable
//! envelope. The induced score error is absorbed downstream by the
//! calibrated uncertainty band (escalation to the exact path), never by
//! the verdict contract.

use csd_fxp::row_fits_i16_mac;
use serde::{Deserialize, Serialize};

use crate::model::ModelConfig;
use crate::weights::ModelWeights;

/// Largest decimal power the screen tier accepts: the recurrent input
/// bound `|h| ≤ 1` is raw `10^pow`, which must itself fit `i16`
/// (`10^4 < 32767 < 10^5`).
pub const SCREEN_SCALE_POW_MAX: u32 = 4;

/// The trained model re-quantized at a screen scale, in fused-gate
/// layout (gate order `i f c o`, fused row `r = g·H + j`): the form the
/// accelerator's screen pack consumes directly.
///
/// All values are raw integers at scale `10^scale_pow`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScreenWeights {
    /// Architecture the weights belong to.
    pub config: ModelConfig,
    /// Decimal scale exponent (`raw = round(value · 10^scale_pow)`).
    pub scale_pow: u32,
    /// Flat row-major `vocab × embed_dim` embedding table.
    pub embedding: Vec<i64>,
    /// Fused recurrent gate matrix `4H × H` — the rows that must pass
    /// [`row_fits_i16_mac`] against the `|h| ≤ 1` input bound.
    pub w_h: Vec<i64>,
    /// Fused input gate matrix `4H × E` (folded into the vocabulary
    /// gate table downstream; no narrow-container obligation).
    pub w_x: Vec<i64>,
    /// Fused gate bias, length `4H`.
    pub bias: Vec<i64>,
    /// Logistic-head weights, length `H`.
    pub fc_w: Vec<i64>,
    /// Logistic-head bias.
    pub fc_b: i64,
}

/// What [`ScreenWeights::quantize`] did to make every row provable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScreenQuantReport {
    /// The decimal scale (`10^scale_pow`).
    pub scale: i64,
    /// Recurrent rows that had to be shrunk into the `i16`/`i32` budget.
    pub rows_clipped: usize,
    /// Worst proportional shrink applied to any row (`1.0` = none).
    pub worst_row_shrink: f64,
}

impl ScreenWeights {
    /// Re-quantizes a trained export at `10^scale_pow`, shrinking any
    /// recurrent row whose worst-case accumulator exceeds the narrow-MAC
    /// budget. On return **every** `w_h` row passes
    /// [`row_fits_i16_mac`] against the `|h| ≤ 1` bound — the screen
    /// pack never declines.
    ///
    /// # Panics
    ///
    /// Panics when `scale_pow` is zero or above
    /// [`SCREEN_SCALE_POW_MAX`], or when the export's array lengths
    /// disagree with its config.
    pub fn quantize(w: &ModelWeights, scale_pow: u32) -> (Self, ScreenQuantReport) {
        assert!(
            (1..=SCREEN_SCALE_POW_MAX).contains(&scale_pow),
            "screen scale 10^{scale_pow} outside the provable range"
        );
        let scale = 10i64.pow(scale_pow);
        let (v, x, h) = (w.config.vocab, w.config.embed_dim, w.config.hidden);
        assert_eq!(w.embedding.len(), v * x, "embedding size mismatch");
        assert_eq!(w.lstm_kernel.len(), x * 4 * h, "kernel size mismatch");
        assert_eq!(w.lstm_recurrent.len(), h * 4 * h, "recurrent size mismatch");
        assert_eq!(w.lstm_bias.len(), 4 * h, "bias size mismatch");
        assert_eq!(w.fc_weights.len(), h, "fc size mismatch");

        let q = |value: f64| -> i64 { (value * scale as f64).round() as i64 };
        let zbound = vec![scale; h];
        let mut w_h = Vec::with_capacity(4 * h * h);
        let mut rows_clipped = 0usize;
        let mut worst_row_shrink = 1.0f64;
        for g in 0..4 {
            for j in 0..h {
                let mut row_f64: Vec<f64> = (0..h)
                    .map(|hc| w.lstm_recurrent[hc * 4 * h + g * h + j])
                    .collect();
                let mut row: Vec<i64> = row_f64.iter().map(|&f| q(f)).collect();
                let mut shrink = 1.0f64;
                while !row_fits_i16_mac(&row, &zbound) {
                    // Shrink into the binding budget (largest weight vs
                    // i16, row sum vs the i32 accumulator), with a hair
                    // of slack so requantization cannot re-violate; the
                    // loop re-checks and tightens again if it somehow
                    // does.
                    let mx = row.iter().map(|r| r.abs()).max().unwrap_or(0) as f64;
                    let sum: f64 = row.iter().map(|r| r.abs() as f64).sum();
                    let factor = (f64::from(i16::MAX) / mx.max(1.0))
                        .min(i32::MAX as f64 / scale as f64 / sum.max(1.0))
                        .min(0.999)
                        * (1.0 - 1e-9);
                    shrink *= factor;
                    for f in &mut row_f64 {
                        *f *= factor;
                    }
                    row = row_f64.iter().map(|&f| q(f)).collect();
                }
                if shrink < 1.0 {
                    rows_clipped += 1;
                    worst_row_shrink = worst_row_shrink.min(shrink);
                }
                w_h.extend_from_slice(&row);
            }
        }
        let mut w_x = Vec::with_capacity(4 * h * x);
        let mut bias = Vec::with_capacity(4 * h);
        for g in 0..4 {
            for j in 0..h {
                for xc in 0..x {
                    w_x.push(q(w.lstm_kernel[xc * 4 * h + g * h + j]));
                }
                bias.push(q(w.lstm_bias[g * h + j]));
            }
        }
        let screen = Self {
            config: w.config,
            scale_pow,
            embedding: w.embedding.iter().map(|&f| q(f)).collect(),
            w_h,
            w_x,
            bias,
            fc_w: w.fc_weights.iter().map(|&f| q(f)).collect(),
            fc_b: q(w.fc_bias),
        };
        let report = ScreenQuantReport {
            scale,
            rows_clipped,
            worst_row_shrink,
        };
        (screen, report)
    }

    /// The decimal scale (`10^scale_pow`).
    pub fn scale(&self) -> i64 {
        10i64.pow(self.scale_pow)
    }

    /// One fused recurrent row (`H` raw weights).
    ///
    /// # Panics
    ///
    /// Panics when `r` is outside `0..4H`.
    pub fn w_h_row(&self, r: usize) -> &[i64] {
        let h = self.config.hidden;
        &self.w_h[r * h..(r + 1) * h]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SequenceClassifier;

    fn export() -> ModelWeights {
        ModelWeights::from_model(&SequenceClassifier::new(ModelConfig::paper(), 33))
    }

    #[test]
    fn every_row_passes_the_i16_proof_at_screen_scales() {
        let w = export();
        for pow in [3u32, 4] {
            let (s, report) = ScreenWeights::quantize(&w, pow);
            let zbound = vec![s.scale(); s.config.hidden];
            for r in 0..4 * s.config.hidden {
                assert!(
                    row_fits_i16_mac(s.w_h_row(r), &zbound),
                    "pow={pow} row {r} fails the proof"
                );
            }
            assert_eq!(report.scale, s.scale());
            assert!(report.worst_row_shrink <= 1.0 && report.worst_row_shrink > 0.0);
        }
    }

    #[test]
    fn untrained_paper_rows_need_no_clipping() {
        // Fresh initialization keeps |w| ≪ 1; the 10^4 budget
        // (Σ|w_raw| ≤ 214_748 over 32 columns) holds without shrink.
        let (_, report) = ScreenWeights::quantize(&export(), 4);
        assert_eq!(report.rows_clipped, 0);
        assert_eq!(report.worst_row_shrink, 1.0);
    }

    #[test]
    fn oversized_rows_are_shrunk_into_the_budget() {
        let mut w = export();
        let h = w.config.hidden;
        // Blow up gate i, row 0: every recurrent weight to 8.0 — raw
        // 80_000 at 10^4 breaks both the i16 weight bound and the i32
        // row-sum budget.
        for hc in 0..h {
            w.lstm_recurrent[hc * 4 * h] = 8.0;
        }
        let (s, report) = ScreenWeights::quantize(&w, 4);
        assert!(report.rows_clipped >= 1);
        assert!(report.worst_row_shrink < 1.0);
        let zbound = vec![s.scale(); h];
        for r in 0..4 * h {
            assert!(row_fits_i16_mac(s.w_h_row(r), &zbound));
        }
        // The shrink is proportional: the clipped row keeps its shape.
        let row = s.w_h_row(0);
        assert!(
            row.iter().all(|&v| v == row[0]),
            "uniform row stays uniform"
        );
        assert!(row[0] > 0);
    }

    #[test]
    fn quantization_is_plain_rounding_at_the_scale() {
        let w = export();
        let (s, _) = ScreenWeights::quantize(&w, 4);
        assert_eq!(s.embedding[0], (w.embedding[0] * 1e4).round() as i64);
        assert_eq!(s.fc_b, (w.fc_bias * 1e4).round() as i64);
        // Fused layout: w_x[r=g·H+j][e] = kernel[e·4H + g·H + j].
        let h = w.config.hidden;
        let r = 2 * h + 5; // gate c, row 5
        assert_eq!(
            s.w_x[r * w.config.embed_dim + 3],
            (w.lstm_kernel[3 * 4 * h + 2 * h + 5] * 1e4).round() as i64
        );
    }

    #[test]
    #[should_panic(expected = "outside the provable range")]
    fn scale_beyond_i16_input_bound_is_refused() {
        let _ = ScreenWeights::quantize(&export(), 5);
    }

    #[test]
    fn serde_roundtrip() {
        let (s, _) = ScreenWeights::quantize(&export(), 3);
        let json = serde_json::to_string(&s).expect("serialize");
        let back: ScreenWeights = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, s);
    }
}
