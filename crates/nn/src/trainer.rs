//! Mini-batch training loop with convergence history.
//!
//! Regenerates the paper's Fig. 4 ("Convergence of the LSTM training on
//! ransomware API call sequences"): per-epoch test accuracy alongside the
//! final precision/recall/F1 reported in §IV.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::metrics::{ClassificationReport, ConfusionMatrix};
use crate::model::SequenceClassifier;
use crate::optimizer::{Adam, Optimizer};

/// A labelled training example: token sequence + binary label
/// (`true` = ransomware in the paper's use case).
pub type Example = (Vec<usize>, bool);

/// Options controlling a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Elementwise gradient clip.
    pub clip: f64,
    /// Shuffling seed.
    pub seed: u64,
    /// Evaluate on the test set every `eval_every` epochs (1 = every epoch).
    pub eval_every: usize,
    /// Worker threads for intra-batch gradient parallelism.
    pub threads: usize,
    /// Stop early when test accuracy has not improved for this many
    /// evaluations (`None` disables early stopping).
    pub patience: Option<usize>,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 32,
            learning_rate: 0.01,
            clip: 5.0,
            seed: 0x5eed,
            eval_every: 1,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            patience: None,
        }
    }
}

/// One row of the convergence history (one point on Fig. 4's curve).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Mean training BCE loss over the epoch.
    pub train_loss: f64,
    /// Test-set metrics (present on evaluation epochs).
    pub test: Option<ClassificationReport>,
}

/// The full convergence history of a run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainingHistory {
    records: Vec<EpochRecord>,
}

impl TrainingHistory {
    /// All epoch records in order.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// The best test accuracy observed and the epoch it occurred at.
    pub fn peak_accuracy(&self) -> Option<(usize, f64)> {
        self.records
            .iter()
            .filter_map(|r| r.test.map(|t| (r.epoch, t.accuracy)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("accuracy is finite"))
    }

    /// The last evaluation report, if any.
    pub fn final_report(&self) -> Option<ClassificationReport> {
        self.records.iter().rev().find_map(|r| r.test)
    }

    /// Serializes the convergence curve as CSV
    /// (`epoch,train_loss,accuracy,precision,recall,f1`; metric columns
    /// are empty on non-evaluation epochs) — plot-ready Fig. 4 data.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("epoch,train_loss,accuracy,precision,recall,f1\n");
        for r in &self.records {
            match r.test {
                Some(t) => out.push_str(&format!(
                    "{},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                    r.epoch, r.train_loss, t.accuracy, t.precision, t.recall, t.f1
                )),
                None => out.push_str(&format!("{},{:.6},,,,\n", r.epoch, r.train_loss)),
            }
        }
        out
    }
}

/// Trains a [`SequenceClassifier`] with Adam, recording convergence.
#[derive(Debug)]
pub struct Trainer {
    options: TrainOptions,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `epochs`, `batch_size`, `eval_every`, or `threads` is zero.
    pub fn new(options: TrainOptions) -> Self {
        assert!(options.epochs > 0, "epochs must be positive");
        assert!(options.batch_size > 0, "batch_size must be positive");
        assert!(options.eval_every > 0, "eval_every must be positive");
        assert!(options.threads > 0, "threads must be positive");
        Self { options }
    }

    /// The configured options.
    pub fn options(&self) -> &TrainOptions {
        &self.options
    }

    /// Runs training in place, returning the convergence history.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or any sequence is empty/out-of-vocabulary.
    pub fn fit(
        &self,
        model: &mut SequenceClassifier,
        train: &[Example],
        test: &[Example],
    ) -> TrainingHistory {
        assert!(!train.is_empty(), "training set is empty");
        let mut rng = ChaCha8Rng::seed_from_u64(self.options.seed);
        let mut opt = Adam::new(self.options.learning_rate).with_clip(self.options.clip);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut history = TrainingHistory::default();
        let mut best_acc = f64::NEG_INFINITY;
        let mut since_best = 0usize;

        for epoch in 1..=self.options.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(self.options.batch_size) {
                let (loss, grads) = self.batch_gradients(model, train, batch);
                epoch_loss += loss * batch.len() as f64;
                let mut params = model.flatten_params();
                opt.step(&mut params, &grads);
                model.assign_params(&params);
            }
            let train_loss = epoch_loss / train.len() as f64;

            let test_report = if !test.is_empty() && epoch % self.options.eval_every == 0 {
                Some(evaluate(model, test))
            } else {
                None
            };
            history.records.push(EpochRecord {
                epoch,
                train_loss,
                test: test_report,
            });

            if let (Some(report), Some(patience)) = (test_report, self.options.patience) {
                if report.accuracy > best_acc {
                    best_acc = report.accuracy;
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= patience {
                        break;
                    }
                }
            }
        }
        history
    }

    /// Mean loss and mean flat gradient over one mini-batch, computed in
    /// parallel across worker threads.
    fn batch_gradients(
        &self,
        model: &SequenceClassifier,
        train: &[Example],
        batch: &[usize],
    ) -> (f64, Vec<f64>) {
        let threads = self.options.threads.min(batch.len()).max(1);
        let chunk = batch.len().div_ceil(threads);
        let partials: Vec<(f64, Vec<f64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = batch
                .chunks(chunk)
                .map(|ids| {
                    scope.spawn(move || {
                        let mut loss = 0.0;
                        let mut acc = model.zero_gradients();
                        for &i in ids {
                            let (seq, label) = &train[i];
                            let (l, g) =
                                model.compute_gradients(seq, if *label { 1.0 } else { 0.0 });
                            loss += l;
                            acc.accumulate(&g);
                        }
                        (loss, model.flatten_grads(&acc))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("gradient worker panicked"))
                .collect()
        });
        let n = batch.len() as f64;
        let mut total_loss = 0.0;
        let mut grads = vec![0.0; model.num_parameters()];
        for (loss, flat) in partials {
            total_loss += loss;
            for (g, f) in grads.iter_mut().zip(&flat) {
                *g += f;
            }
        }
        for g in &mut grads {
            *g /= n;
        }
        (total_loss / n, grads)
    }
}

/// Evaluates a model on a labelled set, producing the paper's four metrics.
///
/// # Panics
///
/// Panics if any sequence is empty or out-of-vocabulary.
pub fn evaluate(model: &SequenceClassifier, examples: &[Example]) -> ClassificationReport {
    let mut cm = ConfusionMatrix::new();
    for (seq, label) in examples {
        cm.record(*label, model.predict(seq));
    }
    cm.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;

    /// A linearly-separable toy task: positive sequences use tokens 0–3,
    /// negative use 4–7.
    fn toy_data(n: usize, seed: u64) -> Vec<Example> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let positive = i % 2 == 0;
            let base = if positive { 0 } else { 4 };
            let seq: Vec<usize> = (0..12)
                .map(|_| {
                    use rand::Rng;
                    base + rng.random_range(0..4usize)
                })
                .collect();
            out.push((seq, positive));
        }
        out
    }

    #[test]
    fn trainer_learns_toy_task() {
        let train = toy_data(64, 1);
        let test = toy_data(32, 2);
        let mut model = SequenceClassifier::new(ModelConfig::tiny(8), 7);
        let trainer = Trainer::new(TrainOptions {
            epochs: 25,
            batch_size: 16,
            learning_rate: 0.02,
            threads: 2,
            ..TrainOptions::default()
        });
        let history = trainer.fit(&mut model, &train, &test);
        let (epoch, acc) = history.peak_accuracy().expect("evaluated");
        assert!(acc > 0.9, "peak accuracy {acc} at epoch {epoch}");
        assert_eq!(history.records().len(), 25);
    }

    #[test]
    fn loss_decreases_over_training() {
        let train = toy_data(32, 3);
        let mut model = SequenceClassifier::new(ModelConfig::tiny(8), 9);
        let trainer = Trainer::new(TrainOptions {
            epochs: 15,
            batch_size: 8,
            learning_rate: 0.02,
            threads: 1,
            ..TrainOptions::default()
        });
        let history = trainer.fit(&mut model, &train, &[]);
        let first = history.records().first().expect("records").train_loss;
        let last = history.records().last().expect("records").train_loss;
        assert!(last < first, "loss went {first} → {last}");
    }

    #[test]
    fn early_stopping_halts() {
        let train = toy_data(16, 4);
        let test = toy_data(16, 5);
        let mut model = SequenceClassifier::new(ModelConfig::tiny(8), 1);
        let trainer = Trainer::new(TrainOptions {
            epochs: 200,
            batch_size: 8,
            learning_rate: 0.02,
            patience: Some(3),
            threads: 1,
            ..TrainOptions::default()
        });
        let history = trainer.fit(&mut model, &train, &test);
        assert!(history.records().len() < 200, "early stopping never fired");
    }

    #[test]
    fn history_csv_has_one_row_per_epoch() {
        let train = toy_data(16, 10);
        let test = toy_data(8, 11);
        let mut model = SequenceClassifier::new(ModelConfig::tiny(8), 4);
        let trainer = Trainer::new(TrainOptions {
            epochs: 5,
            batch_size: 8,
            eval_every: 2,
            threads: 1,
            ..TrainOptions::default()
        });
        let history = trainer.fit(&mut model, &train, &test);
        let csv = history.to_csv();
        assert_eq!(csv.lines().count(), 6, "{csv}");
        assert!(csv.starts_with("epoch,train_loss"));
        // Evaluation epochs carry six filled columns, others leave blanks.
        let row2: Vec<&str> = csv.lines().nth(2).expect("row").split(',').collect();
        assert_eq!(row2.len(), 6);
        assert!(!row2[2].is_empty(), "epoch 2 evaluated");
        let row1: Vec<&str> = csv.lines().nth(1).expect("row").split(',').collect();
        assert!(row1[2].is_empty(), "epoch 1 not evaluated");
    }

    #[test]
    fn eval_every_skips_epochs() {
        let train = toy_data(8, 6);
        let test = toy_data(8, 7);
        let mut model = SequenceClassifier::new(ModelConfig::tiny(8), 2);
        let trainer = Trainer::new(TrainOptions {
            epochs: 4,
            batch_size: 8,
            eval_every: 2,
            threads: 1,
            ..TrainOptions::default()
        });
        let history = trainer.fit(&mut model, &train, &test);
        let evals = history
            .records()
            .iter()
            .filter(|r| r.test.is_some())
            .count();
        assert_eq!(evals, 2);
    }

    #[test]
    fn parallel_and_serial_gradients_agree() {
        let train = toy_data(12, 8);
        let model = SequenceClassifier::new(ModelConfig::tiny(8), 3);
        let serial = Trainer::new(TrainOptions {
            threads: 1,
            ..TrainOptions::default()
        });
        let parallel = Trainer::new(TrainOptions {
            threads: 4,
            ..TrainOptions::default()
        });
        let ids: Vec<usize> = (0..12).collect();
        let (l1, g1) = serial.batch_gradients(&model, &train, &ids);
        let (l2, g2) = parallel.batch_gradients(&model, &train, &ids);
        assert!((l1 - l2).abs() < 1e-12);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn empty_training_set_panics() {
        let mut model = SequenceClassifier::new(ModelConfig::tiny(4), 0);
        Trainer::new(TrainOptions::default()).fit(&mut model, &[], &[]);
    }
}
