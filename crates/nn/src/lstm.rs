//! From-scratch LSTM cell and layer with full backpropagation-through-time.
//!
//! Implements exactly the formulation in the paper's §III-A ("LSTM inner
//! workings"):
//!
//! ```text
//! i_t = σ(W_i [h_{t−1}, x_t] + b_i)
//! f_t = σ(W_f [h_{t−1}, x_t] + b_f)
//! o_t = σ(W_o [h_{t−1}, x_t] + b_o)
//! C'_t = g(W_C' [h_{t−1}, x_t] + b_C')
//! C_t = f_t ∗ C_{t−1} + i_t ∗ C'_t
//! h_t = o_t ∗ g(C_t)
//! ```
//!
//! where `g` is `tanh` classically or `softsign` in the paper's optimized
//! deployment. With input dim 8 and hidden size 32 the cell holds the
//! paper's 5,248 LSTM parameters: `4 × (32 × (32+8) + 32)`.

use csd_tensor::{Initializer, Matrix, Vector};
use serde::{Deserialize, Serialize};

use crate::activation::Activation;

/// Gate indices into the cell's weight arrays (TensorFlow `i, f, c, o`
/// order, which the weight export in [`crate::weights`] preserves).
pub const GATE_I: usize = 0;
/// Forget gate index.
pub const GATE_F: usize = 1;
/// Cell-candidate (`C'`) index.
pub const GATE_C: usize = 2;
/// Output gate index.
pub const GATE_O: usize = 3;

/// Names for the four gates, indexable by the `GATE_*` constants.
pub const GATE_NAMES: [&str; 4] = ["input", "forget", "candidate", "output"];

/// The recurrent state `(h, C)` carried between timesteps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmState {
    /// Hidden state `h_t`.
    pub h: Vector<f64>,
    /// Cell state `C_t` (never leaves `kernel_hidden_state` on the FPGA).
    pub c: Vector<f64>,
}

impl LstmState {
    /// The all-zero initial state.
    pub fn zeros(hidden: usize) -> Self {
        Self {
            h: Vector::zeros(hidden),
            c: Vector::zeros(hidden),
        }
    }
}

/// Per-timestep cache retained by the forward pass for BPTT.
#[derive(Debug, Clone)]
pub struct StepCache {
    /// Concatenated input `z = [h_{t−1}, x_t]`.
    pub z: Vector<f64>,
    /// Gate pre-activations `a_g = W_g z + b_g` in gate order.
    pub pre: [Vector<f64>; 4],
    /// Gate outputs (`i`, `f`, `C'`, `o`).
    pub gate: [Vector<f64>; 4],
    /// Previous cell state `C_{t−1}`.
    pub c_prev: Vector<f64>,
    /// New cell state `C_t`.
    pub c: Vector<f64>,
    /// New hidden state `h_t`.
    pub h: Vector<f64>,
}

/// Gradients for one LSTM cell, with the same shapes as its parameters.
#[derive(Debug, Clone)]
pub struct LstmGrads {
    /// Per-gate weight gradients (`H × (H+X)` each).
    pub w: [Matrix<f64>; 4],
    /// Per-gate bias gradients.
    pub b: [Vector<f64>; 4],
}

/// A single LSTM cell: four gates over the concatenated `[h_{t−1}, x_t]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmCell {
    input_dim: usize,
    hidden: usize,
    /// Gate weights, each `hidden × (hidden + input_dim)`, gate order
    /// `i, f, c, o`. Column layout is `[h-part | x-part]`, matching the
    /// paper's `[h_{t−1}, x_t]` concatenation.
    w: [Matrix<f64>; 4],
    b: [Vector<f64>; 4],
    cell_act: Activation,
}

impl LstmCell {
    /// Creates a cell with Xavier-initialized weights and zero biases
    /// (forget-gate bias set to 1, the standard trick TensorFlow applies via
    /// `unit_forget_bias=True`).
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` or `hidden` is zero, or `cell_act` is
    /// [`Activation::Sigmoid`] (a sigmoid cell activation cannot represent
    /// negative cell updates).
    pub fn new(input_dim: usize, hidden: usize, cell_act: Activation, seed: u64) -> Self {
        assert!(input_dim > 0 && hidden > 0, "dims must be positive");
        assert!(
            cell_act != Activation::Sigmoid,
            "cell activation must be tanh or softsign"
        );
        let z = hidden + input_dim;
        let w = [
            Initializer::XavierUniform.matrix(hidden, z, seed.wrapping_mul(4).wrapping_add(1)),
            Initializer::XavierUniform.matrix(hidden, z, seed.wrapping_mul(4).wrapping_add(2)),
            Initializer::XavierUniform.matrix(hidden, z, seed.wrapping_mul(4).wrapping_add(3)),
            Initializer::XavierUniform.matrix(hidden, z, seed.wrapping_mul(4).wrapping_add(4)),
        ];
        let mut b = [
            Vector::zeros(hidden),
            Vector::zeros(hidden),
            Vector::zeros(hidden),
            Vector::zeros(hidden),
        ];
        b[GATE_F].as_mut_slice().fill(1.0);
        Self {
            input_dim,
            hidden,
            w,
            b,
            cell_act,
        }
    }

    /// Input dimension `X` (the embedding size).
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden size `H`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// The cell activation `g` (tanh or softsign).
    pub fn cell_activation(&self) -> Activation {
        self.cell_act
    }

    /// Gate weight matrix (gate order `i, f, c, o`).
    ///
    /// # Panics
    ///
    /// Panics if `gate > 3`.
    pub fn weight(&self, gate: usize) -> &Matrix<f64> {
        &self.w[gate]
    }

    /// Gate bias vector.
    ///
    /// # Panics
    ///
    /// Panics if `gate > 3`.
    pub fn bias(&self, gate: usize) -> &Vector<f64> {
        &self.b[gate]
    }

    /// Mutable gate weight (used by weight import).
    pub(crate) fn weight_mut(&mut self, gate: usize) -> &mut Matrix<f64> {
        &mut self.w[gate]
    }

    /// Mutable gate bias (used by weight import).
    pub(crate) fn bias_mut(&mut self, gate: usize) -> &mut Vector<f64> {
        &mut self.b[gate]
    }

    /// Number of trainable parameters: `4 × (H × (H+X) + H)`.
    pub fn num_parameters(&self) -> usize {
        4 * (self.hidden * (self.hidden + self.input_dim) + self.hidden)
    }

    /// One forward timestep, returning the new state and the BPTT cache.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `state` have mismatched dimensions.
    pub fn step(&self, x: &Vector<f64>, state: &LstmState) -> (LstmState, StepCache) {
        assert_eq!(x.len(), self.input_dim, "input dim mismatch");
        assert_eq!(state.h.len(), self.hidden, "hidden dim mismatch");
        let z = state.h.concat(x);
        let mut pre: [Vector<f64>; 4] =
            std::array::from_fn(|g| self.w[g].matvec(&z).add(&self.b[g]));
        let gate: [Vector<f64>; 4] = std::array::from_fn(|g| {
            let act = if g == GATE_C {
                self.cell_act
            } else {
                Activation::Sigmoid
            };
            pre[g].map(|v| act.apply(v))
        });
        // C_t = f ∗ C_{t−1} + i ∗ C'
        let c = gate[GATE_F]
            .hadamard(&state.c)
            .add(&gate[GATE_I].hadamard(&gate[GATE_C]));
        // h_t = o ∗ g(C_t)
        let h = gate[GATE_O].hadamard(&c.map(|v| self.cell_act.apply(v)));
        // `pre` is moved into the cache after `gate` is computed from it.
        let cache = StepCache {
            z,
            pre: std::mem::replace(&mut pre, std::array::from_fn(|_| Vector::zeros(0))),
            gate,
            c_prev: state.c.clone(),
            c: c.clone(),
            h: h.clone(),
        };
        (LstmState { h, c }, cache)
    }

    /// Zero-initialized gradients with this cell's shapes.
    pub fn zero_grads(&self) -> LstmGrads {
        let z = self.hidden + self.input_dim;
        LstmGrads {
            w: std::array::from_fn(|_| Matrix::zeros(self.hidden, z)),
            b: std::array::from_fn(|_| Vector::zeros(self.hidden)),
        }
    }

    /// One BPTT step: consumes `d_h` (gradient wrt `h_t`) and `d_c`
    /// (gradient wrt `C_t` from the future), accumulates into `grads`, and
    /// returns `(d_h_prev, d_c_prev, d_x)`.
    #[allow(clippy::too_many_arguments)]
    pub fn step_backward(
        &self,
        cache: &StepCache,
        d_h: &Vector<f64>,
        d_c_future: &Vector<f64>,
        grads: &mut LstmGrads,
    ) -> (Vector<f64>, Vector<f64>, Vector<f64>) {
        let h = self.hidden;
        // dC_t = dC_future + dh ∗ o ∗ g'(C_t)
        let g_of_c = cache.c.map(|v| self.cell_act.apply(v));
        let mut d_c = Vector::zeros(h);
        for j in 0..h {
            let gp = self.cell_act.derivative(cache.c[j]);
            d_c[j] = d_c_future[j] + d_h[j] * cache.gate[GATE_O][j] * gp;
        }
        // Per-gate pre-activation gradients.
        let mut d_pre: [Vector<f64>; 4] = std::array::from_fn(|_| Vector::zeros(h));
        for j in 0..h {
            // do = dh ∗ g(C_t); da_o = do σ'(a_o)
            d_pre[GATE_O][j] = d_h[j]
                * g_of_c[j]
                * Activation::Sigmoid.derivative_from_output(cache.gate[GATE_O][j]);
            // df = dC ∗ C_{t−1}
            d_pre[GATE_F][j] = d_c[j]
                * cache.c_prev[j]
                * Activation::Sigmoid.derivative_from_output(cache.gate[GATE_F][j]);
            // di = dC ∗ C'
            d_pre[GATE_I][j] = d_c[j]
                * cache.gate[GATE_C][j]
                * Activation::Sigmoid.derivative_from_output(cache.gate[GATE_I][j]);
            // dC' = dC ∗ i
            d_pre[GATE_C][j] =
                d_c[j] * cache.gate[GATE_I][j] * self.cell_act.derivative(cache.pre[GATE_C][j]);
        }
        // Weight/bias gradients: dW_g += da_g ⊗ z ; db_g += da_g.
        let zlen = cache.z.len();
        for ((dpg, gw), gb) in d_pre.iter().zip(&mut grads.w).zip(&mut grads.b) {
            for (r, &dv) in dpg.as_slice().iter().enumerate() {
                if dv == 0.0 {
                    continue;
                }
                for (c, &zc) in cache.z.as_slice().iter().enumerate() {
                    *gw.get_mut(r, c) += dv * zc;
                }
                gb[r] += dv;
            }
        }
        // dz = Σ_g W_gᵀ da_g
        let mut d_z = Vector::zeros(zlen);
        for (wg, dpg) in self.w.iter().zip(&d_pre) {
            d_z = d_z.add(&wg.vecmat(dpg));
        }
        let d_h_prev = Vector::from(d_z.as_slice()[..h].to_vec());
        let d_x = Vector::from(d_z.as_slice()[h..].to_vec());
        // dC_{t−1} = dC_t ∗ f
        let d_c_prev = d_c.hadamard(&cache.gate[GATE_F]);
        (d_h_prev, d_c_prev, d_x)
    }

    /// Applies `params -= lr * grads` in place.
    pub fn apply_gradients(&mut self, grads: &LstmGrads, lr: f64) {
        for g in 0..4 {
            self.w[g] = self.w[g].add(&grads.w[g].scale(-lr));
            self.b[g] = self.b[g].add(&grads.b[g].scale(-lr));
        }
    }
}

/// Runs an [`LstmCell`] over whole sequences, producing the final hidden
/// state (the paper classifies from `h_T` only) and the caches for BPTT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmLayer {
    cell: LstmCell,
}

impl LstmLayer {
    /// Wraps a cell.
    pub fn new(cell: LstmCell) -> Self {
        Self { cell }
    }

    /// The wrapped cell.
    pub fn cell(&self) -> &LstmCell {
        &self.cell
    }

    /// Mutable access to the wrapped cell.
    pub fn cell_mut(&mut self) -> &mut LstmCell {
        &mut self.cell
    }

    /// Forward pass over a sequence of input vectors, returning the final
    /// state and per-step caches.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn forward(&self, xs: &[Vector<f64>]) -> (LstmState, Vec<StepCache>) {
        assert!(!xs.is_empty(), "empty sequence");
        let mut state = LstmState::zeros(self.cell.hidden());
        let mut caches = Vec::with_capacity(xs.len());
        for x in xs {
            let (next, cache) = self.cell.step(x, &state);
            state = next;
            caches.push(cache);
        }
        (state, caches)
    }

    /// Full BPTT from a gradient on the final hidden state.
    ///
    /// Returns the gradient with respect to each input vector (reverse
    /// chronological order re-reversed so index `t` matches input `t`).
    pub fn backward(
        &self,
        caches: &[StepCache],
        d_h_final: &Vector<f64>,
        grads: &mut LstmGrads,
    ) -> Vec<Vector<f64>> {
        let h = self.cell.hidden();
        let mut d_h = d_h_final.clone();
        let mut d_c = Vector::zeros(h);
        let mut d_xs = Vec::with_capacity(caches.len());
        for cache in caches.iter().rev() {
            let (d_h_prev, d_c_prev, d_x) = self.cell.step_backward(cache, &d_h, &d_c, grads);
            d_h = d_h_prev;
            d_c = d_c_prev;
            d_xs.push(d_x);
        }
        d_xs.reverse();
        d_xs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cell(act: Activation) -> LstmCell {
        LstmCell::new(3, 4, act, 7)
    }

    #[test]
    fn paper_parameter_count() {
        let cell = LstmCell::new(8, 32, Activation::Softsign, 0);
        assert_eq!(cell.num_parameters(), 5_248);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let cell = tiny_cell(Activation::Tanh);
        assert!(cell.bias(GATE_F).iter().all(|&v| v == 1.0));
        assert!(cell.bias(GATE_I).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn step_shapes() {
        let cell = tiny_cell(Activation::Softsign);
        let (state, cache) = cell.step(&Vector::zeros(3), &LstmState::zeros(4));
        assert_eq!(state.h.len(), 4);
        assert_eq!(state.c.len(), 4);
        assert_eq!(cache.z.len(), 7);
    }

    #[test]
    fn hidden_state_bounded_by_one() {
        // |h| = |o ∗ g(C)| < 1 since σ < 1 and |g| < 1.
        let cell = tiny_cell(Activation::Softsign);
        let mut state = LstmState::zeros(4);
        for t in 0..200 {
            let x = Vector::from(vec![(t as f64).sin() * 5.0, 1.0, -2.0]);
            state = cell.step(&x, &state).0;
            assert!(state.h.iter().all(|&v| v.abs() < 1.0), "t={t}");
        }
    }

    #[test]
    fn cell_state_growth_at_most_linear() {
        // |C_t| <= f·|C_{t−1}| + i·|C'| <= |C_{t−1}| + 1.
        let cell = tiny_cell(Activation::Tanh);
        let mut state = LstmState::zeros(4);
        for t in 1..100 {
            let x = Vector::from(vec![3.0, -3.0, 3.0]);
            state = cell.step(&x, &state).0;
            assert!(state.c.iter().all(|&v| v.abs() <= t as f64 + 1e-9));
        }
    }

    /// Numerical-gradient check of the full BPTT path — the canonical test
    /// that the hand-derived backward pass is correct.
    #[test]
    fn bptt_matches_numerical_gradient() {
        for act in [Activation::Tanh, Activation::Softsign] {
            let mut cell = tiny_cell(act);
            let layer = LstmLayer::new(cell.clone());
            let xs: Vec<Vector<f64>> = (0..5)
                .map(|t| Vector::from(vec![0.3 * t as f64, -0.2, 0.1 * t as f64]))
                .collect();
            // Loss = sum(h_T): d_h_final = ones.
            let (_, caches) = layer.forward(&xs);
            let mut grads = layer.cell().zero_grads();
            layer.backward(&caches, &Vector::from(vec![1.0; 4]), &mut grads);

            let eps = 1e-6;
            let loss = |cell: &LstmCell| -> f64 {
                let layer = LstmLayer::new(cell.clone());
                let (state, _) = layer.forward(&xs);
                state.h.iter().sum()
            };
            // Spot-check several weight coordinates in every gate.
            for g in 0..4 {
                for &(r, c) in &[(0usize, 0usize), (1, 3), (3, 6), (2, 2)] {
                    let orig = cell.weight(g).get(r, c);
                    *cell.weight_mut(g).get_mut(r, c) = orig + eps;
                    let up = loss(&cell);
                    *cell.weight_mut(g).get_mut(r, c) = orig - eps;
                    let down = loss(&cell);
                    *cell.weight_mut(g).get_mut(r, c) = orig;
                    let numeric = (up - down) / (2.0 * eps);
                    let analytic = grads.w[g].get(r, c);
                    assert!(
                        (numeric - analytic).abs() < 1e-4,
                        "{act:?} gate {g} ({r},{c}): numeric {numeric} vs analytic {analytic}"
                    );
                }
                // And one bias coordinate.
                let orig = cell.bias(g)[1];
                cell.bias_mut(g)[1] = orig + eps;
                let up = loss(&cell);
                cell.bias_mut(g)[1] = orig - eps;
                let down = loss(&cell);
                cell.bias_mut(g)[1] = orig;
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - grads.b[g][1]).abs() < 1e-4,
                    "{act:?} gate {g} bias"
                );
            }
        }
    }

    #[test]
    fn bptt_input_gradient_matches_numerical() {
        let cell = tiny_cell(Activation::Softsign);
        let layer = LstmLayer::new(cell.clone());
        let xs: Vec<Vector<f64>> = (0..4)
            .map(|t| Vector::from(vec![0.2 * t as f64, 0.5, -0.4]))
            .collect();
        let (_, caches) = layer.forward(&xs);
        let mut grads = cell.zero_grads();
        let d_xs = layer.backward(&caches, &Vector::from(vec![1.0; 4]), &mut grads);

        let eps = 1e-6;
        for (t, k) in [(0usize, 1usize), (2, 0), (3, 2)] {
            let bump = |delta: f64| -> f64 {
                let mut xs2 = xs.clone();
                xs2[t][k] += delta;
                let (state, _) = layer.forward(&xs2);
                state.h.iter().sum()
            };
            let numeric = (bump(eps) - bump(-eps)) / (2.0 * eps);
            assert!(
                (numeric - d_xs[t][k]).abs() < 1e-4,
                "input ({t},{k}): numeric {numeric} vs {:?}",
                d_xs[t][k]
            );
        }
    }

    #[test]
    fn apply_gradients_descends() {
        let mut cell = tiny_cell(Activation::Softsign);
        let xs: Vec<Vector<f64>> = (0..3).map(|_| Vector::from(vec![1.0, -1.0, 0.5])).collect();
        let loss = |cell: &LstmCell| {
            let (state, _) = LstmLayer::new(cell.clone()).forward(&xs);
            state.h.iter().sum::<f64>()
        };
        let before = loss(&cell);
        let layer = LstmLayer::new(cell.clone());
        let (_, caches) = layer.forward(&xs);
        let mut grads = cell.zero_grads();
        layer.backward(&caches, &Vector::from(vec![1.0; 4]), &mut grads);
        cell.apply_gradients(&grads, 0.05);
        assert!(loss(&cell) < before);
    }

    #[test]
    #[should_panic(expected = "tanh or softsign")]
    fn sigmoid_cell_activation_rejected() {
        let _ = LstmCell::new(2, 2, Activation::Sigmoid, 0);
    }
}
