//! Item-embedding layer.
//!
//! The paper embeds each sequence item before the LSTM: "it is ideal to
//! incorporate an embedding generation step for each item in a given
//! sequence" (§III-A). With vocabulary `M = 278` and embedding size `O = 8`
//! this contributes the paper's 2,224 embedding parameters.

use csd_tensor::{Initializer, Matrix, Vector};
use serde::{Deserialize, Serialize};

/// A trainable `vocab × dim` embedding table.
///
/// Forward is a row lookup — equivalent to the one-hot × matrix dot product
/// that `kernel_preprocess` performs on the FPGA (§III-B) but without
/// materializing the one-hot vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding {
    table: Matrix<f64>,
}

impl Embedding {
    /// Creates a Xavier-initialized `vocab × dim` table.
    ///
    /// # Panics
    ///
    /// Panics if `vocab` or `dim` is zero.
    pub fn new(vocab: usize, dim: usize, seed: u64) -> Self {
        assert!(vocab > 0 && dim > 0, "embedding dims must be positive");
        Self {
            table: Initializer::XavierUniform.matrix(vocab, dim, seed),
        }
    }

    /// Wraps an existing table.
    pub fn from_table(table: Matrix<f64>) -> Self {
        Self { table }
    }

    /// Vocabulary size `M`.
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Embedding dimension `O`.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Number of trainable parameters (`M × O`).
    pub fn num_parameters(&self) -> usize {
        self.vocab() * self.dim()
    }

    /// The underlying table (rows are item embeddings).
    pub fn table(&self) -> &Matrix<f64> {
        &self.table
    }

    /// Looks up the embedding of `item`.
    ///
    /// # Panics
    ///
    /// Panics if `item` is out of vocabulary.
    pub fn forward(&self, item: usize) -> Vector<f64> {
        assert!(item < self.vocab(), "item {item} out of vocabulary");
        Vector::from(self.table.row(item).to_vec())
    }

    /// Accumulates the gradient `d_x` flowing back into row `item` of
    /// `grad_table`.
    ///
    /// # Panics
    ///
    /// Panics on vocabulary or dimension mismatch.
    pub fn backward(&self, item: usize, d_x: &Vector<f64>, grad_table: &mut Matrix<f64>) {
        assert!(item < self.vocab(), "item {item} out of vocabulary");
        assert_eq!(d_x.len(), self.dim(), "gradient dim mismatch");
        for c in 0..self.dim() {
            *grad_table.get_mut(item, c) += d_x[c];
        }
    }

    /// Applies a scaled gradient step: `table -= lr * grad`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn apply_gradient(&mut self, grad: &Matrix<f64>, lr: f64) {
        self.table = self.table.add(&grad.scale(-lr));
    }

    /// A zero matrix with the table's shape, for gradient accumulation.
    pub fn zero_grad(&self) -> Matrix<f64> {
        Matrix::zeros(self.vocab(), self.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let e = Embedding::new(278, 8, 0);
        assert_eq!(e.num_parameters(), 2_224);
    }

    #[test]
    fn forward_is_row_lookup() {
        let e = Embedding::new(10, 4, 1);
        let v = e.forward(3);
        assert_eq!(v.as_slice(), e.table().row(3));
    }

    #[test]
    fn forward_matches_onehot_vecmat() {
        // kernel_preprocess computes one-hot ⋅ table; lookup must agree.
        let e = Embedding::new(6, 3, 2);
        let mut onehot = Vector::<f64>::zeros(6);
        onehot[4] = 1.0;
        assert_eq!(e.table().vecmat(&onehot), e.forward(4));
    }

    #[test]
    fn backward_accumulates_only_target_row() {
        let e = Embedding::new(5, 2, 3);
        let mut grad = e.zero_grad();
        e.backward(2, &Vector::from(vec![1.0, -1.0]), &mut grad);
        e.backward(2, &Vector::from(vec![0.5, 0.5]), &mut grad);
        assert_eq!(grad.row(2), &[1.5, -0.5]);
        assert_eq!(grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn gradient_step_moves_against_grad() {
        let mut e = Embedding::new(3, 2, 4);
        let before = e.forward(1)[0];
        let mut grad = e.zero_grad();
        *grad.get_mut(1, 0) = 1.0;
        e.apply_gradient(&grad, 0.1);
        assert!((e.forward(1)[0] - (before - 0.1)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_panics() {
        let e = Embedding::new(3, 2, 0);
        let _ = e.forward(3);
    }
}
