//! Flat-parameter optimizers (SGD and Adam).
//!
//! The model exposes its 7,472 parameters as one flat `Vec<f64>`
//! ([`crate::SequenceClassifier::flatten_params`]); optimizers update that
//! flat view, mirroring how deep-learning frameworks treat parameters as a
//! single tensor list.

use serde::{Deserialize, Serialize};

/// A first-order optimizer over a flat parameter vector.
///
/// The trait is sealed in spirit (only used internally by the
/// [`Trainer`](crate::Trainer)), but kept open so downstream code can plug
/// in custom schedules.
pub trait Optimizer {
    /// Applies one update step: mutates `params` given `grads`.
    ///
    /// # Panics
    ///
    /// Implementations panic when `params.len() != grads.len()`.
    fn step(&mut self, params: &mut [f64], grads: &[f64]);

    /// The (current) learning rate, for logging.
    fn learning_rate(&self) -> f64;
}

/// Plain stochastic gradient descent with optional gradient clipping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    lr: f64,
    clip: Option<f64>,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "lr must be positive");
        Self { lr, clip: None }
    }

    /// Enables elementwise gradient clipping at `±clip`.
    ///
    /// # Panics
    ///
    /// Panics if `clip` is not positive.
    pub fn with_clip(mut self, clip: f64) -> Self {
        assert!(clip > 0.0, "clip must be positive");
        self.clip = Some(clip);
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        for (p, &g) in params.iter_mut().zip(grads) {
            let g = match self.clip {
                Some(c) => g.clamp(-c, c),
                None => g,
            };
            *p -= self.lr * g;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// Adam (Kingma & Ba 2015) with bias correction and optional clipping —
/// the de-facto default for LSTM training, and what we use to regenerate
/// the paper's Fig. 4 convergence curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    clip: Option<f64>,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates Adam with the canonical hyperparameters
    /// (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e−8`).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "lr must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: None,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Enables elementwise gradient clipping at `±clip`.
    ///
    /// # Panics
    ///
    /// Panics if `clip` is not positive.
    pub fn with_clip(mut self, clip: f64) -> Self {
        assert!(clip > 0.0, "clip must be positive");
        self.clip = Some(clip);
        self
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.m.is_empty() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        assert_eq!(self.m.len(), params.len(), "optimizer state size changed");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = match self.clip {
                Some(c) => grads[i].clamp(-c, c),
                None => grads[i],
            };
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic bowl: f(p) = Σ (p_i − target_i)²; grad = 2(p − target).
    fn quadratic_grad(params: &[f64], target: &[f64]) -> Vec<f64> {
        params
            .iter()
            .zip(target)
            .map(|(p, t)| 2.0 * (p - t))
            .collect()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let target = [3.0, -2.0, 0.5];
        let mut params = vec![0.0; 3];
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            let g = quadratic_grad(&params, &target);
            opt.step(&mut params, &g);
        }
        for (p, t) in params.iter().zip(&target) {
            assert!((p - t).abs() < 1e-6);
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let target = [1.0, -1.0];
        let mut params = vec![10.0, -10.0];
        let mut opt = Adam::new(0.05);
        for _ in 0..3000 {
            let g = quadratic_grad(&params, &target);
            opt.step(&mut params, &g);
        }
        for (p, t) in params.iter().zip(&target) {
            assert!((p - t).abs() < 1e-3, "{p} vs {t}");
        }
        assert_eq!(opt.steps(), 3000);
    }

    #[test]
    fn clipping_limits_update_magnitude() {
        let mut params = vec![0.0];
        let mut opt = Sgd::new(1.0).with_clip(0.5);
        opt.step(&mut params, &[100.0]);
        assert_eq!(params[0], -0.5);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the first Adam step ≈ lr regardless of grad scale.
        let mut params = vec![0.0];
        let mut opt = Adam::new(0.01);
        opt.step(&mut params, &[1234.5]);
        assert!((params[0] + 0.01).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut opt = Sgd::new(0.1);
        opt.step(&mut [0.0, 1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "lr must be positive")]
    fn invalid_lr_rejected() {
        let _ = Adam::new(-1.0);
    }
}
