//! Trace analysis: the damage timeline of a detonation.
//!
//! The paper's case for in-storage detection is *timeliness*: the defence
//! "resides next to the data that it is protecting and therefore can offer
//! real-time mitigation upon detecting the presence of ransomware" (§I).
//! Quantifying that requires knowing, for a given trace, *when* each file
//! was destroyed — so a detection point can be converted into files lost
//! vs files saved.

use serde::{Deserialize, Serialize};

use crate::api::ApiVocabulary;

/// The damage timeline of one detonation trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DamageTimeline {
    /// Call indices at which a victim file's encryption completed (the
    /// rename that seals the encrypted copy).
    pub file_loss_events: Vec<usize>,
    /// Trace length in calls.
    pub trace_len: usize,
}

impl DamageTimeline {
    /// Extracts the timeline from a trace: a file counts as lost at each
    /// rename (`MoveFileW`/`MoveFileExW`) that follows a destructive write
    /// burst — the sweep's per-file seal. Benign safe-saves also rename,
    /// so the extractor requires either a crypto call (CryptoAPI/CNG
    /// families) or a file-mapping write (Virlock-style embedded-cipher
    /// infection) in the preceding window.
    pub fn from_trace(trace: &[usize], vocab: &ApiVocabulary) -> Self {
        let mv = [vocab.tok("MoveFileW"), vocab.tok("MoveFileExW")];
        let destructive = [
            vocab.tok("CryptEncrypt"),
            vocab.tok("BCryptEncrypt"),
            vocab.tok("MapViewOfFile"),
        ];
        const LOOKBACK: usize = 12;
        let mut file_loss_events = Vec::new();
        for (i, tok) in trace.iter().enumerate() {
            if mv.contains(tok) {
                let start = i.saturating_sub(LOOKBACK);
                if trace[start..i].iter().any(|t| destructive.contains(t)) {
                    file_loss_events.push(i);
                }
            }
        }
        Self {
            file_loss_events,
            trace_len: trace.len(),
        }
    }

    /// Total files lost if the detonation runs to completion.
    pub fn total_files(&self) -> usize {
        self.file_loss_events.len()
    }

    /// Files already lost by call index `at` (exclusive).
    pub fn files_lost_by(&self, at: usize) -> usize {
        self.file_loss_events.iter().filter(|&&i| i < at).count()
    }

    /// Files saved if execution is frozen at call index `at`.
    pub fn files_saved_by(&self, at: usize) -> usize {
        self.total_files() - self.files_lost_by(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::FamilyProfile;
    use crate::sandbox::{Sandbox, WindowsVersion};
    use crate::variant::Variant;

    fn vocab() -> ApiVocabulary {
        ApiVocabulary::windows()
    }

    #[test]
    fn hand_built_trace() {
        let v = vocab();
        // read, encrypt, write, rename  |  plain rename (safe-save)
        let trace = vec![
            v.tok("ReadFile"),
            v.tok("CryptEncrypt"),
            v.tok("WriteFile"),
            v.tok("MoveFileExW"), // loss event at 3
            v.tok("WriteFile"),
            v.tok("ReplaceFileW"),
            v.tok("MoveFileW"), // no crypto in lookback? CryptEncrypt at 1 is within 12
        ];
        let tl = DamageTimeline::from_trace(&trace, &v);
        // Both renames see the crypto call within the 12-call lookback here.
        assert_eq!(tl.file_loss_events[0], 3);
        assert_eq!(tl.files_lost_by(3), 0);
        assert_eq!(tl.files_lost_by(4), 1);
    }

    #[test]
    fn plain_renames_do_not_count() {
        let v = vocab();
        let trace = vec![
            v.tok("WriteFile"),
            v.tok("FlushFileBuffers"),
            v.tok("MoveFileExW"),
        ];
        let tl = DamageTimeline::from_trace(&trace, &v);
        assert_eq!(tl.total_files(), 0);
    }

    #[test]
    fn crypto_families_show_many_loss_events() {
        let v = vocab();
        let sandbox = Sandbox::new(5);
        for name in ["Ryuk", "Lockbit", "Wannacry"] {
            let fam = FamilyProfile::by_name(name).expect("family");
            let variant = Variant::new(fam, 0);
            let trace = sandbox.detonate(&variant, WindowsVersion::Win10);
            let tl = DamageTimeline::from_trace(&trace.calls, &v);
            assert!(tl.total_files() > 20, "{name}: {}", tl.total_files());
        }
    }

    #[test]
    fn virlock_embedded_cipher_is_visible() {
        // Virlock never calls CryptEncrypt; its file-mapping infection
        // writes must still register as loss events.
        let v = vocab();
        let sandbox = Sandbox::new(7);
        let fam = FamilyProfile::by_name("Virlock").expect("family");
        let trace = sandbox.detonate(&Variant::new(fam, 0), WindowsVersion::Win10);
        let tl = DamageTimeline::from_trace(&trace.calls, &v);
        assert!(tl.total_files() > 10, "{}", tl.total_files());
    }

    #[test]
    fn early_freeze_saves_files() {
        let v = vocab();
        let sandbox = Sandbox::new(6);
        let fam = FamilyProfile::by_name("Cerber").expect("family");
        let trace = sandbox.detonate(&Variant::new(fam, 2), WindowsVersion::Win11);
        let tl = DamageTimeline::from_trace(&trace.calls, &v);
        let early = tl.files_saved_by(150);
        let late = tl.files_saved_by(trace.len());
        assert!(early > late);
        assert_eq!(late, 0, "running to completion saves nothing");
        // Monotone.
        assert!(tl.files_saved_by(0) == tl.total_files());
    }
}
