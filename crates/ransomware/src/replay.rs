//! Replayable process-event traces: the corpus as live traffic.
//!
//! The dataset (29K labelled windows, §IV) is a batch artifact; the
//! deployment the paper targets is a *monitor* watching many processes
//! at once. This module bridges the two: [`interleave`] turns a
//! [`Dataset`](crate::dataset::Dataset) into one merged [`EventTrace`]
//! in which every entry becomes a process — spawn, its API calls at
//! jittered microsecond inter-arrival times, exit — and all processes
//! run concurrently. Replaying the trace through a live ingestion
//! service exercises exactly the interleaving pressure (sessions
//! starting and dying mid-stream, verdicts racing exits) that a batch
//! sweep never does, while keeping a per-entry oracle: each process
//! replays one labelled window, so the service's per-process verdicts
//! can be checked 1:1 against offline classification.
//!
//! Everything is seeded: the same `(dataset, seed, profile)` triple
//! yields byte-identical traces, and the text round-trip
//! ([`EventTrace::to_text`] / [`EventTrace::from_text`]) makes a trace
//! a file you can store, diff, and replay later — the load generator
//! and the replay file format are the same thing.

use std::fmt::Write as _;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// What a traced process did at one instant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// Process start, with its image name (the dataset entry's source
    /// key, e.g. `"Wannacry#3/Win10/r2"`).
    Spawn(String),
    /// One API call, by vocabulary index.
    Api(usize),
    /// Process exit.
    Exit,
}

/// One timestamped process event in a replayable trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Microseconds from the trace origin.
    pub t_us: u64,
    /// Process id. [`interleave`] assigns each entry a distinct pid;
    /// hand-built traces may recycle pids to model OS reuse.
    pub pid: u32,
    /// The event.
    pub kind: TraceEventKind,
}

/// Shapes the synthetic arrival process of [`interleave`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayProfile {
    /// Mean inter-arrival gap between one process's API calls, µs.
    pub mean_gap_us: u64,
    /// Each gap is drawn uniformly from
    /// `[mean·(1−jitter), mean·(1+jitter)]`; `0.0` is a fixed cadence.
    pub jitter: f64,
    /// Process start times spread uniformly over `[0, spread_us]`, so
    /// sessions overlap rather than running back to back.
    pub spread_us: u64,
}

impl Default for ReplayProfile {
    fn default() -> Self {
        Self {
            mean_gap_us: 50,
            jitter: 0.5,
            spread_us: 100_000,
        }
    }
}

/// A merged, time-ordered stream of process events — the replay file.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventTrace {
    /// Events in non-decreasing `t_us` order; ties preserve per-pid
    /// program order.
    pub events: Vec<TraceEvent>,
}

impl EventTrace {
    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the trace as line-oriented text, one event per line:
    /// `t_us pid spawn <name>` / `t_us pid api <call>` / `t_us pid exit`.
    /// Spawn names go last on the line so embedded spaces survive.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 24);
        for e in &self.events {
            match &e.kind {
                TraceEventKind::Spawn(name) => {
                    let _ = writeln!(out, "{} {} spawn {}", e.t_us, e.pid, name);
                }
                TraceEventKind::Api(call) => {
                    let _ = writeln!(out, "{} {} api {}", e.t_us, e.pid, call);
                }
                TraceEventKind::Exit => {
                    let _ = writeln!(out, "{} {} exit", e.t_us, e.pid);
                }
            }
        }
        out
    }

    /// Parses a trace written by [`to_text`](Self::to_text). Malformed
    /// lines are reported by number, never panicked on — replay files
    /// are external input.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
            let mut parts = line.splitn(4, ' ');
            let t_us = parts
                .next()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| err("bad timestamp"))?;
            let pid = parts
                .next()
                .and_then(|s| s.parse::<u32>().ok())
                .ok_or_else(|| err("bad pid"))?;
            let kind = match (parts.next(), parts.next()) {
                (Some("spawn"), Some(name)) => TraceEventKind::Spawn(name.to_string()),
                (Some("api"), Some(call)) => {
                    TraceEventKind::Api(call.parse::<usize>().map_err(|_| err("bad call index"))?)
                }
                (Some("exit"), None) => TraceEventKind::Exit,
                _ => return Err(err("bad event kind")),
            };
            events.push(TraceEvent { t_us, pid, kind });
        }
        Ok(Self { events })
    }
}

/// First pid [`interleave`] assigns; entry `i` becomes pid `BASE + i`,
/// so a replay consumer can map a pid back to its dataset entry.
pub const REPLAY_PID_BASE: u32 = 1000;

/// Turns a labelled corpus into interleaved live traffic.
///
/// Every dataset entry becomes one process: pid
/// [`REPLAY_PID_BASE`]` + i`, spawned (name = the entry's source key) at
/// a seeded start time in `[0, profile.spread_us]`, issuing its window's
/// calls at jittered gaps, then exiting one gap after its last call.
/// The merged trace is sorted by timestamp with per-pid program order
/// preserved on ties, so replaying it in order is a faithful
/// interleaving of all sessions. Deterministic: same dataset, seed, and
/// profile → byte-identical trace.
///
/// # Panics
///
/// Panics if the dataset has more than `u32::MAX − REPLAY_PID_BASE`
/// entries (pids would wrap).
pub fn interleave(dataset: &Dataset, seed: u64, profile: ReplayProfile) -> EventTrace {
    let entries = dataset.entries();
    assert!(
        entries.len() < (u32::MAX - REPLAY_PID_BASE) as usize,
        "dataset too large for distinct pids"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let jitter = profile.jitter.clamp(0.0, 1.0);
    let mean = profile.mean_gap_us.max(1) as f64;
    let lo = (mean * (1.0 - jitter)).max(1.0);
    let hi = (mean * (1.0 + jitter)).max(lo);
    let mut events = Vec::with_capacity(entries.iter().map(|e| e.sequence.len() + 2).sum());
    for (i, entry) in entries.iter().enumerate() {
        let pid = REPLAY_PID_BASE + i as u32;
        let mut t = if profile.spread_us == 0 {
            0
        } else {
            rng.random_range(0..=profile.spread_us)
        };
        events.push(TraceEvent {
            t_us: t,
            pid,
            kind: TraceEventKind::Spawn(entry.source.clone()),
        });
        for &call in &entry.sequence {
            t += rng.random_range(lo..=hi) as u64 + 1;
            events.push(TraceEvent {
                t_us: t,
                pid,
                kind: TraceEventKind::Api(call),
            });
        }
        t += rng.random_range(lo..=hi) as u64 + 1;
        events.push(TraceEvent {
            t_us: t,
            pid,
            kind: TraceEventKind::Exit,
        });
    }
    // Stable sort: per-pid timestamps are strictly increasing, so ties
    // across pids keep insertion (program) order within each pid.
    events.sort_by_key(|e| e.t_us);
    EventTrace { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn small() -> Dataset {
        DatasetBuilder::new(11)
            .ransomware_windows(6)
            .benign_windows(6)
            .build()
    }

    #[test]
    fn interleave_is_deterministic_for_a_seed() {
        let ds = small();
        let a = interleave(&ds, 42, ReplayProfile::default());
        let b = interleave(&ds, 42, ReplayProfile::default());
        assert_eq!(a, b);
        let c = interleave(&ds, 43, ReplayProfile::default());
        assert_ne!(a, c, "different seed, different trace");
    }

    #[test]
    fn every_entry_becomes_a_complete_session() {
        let ds = small();
        let trace = interleave(&ds, 7, ReplayProfile::default());
        for (i, entry) in ds.entries().iter().enumerate() {
            let pid = REPLAY_PID_BASE + i as u32;
            let session: Vec<&TraceEvent> = trace.events.iter().filter(|e| e.pid == pid).collect();
            assert_eq!(session.len(), entry.sequence.len() + 2);
            assert_eq!(
                session[0].kind,
                TraceEventKind::Spawn(entry.source.clone()),
                "first event is the spawn"
            );
            assert_eq!(session[session.len() - 1].kind, TraceEventKind::Exit);
            let calls: Vec<usize> = session
                .iter()
                .filter_map(|e| match e.kind {
                    TraceEventKind::Api(c) => Some(c),
                    _ => None,
                })
                .collect();
            assert_eq!(calls, entry.sequence, "program order survives the merge");
        }
    }

    #[test]
    fn merged_trace_is_time_ordered_and_interleaved() {
        let ds = small();
        let trace = interleave(&ds, 3, ReplayProfile::default());
        assert!(
            trace.events.windows(2).all(|w| w[0].t_us <= w[1].t_us),
            "non-decreasing timestamps"
        );
        // With default spread the sessions overlap: some pid's event
        // lands between another pid's events.
        let first_pid = trace.events[0].pid;
        assert!(
            trace.events.iter().take(50).any(|e| e.pid != first_pid),
            "sessions interleave rather than run back to back"
        );
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let ds = small();
        let trace = interleave(&ds, 9, ReplayProfile::default());
        let text = trace.to_text();
        let back = EventTrace::from_text(&text).expect("parses");
        assert_eq!(back, trace);
    }

    #[test]
    fn spawn_names_with_spaces_survive_the_text_format() {
        let trace = EventTrace {
            events: vec![TraceEvent {
                t_us: 5,
                pid: 2,
                kind: TraceEventKind::Spawn("C:\\Program Files\\app one.exe".to_string()),
            }],
        };
        let back = EventTrace::from_text(&trace.to_text()).expect("parses");
        assert_eq!(back, trace);
    }

    #[test]
    fn malformed_replay_lines_are_typed_errors_not_panics() {
        for bad in [
            "x 1 api 3",
            "1 y api 3",
            "1 2 warp 3",
            "1 2 api zork",
            "1 2 spawn",
            "1 2",
        ] {
            assert!(
                EventTrace::from_text(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
        assert!(EventTrace::from_text("  \n\n")
            .expect("blank ok")
            .is_empty());
    }

    #[test]
    fn zero_jitter_zero_spread_is_a_fixed_cadence() {
        let ds = DatasetBuilder::new(1).ransomware_windows(1).build();
        let profile = ReplayProfile {
            mean_gap_us: 10,
            jitter: 0.0,
            spread_us: 0,
        };
        let trace = interleave(&ds, 0, profile);
        let times: Vec<u64> = trace
            .events
            .iter()
            .filter(|e| e.pid == REPLAY_PID_BASE)
            .map(|e| e.t_us)
            .collect();
        let gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.iter().all(|&g| g == gaps[0]), "fixed inter-arrival");
    }
}
