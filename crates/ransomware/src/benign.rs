//! The benign application suite and manual-interaction generator.
//!
//! The paper draws benign traces from "30 popular applications ... selected
//! from Top Ten lists on The Portable Freeware Collection from years 2018
//! through 2021" plus "manual interaction" with the desktop (Appendix A).
//! Each [`BenignProfile`] models one application class as a weighted mix of
//! user actions over the same 278-call vocabulary — including *hard
//! negatives* (backup tools, password managers, archivers, AV scanners)
//! whose file-system and crypto behaviour superficially resembles an
//! encryption loop.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::api::ApiVocabulary;
use crate::sandbox::WindowsVersion;
use crate::variant::TraceBuilder;

/// Relative weights of the behavioural building blocks an app session
/// interleaves.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BehaviorMix {
    /// GUI message-loop pumping and window updates.
    pub ui: u32,
    /// Opening and reading documents/media.
    pub file_read: u32,
    /// Saving files.
    pub file_write: u32,
    /// Directory scanning.
    pub enumeration: u32,
    /// Network traffic (HTTP or sockets).
    pub network: u32,
    /// Registry/settings access.
    pub registry: u32,
    /// Crypto operations (hashing, password vaults, encrypted archives).
    pub crypto: u32,
    /// Clipboard and input polling.
    pub clipboard: u32,
    /// Bulk file encryption (encrypted backups / password-protected
    /// archives): read → encrypt → write → rename, the classic
    /// ransomware-lookalike workflow and the corpus's hardest negatives.
    pub bulk_crypto: u32,
}

/// One benign application profile.
#[derive(Debug, Clone, PartialEq)]
pub struct BenignProfile {
    /// Application name.
    pub name: &'static str,
    /// Behaviour mix sampled during a session.
    pub mix: BehaviorMix,
    /// Mean number of user actions per session (trace-length knob).
    pub actions_mean: u32,
}

impl BenignProfile {
    /// The 30-application suite.
    pub fn suite() -> Vec<BenignProfile> {
        fn p(name: &'static str, mix: BehaviorMix, actions_mean: u32) -> BenignProfile {
            BenignProfile {
                name,
                mix,
                actions_mean,
            }
        }
        let m = |ui, file_read, file_write, enumeration, network, registry, crypto, clipboard| {
            BehaviorMix {
                ui,
                file_read,
                file_write,
                enumeration,
                network,
                registry,
                crypto,
                clipboard,
                bulk_crypto: 0,
            }
        };
        let bulk = |mix: BehaviorMix, bulk_crypto| BehaviorMix { bulk_crypto, ..mix };
        vec![
            p("NotepadX", m(6, 3, 2, 0, 0, 1, 0, 2), 120),
            p("CodePad", m(5, 4, 3, 1, 0, 1, 0, 2), 150),
            p("MarkdownNotes", m(6, 3, 2, 0, 0, 1, 0, 1), 110),
            p("HexProbe", m(4, 5, 2, 0, 0, 1, 0, 1), 100),
            p("MediaPlay", m(7, 6, 0, 1, 1, 1, 0, 0), 140),
            p("TuneBox", m(6, 5, 0, 2, 1, 1, 0, 0), 130),
            p("ClipShow", m(7, 5, 0, 1, 0, 0, 0, 0), 100),
            p("PhotoView", m(6, 5, 1, 2, 0, 1, 0, 1), 120),
            p("PdfLite", m(6, 5, 0, 0, 0, 1, 0, 1), 110),
            p("OfficeMini", m(6, 4, 3, 0, 0, 1, 0, 2), 150),
            p("WebLite", m(5, 2, 1, 0, 8, 1, 0, 1), 180),
            p("MailDart", m(5, 2, 1, 0, 6, 1, 0, 1), 150),
            p("ChatterBox", m(6, 1, 1, 0, 7, 1, 0, 2), 160),
            p("FtpWing", m(3, 3, 3, 2, 7, 1, 0, 0), 140),
            p("TorrentRay", m(3, 3, 4, 1, 8, 1, 0, 0), 170),
            p("DownThemAll", m(3, 1, 4, 0, 8, 1, 0, 0), 150),
            p("SyncDrive", m(2, 5, 5, 4, 6, 1, 0, 0), 180),
            p("FileCommander", m(5, 3, 2, 7, 0, 1, 0, 2), 160),
            p("DiskGauge", m(3, 2, 0, 9, 0, 1, 0, 0), 150),
            p("DupFinder", m(2, 5, 0, 8, 0, 0, 1, 0), 170),
            p("SearchLight", m(3, 3, 0, 9, 0, 1, 0, 1), 160),
            p("ZipNimbus", bulk(m(3, 5, 5, 3, 0, 0, 2, 0), 1), 150),
            p("SevenPack", bulk(m(3, 5, 5, 2, 0, 0, 2, 0), 1), 140),
            p("BackupBee", bulk(m(2, 6, 6, 5, 0, 1, 1, 0), 2), 200),
            p("VaultKey", bulk(m(5, 2, 2, 0, 1, 1, 6, 2), 1), 120),
            p("HashCheck", m(2, 6, 0, 2, 0, 0, 6, 0), 110),
            p("AvScanLite", m(2, 7, 0, 8, 1, 2, 2, 0), 220),
            p("RegTidy", m(3, 1, 1, 1, 0, 9, 0, 0), 130),
            p("SysPulse", m(5, 1, 0, 1, 1, 3, 0, 0), 140),
            p("SnapShotter", m(6, 1, 2, 0, 0, 1, 0, 4), 110),
        ]
    }

    /// Looks an application up by name.
    pub fn by_name(name: &str) -> Option<BenignProfile> {
        Self::suite().into_iter().find(|p| p.name == name)
    }

    /// Generates the API trace of one interactive session.
    ///
    /// Deterministic in `(self, os, seed)`.
    pub fn generate(&self, vocab: &ApiVocabulary, os: WindowsVersion, seed: u64) -> Vec<usize> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ hash(self.name));
        let mut b = TraceBuilder::new(vocab, &mut rng, os);
        b.prologue();
        app_startup(&mut b);
        let total: u32 = self.mix.ui
            + self.mix.file_read
            + self.mix.file_write
            + self.mix.enumeration
            + self.mix.network
            + self.mix.registry
            + self.mix.crypto
            + self.mix.clipboard
            + self.mix.bulk_crypto;
        assert!(total > 0, "behaviour mix must be non-empty");
        let actions = self.actions_mean + b.rng.random_range(0..=self.actions_mean / 4);
        for _ in 0..actions {
            let mut pick = b.rng.random_range(0..total);
            let mix = self.mix;
            let mut take = |w: u32| {
                if pick < w {
                    true
                } else {
                    pick -= w;
                    false
                }
            };
            if take(mix.ui) {
                ui_pump(&mut b);
            } else if take(mix.file_read) {
                read_document(&mut b);
            } else if take(mix.file_write) {
                save_document(&mut b);
            } else if take(mix.enumeration) {
                scan_directory(&mut b);
            } else if take(mix.network) {
                network_burst(&mut b);
            } else if take(mix.registry) {
                settings_access(&mut b);
            } else if take(mix.crypto) {
                crypto_work(&mut b);
            } else if take(mix.clipboard) {
                clipboard_touch(&mut b);
            } else {
                bulk_encrypt_files(&mut b);
            }
        }
        app_shutdown(&mut b);
        b.finish()
    }
}

/// The manual-interaction trace: a user driving the desktop (explorer,
/// window switching, clipboard, launching programs).
pub fn manual_interaction(vocab: &ApiVocabulary, os: WindowsVersion, seed: u64) -> Vec<usize> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ hash("manual-interaction"));
    let mut b = TraceBuilder::new(vocab, &mut rng, os);
    b.prologue();
    app_startup(&mut b);
    let actions = 220 + b.rng.random_range(0..60);
    for _ in 0..actions {
        match b.rng.random_range(0..10) {
            0..=3 => ui_pump(&mut b),
            4 => scan_directory(&mut b),
            5 => clipboard_touch(&mut b),
            6 => settings_access(&mut b),
            7 => {
                // Launching a program from the shell.
                b.choice(&["ShellExecuteW", "CreateProcessW"]);
                b.push("WaitForSingleObject");
            }
            8 => read_document(&mut b),
            _ => {
                b.push("GetCursorPos");
                b.choice(&["GetKeyState", "GetAsyncKeyState"]);
                b.maybe(0.5, "Sleep");
            }
        }
    }
    app_shutdown(&mut b);
    b.finish()
}

fn hash(name: &str) -> u64 {
    name.bytes().fold(0x9e37_79b9_7f4a_7c15u64, |h, b| {
        (h ^ b as u64)
            .rotate_left(5)
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
    })
}

pub(crate) fn app_startup(b: &mut TraceBuilder<'_, '_>) {
    b.push("RegisterClassExW");
    b.push("CreateWindowExW");
    b.push("ShowWindow");
    b.push("UpdateWindow");
    b.push("CoInitializeEx");
    b.maybe(0.6, "CoCreateInstance");
    b.push("SHGetKnownFolderPath");
    b.push("RegOpenKeyExW");
    b.push_n("RegQueryValueExW", 3);
    b.push("RegCloseKey");
}

pub(crate) fn ui_pump(b: &mut TraceBuilder<'_, '_>) {
    for _ in 0..b.rng.random_range(2..6) {
        b.choice(&["GetMessageW", "PeekMessageW"]);
        b.push("TranslateMessage");
        b.push("DispatchMessageW");
        b.maybe(0.3, "DefWindowProcW");
    }
    b.maybe(0.4, "InvalidateRect");
    b.maybe(0.3, "GetDC");
    b.maybe(0.3, "BitBlt");
    b.maybe(0.3, "ReleaseDC");
    b.maybe(0.2, "SendMessageW");
}

pub(crate) fn read_document(b: &mut TraceBuilder<'_, '_>) {
    b.push("GetFileAttributesW");
    b.choice(&["CreateFileW", "NtCreateFile"]);
    b.choice(&["GetFileSizeEx", "GetFileSize"]);
    let chunks = b.rng.random_range(1..5);
    for _ in 0..chunks {
        b.choice(&["ReadFile", "NtReadFile"]);
    }
    b.maybe(0.3, "SetFilePointerEx");
    b.choice(&["CloseHandle", "NtClose"]);
    b.maybe(0.5, "SetWindowTextW");
}

fn save_document(b: &mut TraceBuilder<'_, '_>) {
    b.push("GetTempFileNameW");
    b.push("CreateFileW");
    let chunks = b.rng.random_range(1..4);
    for _ in 0..chunks {
        b.choice(&["WriteFile", "NtWriteFile"]);
    }
    b.push("FlushFileBuffers");
    b.push("CloseHandle");
    // Safe-save pattern: replace the original via rename.
    b.maybe(0.7, "ReplaceFileW");
    b.maybe(0.3, "MoveFileExW");
}

fn scan_directory(b: &mut TraceBuilder<'_, '_>) {
    b.push("FindFirstFileW");
    let entries = b.rng.random_range(4..15);
    for _ in 0..entries {
        b.push("FindNextFileW");
        b.maybe(0.3, "GetFileAttributesExW");
    }
    b.push("FindClose");
}

fn network_burst(b: &mut TraceBuilder<'_, '_>) {
    if b.rng.random::<f64>() < 0.5 {
        b.push("InternetOpenW");
        b.push("InternetConnectW");
        b.push("HttpOpenRequestW");
        b.push("HttpSendRequestW");
        let reps = b.rng.random_range(1..6);

        b.push_n("InternetReadFile", reps);
        b.push("InternetCloseHandle");
    } else {
        b.push("socket");
        b.push("connect");
        for _ in 0..b.rng.random_range(1..5) {
            b.choice(&["send", "WSASend"]);
            b.choice(&["recv", "WSARecv"]);
        }
        b.push("closesocket");
    }
}

pub(crate) fn settings_access(b: &mut TraceBuilder<'_, '_>) {
    b.push("RegOpenKeyExW");
    let reps = b.rng.random_range(1..4);

    b.push_n("RegQueryValueExW", reps);
    b.maybe(0.3, "RegSetValueExW");
    b.maybe(0.2, "RegEnumValueW");
    b.push("RegCloseKey");
}

fn crypto_work(b: &mut TraceBuilder<'_, '_>) {
    // Hashing or vault access: context + hash, rarely bulk encryption.
    b.choice(&["CryptAcquireContextW", "BCryptOpenAlgorithmProvider"]);
    b.push("CryptCreateHash");
    let reps = b.rng.random_range(1..4);

    b.push_n("CryptHashData", reps);
    b.push("CryptDestroyHash");
    b.maybe(0.25, "CryptEncrypt");
    b.maybe(0.25, "CryptDecrypt");
    b.choice(&["CryptReleaseContext", "BCryptCloseAlgorithmProvider"]);
}

/// Encrypted-backup / password-archive workflow: per file, read →
/// `CryptEncrypt` → write → rename into the archive. Deliberately shaped
/// like one iteration of a ransomware encryption sweep.
fn bulk_encrypt_files(b: &mut TraceBuilder<'_, '_>) {
    b.push("FindFirstFileW");
    let files = b.rng.random_range(2..6);
    for _ in 0..files {
        b.push("FindNextFileW");
        b.push("GetFileAttributesW");
        b.choice(&["CreateFileW", "NtCreateFile"]);
        b.choice(&["GetFileSizeEx", "GetFileSize"]);
        let chunks = b.rng.random_range(1..4);
        for _ in 0..chunks {
            b.choice(&["ReadFile", "NtReadFile"]);
            b.push("CryptEncrypt");
            b.choice(&["WriteFile", "NtWriteFile"]);
        }
        b.push("SetEndOfFile");
        b.choice(&["CloseHandle", "NtClose"]);
        b.maybe(0.6, "MoveFileExW");
    }
    b.push("FindClose");
}

pub(crate) fn clipboard_touch(b: &mut TraceBuilder<'_, '_>) {
    b.push("OpenClipboard");
    b.choice(&["GetClipboardData", "SetClipboardData"]);
    b.maybe(0.2, "EmptyClipboard");
    b.push("CloseClipboard");
}

fn app_shutdown(b: &mut TraceBuilder<'_, '_>) {
    b.maybe(0.6, "RegOpenKeyExW");
    b.maybe(0.6, "RegSetValueExW");
    b.maybe(0.6, "RegCloseKey");
    b.push("DestroyWindow");
    b.push("CoUninitialize");
    b.push("ExitProcess");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> ApiVocabulary {
        ApiVocabulary::windows()
    }

    #[test]
    fn suite_has_30_applications() {
        let suite = BenignProfile::suite();
        assert_eq!(suite.len(), 30);
        let mut names: Vec<&str> = suite.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30, "names are unique");
    }

    #[test]
    fn generation_is_deterministic() {
        let v = vocab();
        let app = BenignProfile::by_name("BackupBee").expect("app");
        let a = app.generate(&v, WindowsVersion::Win10, 5);
        let b = app.generate(&v, WindowsVersion::Win10, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn all_apps_produce_valid_long_traces() {
        let v = vocab();
        for app in BenignProfile::suite() {
            let t = app.generate(&v, WindowsVersion::Win11, 1);
            assert!(t.len() >= 300, "{}: {}", app.name, t.len());
            assert!(t.iter().all(|&tok| tok < v.len()));
        }
    }

    #[test]
    fn benign_traces_lack_mass_rename_signature() {
        // Ransomware renames nearly every file it touches; benign apps
        // rename only on safe-saves. The per-call rate separates them.
        let v = vocab();
        let mv = [v.tok("MoveFileExW"), v.tok("MoveFileW")];
        for app in BenignProfile::suite() {
            let t = app.generate(&v, WindowsVersion::Win10, 2);
            let renames = t.iter().filter(|&&x| mv.contains(&x)).count();
            let rate = renames as f64 / t.len() as f64;
            assert!(rate < 0.03, "{}: rename rate {rate}", app.name);
        }
    }

    #[test]
    fn manual_interaction_is_gui_heavy() {
        let v = vocab();
        let t = manual_interaction(&v, WindowsVersion::Win10, 3);
        assert!(t.len() >= 300);
        let gui: usize = ["GetMessageW", "PeekMessageW", "DispatchMessageW"]
            .iter()
            .map(|n| {
                let tok = v.tok(n);
                t.iter().filter(|&&x| x == tok).count()
            })
            .sum();
        assert!(gui * 10 > t.len(), "GUI calls should be prominent");
    }

    #[test]
    fn hard_negatives_do_use_crypto() {
        let v = vocab();
        let vault = BenignProfile::by_name("VaultKey").expect("app");
        let t = vault.generate(&v, WindowsVersion::Win10, 7);
        let hash_tok = v.tok("CryptHashData");
        assert!(t.iter().filter(|&&x| x == hash_tok).count() > 5);
    }
}
