//! The ten ransomware families of the paper's Table II.
//!
//! | Family      | Variants | Encryption | Self-propagation |
//! |-------------|----------|------------|------------------|
//! | Ryuk        | 5        | ✓          | ✓                |
//! | Lockbit     | 6        | ✓          | ✓                |
//! | Teslacrypt  | 10       | ✓          | ×                |
//! | Virlock     | 11       | ✓          | ×                |
//! | Cryptowall  | 8        | ✓          | ×                |
//! | Cerber      | 9        | ✓          | ×                |
//! | Wannacry    | 7        | ✓          | ✓                |
//! | Locky       | 6        | ✓          | ×                |
//! | Chimera     | 9        | ✓          | ×                |
//! | BadRabbit   | 5        | ✓          | ✓                |
//!
//! Each profile also carries the behavioural knobs the trace generator
//! uses — documented per field — reflecting the families' published
//! behaviour (C2 styles, CryptoAPI vs CNG usage, worm modules, Virlock's
//! polymorphic file infection, …).

use serde::{Deserialize, Serialize};

/// Which Windows crypto stack a family's encryption loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CryptoStack {
    /// Classic advapi32 CryptoAPI (`CryptAcquireContext`/`CryptEncrypt`).
    CryptoApi,
    /// Cryptography Next Generation (`BCrypt*`).
    Cng,
    /// Custom/embedded cipher: few crypto API calls, heavy read/write.
    Embedded,
}

/// A ransomware family's behaviour profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyProfile {
    /// Family name as listed in Table II.
    pub name: &'static str,
    /// Number of variants aggregated in the paper's corpus.
    pub variants: u32,
    /// All corpus families encrypt (locker-only ransomware is obsolete).
    pub encrypts: bool,
    /// Worm-like lateral movement (Table II's self-propagation column).
    pub self_propagates: bool,
    /// Crypto stack used by the encryption loop.
    pub crypto_stack: CryptoStack,
    /// Contacts a C2 server before encrypting (key exchange / reporting).
    pub c2_before_encrypt: bool,
    /// Deletes volume shadow copies before encrypting.
    pub deletes_shadow_copies: bool,
    /// Establishes registry/service persistence.
    pub persistence: bool,
    /// Mean number of files encrypted per detonation (trace-length knob).
    pub files_encrypted_mean: u32,
    /// Anti-analysis behaviour intensity 0–3 (sleeps, debugger probes).
    pub anti_analysis: u8,
    /// Virlock-style polymorphic file infection (re-writes executables).
    pub polymorphic_infection: bool,
}

impl FamilyProfile {
    /// All ten families, in Table II order.
    pub fn all() -> Vec<FamilyProfile> {
        vec![
            FamilyProfile {
                name: "Ryuk",
                variants: 5,
                encrypts: true,
                self_propagates: true,
                crypto_stack: CryptoStack::CryptoApi,
                c2_before_encrypt: false,
                deletes_shadow_copies: true,
                persistence: true,
                files_encrypted_mean: 60,
                anti_analysis: 2,
                polymorphic_infection: false,
            },
            FamilyProfile {
                name: "Lockbit",
                variants: 6,
                encrypts: true,
                self_propagates: true,
                crypto_stack: CryptoStack::Cng,
                c2_before_encrypt: false,
                deletes_shadow_copies: true,
                persistence: true,
                files_encrypted_mean: 80,
                anti_analysis: 3,
                polymorphic_infection: false,
            },
            FamilyProfile {
                name: "Teslacrypt",
                variants: 10,
                encrypts: true,
                self_propagates: false,
                crypto_stack: CryptoStack::CryptoApi,
                c2_before_encrypt: true,
                deletes_shadow_copies: true,
                persistence: true,
                files_encrypted_mean: 50,
                anti_analysis: 1,
                polymorphic_infection: false,
            },
            FamilyProfile {
                name: "Virlock",
                variants: 11,
                encrypts: true,
                self_propagates: false,
                crypto_stack: CryptoStack::Embedded,
                c2_before_encrypt: false,
                deletes_shadow_copies: false,
                persistence: true,
                files_encrypted_mean: 45,
                anti_analysis: 2,
                polymorphic_infection: true,
            },
            FamilyProfile {
                name: "Cryptowall",
                variants: 8,
                encrypts: true,
                self_propagates: false,
                crypto_stack: CryptoStack::CryptoApi,
                c2_before_encrypt: true,
                deletes_shadow_copies: true,
                persistence: true,
                files_encrypted_mean: 55,
                anti_analysis: 2,
                polymorphic_infection: false,
            },
            FamilyProfile {
                name: "Cerber",
                variants: 9,
                encrypts: true,
                self_propagates: false,
                crypto_stack: CryptoStack::CryptoApi,
                c2_before_encrypt: false,
                deletes_shadow_copies: true,
                persistence: false,
                files_encrypted_mean: 65,
                anti_analysis: 2,
                polymorphic_infection: false,
            },
            FamilyProfile {
                name: "Wannacry",
                variants: 7,
                encrypts: true,
                self_propagates: true,
                crypto_stack: CryptoStack::CryptoApi,
                c2_before_encrypt: true,
                deletes_shadow_copies: true,
                persistence: true,
                files_encrypted_mean: 70,
                anti_analysis: 1,
                polymorphic_infection: false,
            },
            FamilyProfile {
                name: "Locky",
                variants: 6,
                encrypts: true,
                self_propagates: false,
                crypto_stack: CryptoStack::CryptoApi,
                c2_before_encrypt: true,
                deletes_shadow_copies: true,
                persistence: false,
                files_encrypted_mean: 55,
                anti_analysis: 1,
                polymorphic_infection: false,
            },
            FamilyProfile {
                name: "Chimera",
                variants: 9,
                encrypts: true,
                self_propagates: false,
                crypto_stack: CryptoStack::Cng,
                c2_before_encrypt: true,
                deletes_shadow_copies: false,
                persistence: false,
                files_encrypted_mean: 50,
                anti_analysis: 1,
                polymorphic_infection: false,
            },
            FamilyProfile {
                name: "BadRabbit",
                variants: 5,
                encrypts: true,
                self_propagates: true,
                crypto_stack: CryptoStack::CryptoApi,
                c2_before_encrypt: false,
                deletes_shadow_copies: false,
                persistence: true,
                files_encrypted_mean: 60,
                anti_analysis: 2,
                polymorphic_infection: false,
            },
        ]
    }

    /// Looks a family up by name.
    pub fn by_name(name: &str) -> Option<FamilyProfile> {
        Self::all().into_iter().find(|f| f.name == name)
    }

    /// Total variants across all families.
    ///
    /// Note: the paper's prose claims "78 variants", but Table II's
    /// per-family counts sum to 76; we reproduce Table II as ground truth
    /// (see EXPERIMENTS.md).
    pub fn total_variants() -> u32 {
        Self::all().iter().map(|f| f.variants).sum()
    }
}

/// A row of the regenerated Table II.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Family name.
    pub family: String,
    /// Variant count.
    pub instances: u32,
    /// Encryption column.
    pub encryption: bool,
    /// Self-propagation column.
    pub self_propagation: bool,
}

/// Regenerates Table II from the family profiles.
pub fn table2() -> Vec<Table2Row> {
    FamilyProfile::all()
        .into_iter()
        .map(|f| Table2Row {
            family: f.name.to_string(),
            instances: f.variants,
            encryption: f.encrypts,
            self_propagation: f.self_propagates,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_families_table2_variants() {
        assert_eq!(FamilyProfile::all().len(), 10);
        // Table II sums to 76 (the prose says 78 — a paper-internal
        // inconsistency we resolve in favour of the table).
        assert_eq!(FamilyProfile::total_variants(), 76);
    }

    #[test]
    fn table2_matches_paper() {
        let t = table2();
        let expect: &[(&str, u32, bool)] = &[
            ("Ryuk", 5, true),
            ("Lockbit", 6, true),
            ("Teslacrypt", 10, false),
            ("Virlock", 11, false),
            ("Cryptowall", 8, false),
            ("Cerber", 9, false),
            ("Wannacry", 7, true),
            ("Locky", 6, false),
            ("Chimera", 9, false),
            ("BadRabbit", 5, true),
        ];
        assert_eq!(t.len(), expect.len());
        for (row, &(name, n, prop)) in t.iter().zip(expect) {
            assert_eq!(row.family, name);
            assert_eq!(row.instances, n);
            assert!(row.encryption, "all families encrypt");
            assert_eq!(row.self_propagation, prop, "{name}");
        }
    }

    #[test]
    fn four_families_self_propagate() {
        let worms = FamilyProfile::all()
            .iter()
            .filter(|f| f.self_propagates)
            .count();
        assert_eq!(worms, 4);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            FamilyProfile::by_name("Wannacry").map(|f| f.variants),
            Some(7)
        );
        assert!(FamilyProfile::by_name("NotAFamily").is_none());
    }

    #[test]
    fn virlock_is_the_polymorphic_one() {
        let all = FamilyProfile::all();
        let poly: Vec<&str> = all
            .iter()
            .filter(|f| f.polymorphic_infection)
            .map(|f| f.name)
            .collect();
        assert_eq!(poly, vec!["Virlock"]);
    }
}
