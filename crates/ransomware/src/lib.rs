//! Synthetic Cuckoo-style sandbox corpus for ransomware detection.
//!
//! The reproduced paper (DSN-S 2024, §IV and Appendix A) builds its dataset
//! by detonating 78 variants from ten ransomware families in a Cuckoo
//! sandbox on Windows 10/11, recording every API call, and slicing the
//! traces into sliding windows of length 100; benign windows come from 30
//! popular portable applications plus manual desktop interaction. The
//! result: 29K sequences, 46% ransomware (13,340 ransomware / 15,660
//! benign) over a 278-call vocabulary.
//!
//! Real malware cannot be detonated here, so this crate *synthesizes* the
//! corpus: behaviour-model generators reproduce the phase structure of each
//! family (reconnaissance → key setup → \[propagation\] → file-encryption
//! loop → ransom note / persistence) and of each benign workload, over the
//! same 278-call vocabulary. Detection rests on the distributional and
//! sequential structure of the calls — which the generators control — not
//! on binary artifacts (see DESIGN.md §2 for the substitution argument).
//!
//! - [`api`] — the 278-call Windows API vocabulary, organized by category.
//! - [`analysis`] — damage timelines (when each file is destroyed), for
//!   mitigation-value accounting.
//! - [`family`] — the ten family profiles of Table II.
//! - [`variant`] — per-variant behaviour models emitting API traces.
//! - [`benign`] — the 30-application benign suite and manual interaction.
//! - [`sandbox`] — the Cuckoo-replacement executor (Windows 10/11).
//! - [`window`] — sliding-window extraction (length 100).
//! - [`dataset`] — corpus assembly, CSV round-trip, train/test splits.
//! - [`replay`] — the corpus as interleaved live traffic: a replayable
//!   process-event trace format plus the seeded load generator.
//!
//! # Example
//!
//! ```rust
//! use csd_ransomware::{api::ApiVocabulary, dataset::DatasetBuilder};
//!
//! let vocab = ApiVocabulary::windows();
//! assert_eq!(vocab.len(), 278); // M = 278 ⇒ 278 × 8 = 2,224 embeddings
//!
//! // A small corpus for tests: 200 ransomware + 200 benign windows.
//! let ds = DatasetBuilder::new(7).ransomware_windows(200).benign_windows(200).build();
//! assert_eq!(ds.len(), 400);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod api;
pub mod benign;
pub mod chaos;
pub mod dataset;
pub mod family;
pub mod replay;
pub mod sandbox;
pub mod variant;
pub mod window;

pub use analysis::DamageTimeline;
pub use api::{ApiCall, ApiCategory, ApiVocabulary};
pub use benign::BenignProfile;
pub use chaos::{ChaosConfig, ChaosCounters, ChaosOp, ChaosSchedule};
pub use dataset::{Dataset, DatasetBuilder, SplitKind};
pub use family::{FamilyProfile, Table2Row};
pub use replay::{interleave, EventTrace, ReplayProfile, TraceEvent, TraceEventKind};
pub use sandbox::{ApiTrace, Sandbox, TraceLabel, WindowsVersion};
pub use variant::Variant;
pub use window::{sliding_windows, SlidingWindows, WINDOW_LEN};
