//! Deterministic host-layer chaos for replay traffic.
//!
//! The device sim already has a seeded fault plan (`csd::fault`) for
//! datapath failures — corrupted transfers, stalled kernels, brownouts.
//! This module is its *host-side* mirror: the failure classes that hit
//! the ingestion service rather than the accelerator. A sentry that
//! only survives a healthy host is not crash-safe; this plan lets every
//! campaign cell replay the same traffic under the same misbehaviour,
//! exactly reproducibly.
//!
//! Chaos classes (mapped to host failure modes in DESIGN.md §5j):
//!
//! - **Kill** — the sentry process dies (`kill -9`) after a configured
//!   number of delivered frames. The unsynced journal tail is lost; the
//!   next incarnation recovers from checkpoint + journal and producers
//!   re-send from the durable cursor (at-least-once).
//! - **Duplicate** — a frame is delivered twice back to back, the
//!   classic at-least-once re-send after a lost acknowledgement.
//! - **Reset** — a producer's connection drops; on reconnect it
//!   conservatively re-sends its last unacknowledged frame. The
//!   schedule materializes the re-send as a following `Deliver`, so
//!   drivers treat `Reset` purely as a reconnect marker.
//! - **Reorder** — two *adjacent, different-pid* frames swap. Per-pid
//!   program order is never violated (a single connection is FIFO; only
//!   cross-connection arrival order races), so session windows stay
//!   well-formed while cross-session interleaving is perturbed.
//! - **Delay** — delivery stalls for a burst. Drivers model it as a
//!   poll-starved stretch, which is what builds the backlog that the
//!   bounded-staleness overload ladder exists to bound.
//!
//! The plan only *decides* chaos; enforcement lives in the replay
//! driver (`exp_chaos`), which maps each [`ChaosOp`] onto the durable
//! sentry under test. Everything is seeded SplitMix64: the same
//! `(trace, seed, config)` triple yields byte-identical schedules.

use serde::{Deserialize, Serialize};

use crate::replay::{EventTrace, TraceEvent};

/// Per-class chaos probabilities and the kill schedule.
///
/// Probabilities are per *delivered frame*, matching the granularity
/// at which a real transport misbehaves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Probability a frame is delivered twice back to back.
    pub duplicate: f64,
    /// Probability a frame swaps with the next frame when their pids
    /// differ (same-pid neighbours never swap).
    pub reorder: f64,
    /// Probability a connection reset precedes a frame; the previous
    /// frame (if any) is re-sent after the reset.
    pub reset: f64,
    /// Probability a delivery stall precedes a frame.
    pub delay: f64,
    /// How many events each stall withholds polling for (the stall
    /// magnitude, in driver poll-budget units).
    pub delay_events: u64,
    /// Kill the consumer after these delivered-frame counts. Offsets
    /// past the end of the schedule never fire; duplicates are
    /// collapsed.
    pub kill_at: Vec<u64>,
}

impl ChaosConfig {
    /// A plan that injects nothing (explicit baseline).
    pub fn none() -> Self {
        Self {
            duplicate: 0.0,
            reorder: 0.0,
            reset: 0.0,
            delay: 0.0,
            delay_events: 0,
            kill_at: Vec::new(),
        }
    }

    /// Duplicate / reorder / delay at probability `rate`, resets at a
    /// quarter of it (whole-connection drops are rarer than message
    /// races), 64-event stalls, no kills.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    pub fn uniform(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "chaos rate must be in [0,1]");
        Self {
            duplicate: rate,
            reorder: rate,
            reset: rate / 4.0,
            delay: rate,
            delay_events: 64,
            kill_at: Vec::new(),
        }
    }

    /// The same config with kills at the given delivered-frame counts.
    pub fn with_kills(mut self, kill_at: Vec<u64>) -> Self {
        self.kill_at = kill_at;
        self
    }

    /// `true` when every probability is zero and no kill is scheduled.
    pub fn is_none(&self) -> bool {
        self.duplicate == 0.0
            && self.reorder == 0.0
            && self.reset == 0.0
            && self.delay == 0.0
            && self.kill_at.is_empty()
    }
}

/// One step of a chaos schedule, interpreted by the replay driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChaosOp {
    /// Hand this frame to the ingest path. Every `Deliver` corresponds
    /// to exactly one journal append on the consumer, which is what
    /// makes [`ChaosSchedule::index_after_delivery`] a valid resume
    /// cursor.
    Deliver(TraceEvent),
    /// A producer connection dropped and reconnected. The conservative
    /// re-send of its last frame follows as an ordinary `Deliver`.
    Reset,
    /// Delivery stalls: the driver withholds polling for this many
    /// events, building real backlog.
    Delay(u64),
    /// The consumer process dies here (`kill -9`). The driver crashes
    /// the durable sentry, reopens it, and rewinds its cursor to
    /// [`ChaosSchedule::index_after_delivery`]\(durable_events).
    Kill,
}

/// Running tallies of injected chaos, by class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChaosCounters {
    /// Frames delivered (including duplicate and re-sent copies).
    pub delivered: u64,
    /// Back-to-back duplicate deliveries injected.
    pub duplicated: u64,
    /// Adjacent different-pid swaps performed.
    pub reordered: u64,
    /// Connection resets injected.
    pub resets: u64,
    /// Delivery stalls injected.
    pub delays: u64,
    /// Consumer kills scheduled.
    pub kills: u64,
}

impl ChaosCounters {
    /// Total chaos injections across all classes (delivery excluded).
    pub fn total(&self) -> u64 {
        self.duplicated + self.reordered + self.resets + self.delays + self.kills
    }
}

/// SplitMix64, vendored inline like the device fault plan's generator:
/// the exact stream is part of the schedule's reproducibility contract.
#[derive(Debug, Clone, Copy)]
struct ChaosRng(u64);

impl ChaosRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.uniform() < p
    }
}

/// A fully materialized chaos schedule: the trace, perturbed.
///
/// Invariants the constructor guarantees (and the tests pin):
///
/// - every original frame appears as a `Deliver` at least once — chaos
///   never silently drops traffic; loss only happens through kills and
///   the journal's unsynced tail, which the resume protocol re-sends;
/// - per-pid program order of first deliveries matches the trace —
///   only cross-pid arrival order is perturbed;
/// - the same `(trace, seed, config)` yields a byte-identical schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosSchedule {
    /// The ops, in driver execution order.
    pub ops: Vec<ChaosOp>,
    /// What was injected while building the schedule.
    pub counters: ChaosCounters,
}

impl ChaosSchedule {
    /// Builds the schedule for `trace` under `config`, seeded.
    pub fn plan(trace: &EventTrace, seed: u64, config: &ChaosConfig) -> Self {
        let mut rng = ChaosRng(seed);
        let mut counters = ChaosCounters::default();

        // Pass 1: adjacent different-pid swaps over the frame order.
        let mut frames: Vec<TraceEvent> = trace.events.clone();
        if config.reorder > 0.0 {
            let mut i = 0;
            while i + 1 < frames.len() {
                if frames[i].pid != frames[i + 1].pid && rng.chance(config.reorder) {
                    frames.swap(i, i + 1);
                    counters.reordered += 1;
                    i += 2; // a swapped pair is settled; no triple shuffles
                } else {
                    i += 1;
                }
            }
        }

        // Pass 2: weave resets, delays, and duplicates around delivery.
        let mut ops = Vec::with_capacity(frames.len() + frames.len() / 8);
        let mut last: Option<TraceEvent> = None;
        for frame in frames {
            if rng.chance(config.reset) {
                ops.push(ChaosOp::Reset);
                counters.resets += 1;
                if let Some(prev) = &last {
                    ops.push(ChaosOp::Deliver(prev.clone()));
                    counters.delivered += 1;
                }
            }
            if rng.chance(config.delay) && config.delay_events > 0 {
                ops.push(ChaosOp::Delay(config.delay_events));
                counters.delays += 1;
            }
            let dup = rng.chance(config.duplicate);
            ops.push(ChaosOp::Deliver(frame.clone()));
            counters.delivered += 1;
            if dup {
                ops.push(ChaosOp::Deliver(frame.clone()));
                counters.delivered += 1;
                counters.duplicated += 1;
            }
            last = Some(frame);
        }

        // Pass 3: splice kills in after their delivered-frame offsets.
        let mut kill_at = config.kill_at.clone();
        kill_at.sort_unstable();
        kill_at.dedup();
        if !kill_at.is_empty() {
            let mut spliced = Vec::with_capacity(ops.len() + kill_at.len());
            let mut kills = kill_at.iter().peekable();
            let mut delivered = 0u64;
            // A kill at offset 0 fires before any delivery.
            while kills.next_if(|&&k| k == 0).is_some() {
                spliced.push(ChaosOp::Kill);
                counters.kills += 1;
            }
            for op in ops {
                let is_delivery = matches!(op, ChaosOp::Deliver(_));
                spliced.push(op);
                if is_delivery {
                    delivered += 1;
                    while kills.next_if(|&&k| k == delivered).is_some() {
                        spliced.push(ChaosOp::Kill);
                        counters.kills += 1;
                    }
                }
            }
            ops = spliced;
        }

        Self { ops, counters }
    }

    /// Frames delivered over the whole schedule (duplicates included).
    pub fn deliveries(&self) -> u64 {
        self.counters.delivered
    }

    /// The op index immediately after the `n`th delivery (1-based), or
    /// `0` for `n == 0`. This is the resume cursor: after a kill, a
    /// consumer whose journal holds `n` durable events continues from
    /// `ops[index_after_delivery(n)..]` — re-delivering exactly the
    /// frames whose journal records were lost with the unsynced tail.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`deliveries`](Self::deliveries).
    pub fn index_after_delivery(&self, n: u64) -> usize {
        if n == 0 {
            return 0;
        }
        let mut seen = 0u64;
        for (i, op) in self.ops.iter().enumerate() {
            if matches!(op, ChaosOp::Deliver(_)) {
                seen += 1;
                if seen == n {
                    return i + 1;
                }
            }
        }
        panic!("cursor {n} past the schedule's {seen} deliveries");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::replay::{interleave, ReplayProfile, TraceEventKind};

    fn trace() -> EventTrace {
        let ds = DatasetBuilder::new(11)
            .ransomware_windows(4)
            .benign_windows(4)
            .build();
        interleave(&ds, 42, ReplayProfile::default())
    }

    fn delivered(schedule: &ChaosSchedule) -> Vec<&TraceEvent> {
        schedule
            .ops
            .iter()
            .filter_map(|op| match op {
                ChaosOp::Deliver(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let t = trace();
        let cfg = ChaosConfig::uniform(0.1).with_kills(vec![20, 60]);
        let a = ChaosSchedule::plan(&t, 7, &cfg);
        let b = ChaosSchedule::plan(&t, 7, &cfg);
        assert_eq!(a, b);
        let c = ChaosSchedule::plan(&t, 8, &cfg);
        assert_ne!(a, c, "different seed, different chaos");
    }

    #[test]
    fn no_chaos_is_a_pure_passthrough() {
        let t = trace();
        let s = ChaosSchedule::plan(&t, 1, &ChaosConfig::none());
        assert_eq!(s.counters.total(), 0);
        assert_eq!(s.deliveries(), t.len() as u64);
        let frames: Vec<TraceEvent> = delivered(&s).into_iter().cloned().collect();
        assert_eq!(frames, t.events);
    }

    #[test]
    fn every_original_frame_is_delivered_at_least_once() {
        let t = trace();
        let s = ChaosSchedule::plan(&t, 3, &ChaosConfig::uniform(0.2));
        let got = delivered(&s);
        for e in &t.events {
            assert!(got.contains(&e), "frame lost by chaos: {e:?}");
        }
        assert!(
            s.counters.duplicated > 0 && s.counters.reordered > 0,
            "rate 0.2 over {} frames must actually inject",
            t.len()
        );
    }

    #[test]
    fn per_pid_program_order_survives_reordering() {
        let t = trace();
        let s = ChaosSchedule::plan(
            &t,
            5,
            &ChaosConfig {
                reorder: 0.5,
                ..ChaosConfig::none()
            },
        );
        assert!(s.counters.reordered > 0);
        let pids: std::collections::BTreeSet<u32> = t.events.iter().map(|e| e.pid).collect();
        for pid in pids {
            let original: Vec<&TraceEvent> = t.events.iter().filter(|e| e.pid == pid).collect();
            let chaotic: Vec<&TraceEvent> =
                delivered(&s).into_iter().filter(|e| e.pid == pid).collect();
            assert_eq!(chaotic, original, "pid {pid} program order violated");
        }
    }

    #[test]
    fn kills_land_exactly_after_their_delivery_offsets() {
        let t = trace();
        let cfg = ChaosConfig::none().with_kills(vec![10, 5, 5, 0]);
        let s = ChaosSchedule::plan(&t, 9, &cfg);
        assert_eq!(s.counters.kills, 3, "offset dups collapse");
        assert_eq!(s.ops[0], ChaosOp::Kill, "offset 0 kills before delivery");
        let mut seen = 0u64;
        for (i, op) in s.ops.iter().enumerate() {
            match op {
                ChaosOp::Deliver(_) => seen += 1,
                ChaosOp::Kill if i > 0 => {
                    assert!(seen == 5 || seen == 10, "kill after {seen} deliveries")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn kill_offsets_past_the_schedule_never_fire() {
        let t = trace();
        let cfg = ChaosConfig::none().with_kills(vec![1_000_000]);
        let s = ChaosSchedule::plan(&t, 2, &cfg);
        assert_eq!(s.counters.kills, 0);
        assert!(s.ops.iter().all(|op| !matches!(op, ChaosOp::Kill)));
    }

    #[test]
    fn resume_cursor_maps_durable_counts_to_op_indices() {
        let t = trace();
        let s = ChaosSchedule::plan(&t, 4, &ChaosConfig::uniform(0.15).with_kills(vec![7]));
        assert_eq!(s.index_after_delivery(0), 0);
        // Replaying ops[cursor..] after n durable events must deliver
        // exactly deliveries() - n frames, for every n.
        for n in 0..=s.deliveries() {
            let cursor = s.index_after_delivery(n);
            let rest = s.ops[cursor..]
                .iter()
                .filter(|op| matches!(op, ChaosOp::Deliver(_)))
                .count() as u64;
            assert_eq!(rest, s.deliveries() - n, "cursor for n={n}");
        }
    }

    #[test]
    fn resets_resend_the_previous_frame() {
        let t = trace();
        let s = ChaosSchedule::plan(
            &t,
            6,
            &ChaosConfig {
                reset: 0.3,
                ..ChaosConfig::none()
            },
        );
        assert!(s.counters.resets > 0);
        for (i, op) in s.ops.iter().enumerate() {
            if matches!(op, ChaosOp::Reset) && i > 0 {
                // The op after a mid-stream reset re-delivers the frame
                // delivered most recently before it.
                let prev = s.ops[..i].iter().rev().find_map(|o| match o {
                    ChaosOp::Deliver(e) => Some(e),
                    _ => None,
                });
                if let (Some(prev), Some(ChaosOp::Deliver(next))) = (prev, s.ops.get(i + 1)) {
                    assert_eq!(next, prev, "reset at op {i} must re-send");
                }
            }
        }
    }

    #[test]
    fn spawn_duplicates_are_possible_chaos() {
        // A duplicated spawn is the nastiest duplicate (it would
        // supersede the live session without ingest-side dedup); make
        // sure the schedule can actually produce one so the campaign
        // exercises that path.
        let t = trace();
        let s = ChaosSchedule::plan(
            &t,
            11,
            &ChaosConfig {
                duplicate: 1.0,
                ..ChaosConfig::none()
            },
        );
        let dup_spawn = s.ops.windows(2).any(|w| {
            matches!(
                (&w[0], &w[1]),
                (ChaosOp::Deliver(a), ChaosOp::Deliver(b))
                    if a == b && matches!(a.kind, TraceEventKind::Spawn(_))
            )
        });
        assert!(dup_spawn, "duplicate=1.0 must duplicate spawns too");
    }
}
