//! Corpus assembly: the paper's 29K-sequence dataset and smaller variants.
//!
//! §IV: "The dataset consisted of 29K sequences, of which 46% resulted from
//! ransomware" — Appendix A details the composition: 13,340 ransomware
//! windows from 78 variants detonated on Windows 10 and 11, and 15,660
//! benign windows from 30 applications plus manual interaction, all of
//! length 100. [`DatasetBuilder::paper`] reproduces those exact counts;
//! smaller test corpora come from explicit targets.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::benign::BenignProfile;
use crate::sandbox::{Sandbox, WindowsVersion};
use crate::variant::Variant;
use crate::window::{sliding_windows, WINDOW_LEN};

/// One labelled example with provenance (which run produced it).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetEntry {
    /// The length-100 token sequence.
    pub sequence: Vec<usize>,
    /// `true` = ransomware.
    pub is_ransomware: bool,
    /// Source key, e.g. `"Wannacry#3/Win10/r2"` or `"BackupBee/Win11"`.
    pub source: String,
}

/// How to split a dataset into train/test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SplitKind {
    /// Uniform random example-level split (the paper's methodology —
    /// windows are shuffled before splitting).
    Random,
    /// Hold out entire sources (variant/app runs): no window from a test
    /// source appears in training. Harder and more realistic.
    BySource,
}

/// A labelled sliding-window corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    entries: Vec<DatasetEntry>,
}

impl Dataset {
    /// Wraps entries.
    pub fn from_entries(entries: Vec<DatasetEntry>) -> Self {
        Self { entries }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries.
    pub fn entries(&self) -> &[DatasetEntry] {
        &self.entries
    }

    /// Number of ransomware examples.
    pub fn ransomware_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_ransomware).count()
    }

    /// Fraction of ransomware examples (the paper's 46%).
    pub fn ransomware_fraction(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.ransomware_count() as f64 / self.len() as f64
        }
    }

    /// Examples in `(sequence, label)` form for the trainer.
    pub fn examples(&self) -> Vec<(Vec<usize>, bool)> {
        self.entries
            .iter()
            .map(|e| (e.sequence.clone(), e.is_ransomware))
            .collect()
    }

    /// Splits into `(train, test)` with `test_fraction` of examples held
    /// out, per `kind`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < test_fraction < 1`.
    pub fn split(&self, test_fraction: f64, kind: SplitKind, seed: u64) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test fraction must be in (0, 1)"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match kind {
            SplitKind::Random => {
                let mut idx: Vec<usize> = (0..self.len()).collect();
                idx.shuffle(&mut rng);
                let n_test = ((self.len() as f64) * test_fraction).round() as usize;
                let (test_idx, train_idx) = idx.split_at(n_test.clamp(1, self.len() - 1));
                let take = |ids: &[usize]| {
                    Dataset::from_entries(ids.iter().map(|&i| self.entries[i].clone()).collect())
                };
                (take(train_idx), take(test_idx))
            }
            SplitKind::BySource => {
                let mut sources: Vec<&str> =
                    self.entries.iter().map(|e| e.source.as_str()).collect();
                sources.sort_unstable();
                sources.dedup();
                let mut sources: Vec<String> = sources.into_iter().map(str::to_string).collect();
                sources.shuffle(&mut rng);
                let target = ((self.len() as f64) * test_fraction).round() as usize;
                let n_sources = sources.len();
                let mut held = std::collections::HashSet::new();
                let mut held_count = 0usize;
                for s in sources {
                    // Always leave at least one source on the training
                    // side, whatever the requested fraction.
                    if held_count >= target || held.len() + 1 == n_sources {
                        break;
                    }
                    held_count += self.entries.iter().filter(|e| e.source == s).count();
                    held.insert(s);
                }
                let (test, train): (Vec<_>, Vec<_>) = self
                    .entries
                    .iter()
                    .cloned()
                    .partition(|e| held.contains(&e.source));
                (Dataset::from_entries(train), Dataset::from_entries(test))
            }
        }
    }

    /// Serializes to the paper's CSV layout: `n + 1` columns (the `n = 100`
    /// items plus a trailing label), one row per sequence (§III-A).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            for tok in &e.sequence {
                out.push_str(&tok.to_string());
                out.push(',');
            }
            out.push(if e.is_ransomware { '1' } else { '0' });
            out.push('\n');
        }
        out
    }

    /// Parses the CSV produced by [`Self::to_csv`] (provenance is not
    /// stored in CSV; sources come back as `"csv"`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed row.
    pub fn from_csv(csv: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut fields: Vec<&str> = line.split(',').collect();
            let label = fields
                .pop()
                .ok_or_else(|| format!("line {}: empty row", lineno + 1))?;
            let is_ransomware = match label.trim() {
                "1" => true,
                "0" => false,
                other => return Err(format!("line {}: bad label {other:?}", lineno + 1)),
            };
            let sequence = fields
                .iter()
                .map(|f| {
                    f.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("line {}: bad token {f:?}", lineno + 1))
                })
                .collect::<Result<Vec<_>, _>>()?;
            if sequence.is_empty() {
                return Err(format!("line {}: no tokens", lineno + 1));
            }
            entries.push(DatasetEntry {
                sequence,
                is_ransomware,
                source: "csv".to_string(),
            });
        }
        Ok(Self { entries })
    }
}

/// Builds corpora by detonating the synthetic sandbox.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    seed: u64,
    ransomware_target: usize,
    benign_target: usize,
    stride: usize,
    window_len: usize,
    noise: f64,
}

impl DatasetBuilder {
    /// The paper's published totals: 13,340 ransomware and 15,660 benign
    /// windows (29K total, 46% ransomware).
    pub const PAPER_RANSOMWARE: usize = 13_340;
    /// Benign total (see [`Self::PAPER_RANSOMWARE`]).
    pub const PAPER_BENIGN: usize = 15_660;

    /// Creates a builder with small defaults (200/200 windows, 3% trace
    /// noise) for tests.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ransomware_target: 200,
            benign_target: 200,
            stride: 10,
            window_len: WINDOW_LEN,
            noise: 0.03,
        }
    }

    /// The full paper-scale corpus (29K windows).
    pub fn paper(seed: u64) -> Self {
        Self::new(seed)
            .ransomware_windows(Self::PAPER_RANSOMWARE)
            .benign_windows(Self::PAPER_BENIGN)
    }

    /// Sets the ransomware window target.
    pub fn ransomware_windows(mut self, n: usize) -> Self {
        self.ransomware_target = n;
        self
    }

    /// Sets the benign window target.
    pub fn benign_windows(mut self, n: usize) -> Self {
        self.benign_target = n;
        self
    }

    /// Sets the sliding-window stride (default 10 calls).
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.stride = stride;
        self
    }

    /// Sets the sliding-window length (default 100, the paper's value).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn window_len(mut self, len: usize) -> Self {
        assert!(len > 0, "window length must be positive");
        self.window_len = len;
        self
    }

    /// Sets the trace-noise rate: each captured call is replaced by a
    /// uniformly random vocabulary token with this probability, modelling
    /// the interleaved background activity and hook misses a real sandbox
    /// capture exhibits (default 3%).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate < 1`.
    pub fn noise(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "noise rate must be in [0, 1)");
        self.noise = rate;
        self
    }

    /// Generates the corpus: detonations cycle over variants × {Win10,
    /// Win11} × run index (and apps/manual sessions for benign) until each
    /// class reaches its target, then the examples are shuffled.
    pub fn build(&self) -> Dataset {
        let sandbox = Sandbox::new(self.seed);
        let vocab_len = sandbox.vocabulary().len();
        let mut noise_rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x0153_e5ed);
        let mut apply_noise = |trace: Vec<usize>| -> Vec<usize> {
            if self.noise == 0.0 {
                return trace;
            }
            trace
                .into_iter()
                .map(|tok| {
                    use rand::Rng;
                    if noise_rng.random::<f64>() < self.noise {
                        noise_rng.random_range(0..vocab_len)
                    } else {
                        tok
                    }
                })
                .collect()
        };
        let mut entries = Vec::with_capacity(self.ransomware_target + self.benign_target);

        // Ransomware: round-robin over variants and OS versions; extra
        // passes are re-detonations (run index bumps the seed).
        let variants = Variant::corpus();
        let mut run = 0u64;
        let mut collected = 0usize;
        'outer: loop {
            for v in &variants {
                for os in WindowsVersion::BOTH {
                    let trace = apply_noise(sandbox.detonate_run(v, os, run));
                    for w in sliding_windows(&trace, self.window_len, self.stride) {
                        if collected >= self.ransomware_target {
                            break 'outer;
                        }
                        entries.push(DatasetEntry {
                            sequence: w.to_vec(),
                            is_ransomware: true,
                            source: format!("{}/{os:?}/r{run}", v.id()),
                        });
                        collected += 1;
                    }
                }
            }
            run += 1;
            assert!(run < 10_000, "ransomware target unreachable");
        }

        // Benign: applications plus manual-interaction sessions.
        let apps = BenignProfile::suite();
        let mut session = 0u64;
        let mut collected = 0usize;
        'benign: loop {
            for os in WindowsVersion::BOTH {
                for app in &apps {
                    let trace = if session == 0 {
                        sandbox.run_benign(app, os).calls
                    } else {
                        // Later passes: fresh sessions via the seed offset.
                        let sb = Sandbox::new(self.seed.wrapping_add(session * 0x517c_c1b7));
                        sb.run_benign(app, os).calls
                    };
                    let trace = apply_noise(trace);
                    for w in sliding_windows(&trace, self.window_len, self.stride) {
                        if collected >= self.benign_target {
                            break 'benign;
                        }
                        entries.push(DatasetEntry {
                            sequence: w.to_vec(),
                            is_ransomware: false,
                            source: format!("{}/{os:?}/s{session}", app.name),
                        });
                        collected += 1;
                    }
                }
                let manual = apply_noise(sandbox.run_manual(os, session).calls);
                for w in sliding_windows(&manual, self.window_len, self.stride) {
                    if collected >= self.benign_target {
                        break 'benign;
                    }
                    entries.push(DatasetEntry {
                        sequence: w.to_vec(),
                        is_ransomware: false,
                        source: format!("manual/{os:?}/s{session}"),
                    });
                    collected += 1;
                }
            }
            session += 1;
            assert!(session < 10_000, "benign target unreachable");
        }

        // "The final benign and ransomware API call sequences were then
        // merged and shuffled" (Appendix A).
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xdead_beef);
        entries.shuffle(&mut rng);
        Dataset { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        DatasetBuilder::new(42)
            .ransomware_windows(120)
            .benign_windows(140)
            .build()
    }

    #[test]
    fn builder_hits_exact_targets() {
        let ds = small();
        assert_eq!(ds.len(), 260);
        assert_eq!(ds.ransomware_count(), 120);
    }

    #[test]
    fn paper_fraction_is_46_percent() {
        let total = DatasetBuilder::PAPER_RANSOMWARE + DatasetBuilder::PAPER_BENIGN;
        assert_eq!(total, 29_000);
        let frac = DatasetBuilder::PAPER_RANSOMWARE as f64 / total as f64;
        assert!((frac - 0.46).abs() < 0.001);
    }

    #[test]
    fn all_windows_are_length_100() {
        let ds = small();
        assert!(ds.entries().iter().all(|e| e.sequence.len() == WINDOW_LEN));
    }

    #[test]
    fn build_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a, b);
    }

    #[test]
    fn entries_are_shuffled() {
        let ds = small();
        // The first 120 entries are not all ransomware.
        let first: usize = ds.entries()[..120]
            .iter()
            .filter(|e| e.is_ransomware)
            .count();
        assert!(first < 120);
    }

    #[test]
    fn random_split_fractions() {
        let ds = small();
        let (train, test) = ds.split(0.25, SplitKind::Random, 7);
        assert_eq!(train.len() + test.len(), ds.len());
        assert_eq!(test.len(), 65);
    }

    #[test]
    fn by_source_split_keeps_sources_disjoint() {
        let ds = small();
        let (train, test) = ds.split(0.3, SplitKind::BySource, 8);
        let train_sources: std::collections::HashSet<_> =
            train.entries().iter().map(|e| &e.source).collect();
        for e in test.entries() {
            assert!(!train_sources.contains(&e.source));
        }
        assert!(!test.is_empty());
    }

    #[test]
    fn csv_roundtrip() {
        let ds = small();
        let csv = ds.to_csv();
        // n + 1 columns.
        let first = csv.lines().next().expect("rows");
        assert_eq!(first.split(',').count(), WINDOW_LEN + 1);
        let parsed = Dataset::from_csv(&csv).expect("parse");
        assert_eq!(parsed.len(), ds.len());
        for (a, b) in parsed.entries().iter().zip(ds.entries()) {
            assert_eq!(a.sequence, b.sequence);
            assert_eq!(a.is_ransomware, b.is_ransomware);
        }
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(Dataset::from_csv("1,2,x,1\n").is_err());
        assert!(Dataset::from_csv("1,2,3,7\n").is_err()); // bad label
        assert!(Dataset::from_csv("1\n").is_err()); // label only, no tokens
    }

    #[test]
    fn examples_match_entries() {
        let ds = small();
        let ex = ds.examples();
        assert_eq!(ex.len(), ds.len());
        assert_eq!(ex[0].0, ds.entries()[0].sequence);
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn bad_split_fraction_rejected() {
        let _ = small().split(1.5, SplitKind::Random, 0);
    }
}
